"""Input validation helpers shared across the library.

These raise consistent, descriptive errors early so misuse of the public API
fails at the boundary rather than deep inside a kernel.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


def check_array(
    x,
    *,
    name: str = "array",
    dtype=None,
    ndim: Optional[int] = None,
    allow_empty: bool = True,
) -> np.ndarray:
    """Convert ``x`` to an ndarray and validate its dimensionality.

    Parameters
    ----------
    x:
        Array-like input.
    name:
        Name used in error messages.
    dtype:
        If given, the result is cast to this dtype.
    ndim:
        If given, the array must have exactly this many dimensions.
    allow_empty:
        If ``False``, zero-sized arrays are rejected.
    """
    arr = np.asarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.issubdtype(arr.dtype, np.number) and not np.issubdtype(arr.dtype, np.bool_):
        raise TypeError(f"{name} must be numeric, got dtype {arr.dtype}")
    return arr


def check_positive(value, *, name: str = "value", strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative when ``strict=False``)."""
    v = float(value)
    if strict and v <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return v


def check_in_range(
    value,
    low: float,
    high: float,
    *,
    name: str = "value",
    inclusive: Tuple[bool, bool] = (True, True),
) -> float:
    """Validate that ``low <= value <= high`` (bounds optionally exclusive)."""
    v = float(value)
    lo_ok = v >= low if inclusive[0] else v > low
    hi_ok = v <= high if inclusive[1] else v < high
    if not (lo_ok and hi_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ValueError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value}")
    return v


def check_triples(
    triples,
    *,
    n_entities: Optional[int] = None,
    n_relations: Optional[int] = None,
    name: str = "triples",
) -> np.ndarray:
    """Validate a ``(M, 3)`` integer array of ``(head, relation, tail)`` triples.

    Index bounds are checked against ``n_entities`` / ``n_relations`` when
    provided.  Returns a contiguous ``int64`` array.
    """
    arr = np.asarray(triples)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"{name} must have shape (M, 3), got {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.allclose(arr, np.round(arr)):
            raise TypeError(f"{name} must contain integer indices")
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    if arr.size == 0:
        return arr
    if arr.min() < 0:
        raise ValueError(f"{name} contains negative indices")
    heads, rels, tails = arr[:, 0], arr[:, 1], arr[:, 2]
    if n_entities is not None:
        bad = max(heads.max(initial=-1), tails.max(initial=-1))
        if bad >= n_entities:
            raise ValueError(
                f"{name} references entity index {bad} but only {n_entities} entities exist"
            )
    if n_relations is not None and rels.size and rels.max() >= n_relations:
        raise ValueError(
            f"{name} references relation index {rels.max()} but only "
            f"{n_relations} relations exist"
        )
    return arr


def check_same_shape(a: np.ndarray, b: np.ndarray, *, names: Sequence[str] = ("a", "b")) -> None:
    """Raise if two arrays do not share the same shape."""
    if a.shape != b.shape:
        raise ValueError(
            f"{names[0]} and {names[1]} must have the same shape, "
            f"got {a.shape} and {b.shape}"
        )


def check_choice(value, choices: Iterable, *, name: str = "value"):
    """Validate that ``value`` is one of ``choices``."""
    options = list(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value
