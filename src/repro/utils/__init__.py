"""Shared utilities: seeding, validation helpers, and lightweight logging."""

from repro.utils.seeding import seed_everything, temp_seed, new_rng
from repro.utils.validation import (
    check_array,
    check_positive,
    check_in_range,
    check_triples,
    check_same_shape,
)
from repro.utils.logging import get_logger

__all__ = [
    "seed_everything",
    "temp_seed",
    "new_rng",
    "check_array",
    "check_positive",
    "check_in_range",
    "check_triples",
    "check_same_shape",
    "get_logger",
]
