"""Reproducible random-state management.

Every stochastic component in the library (initializers, negative samplers,
synthetic data generators, training loops) accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers centralise how seeds are turned
into generators so experiments are reproducible bit-for-bit across runs.
"""

from __future__ import annotations

import contextlib
import random
from typing import Iterator, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_GLOBAL_SEED: Optional[int] = None


def seed_everything(seed: int) -> None:
    """Seed Python's ``random`` and NumPy's legacy global state.

    The library itself always threads explicit generators, but user code and
    third-party helpers may rely on global state; this makes whole-script runs
    reproducible.

    Parameters
    ----------
    seed:
        Non-negative integer seed.
    """
    global _GLOBAL_SEED
    if not isinstance(seed, (int, np.integer)) or seed < 0:
        raise ValueError(f"seed must be a non-negative integer, got {seed!r}")
    _GLOBAL_SEED = int(seed)
    random.seed(seed)
    np.random.seed(seed % (2**32))


def get_global_seed() -> Optional[int]:
    """Return the seed last passed to :func:`seed_everything`, if any."""
    return _GLOBAL_SEED


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator, an ``int`` yields a
    deterministic one, and an existing generator is passed through unchanged
    (so callers can share a stream).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Used by the simulated data-parallel trainer so each logical worker has an
    independent, reproducible stream.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    root = new_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


@contextlib.contextmanager
def temp_seed(seed: int) -> Iterator[None]:
    """Context manager that temporarily seeds NumPy's legacy global state."""
    state = np.random.get_state()
    np.random.seed(seed % (2**32))
    try:
        yield
    finally:
        np.random.set_state(state)
