"""Library-wide logging configuration.

The library never configures the root logger; it attaches a ``NullHandler`` to
its own namespace so applications decide how (and whether) messages surface.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Optional sub-namespace (e.g. ``"training"``); ``None`` returns the
        package root logger.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the library logger.

    Convenience for scripts and examples; idempotent.
    """
    logger = logging.getLogger(_ROOT_NAME)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in logger.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
