"""Shared interface for every knowledge-graph embedding model.

The convention throughout the library: :meth:`KGEModel.scores` returns a
**dissimilarity** per triplet — smaller means more plausible.  Translational
models return a distance directly; bilinear models (DistMult, ComplEx) return
the negated plausibility so the same margin-ranking loss and the same ranking
code work unchanged across families.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro import ranking
from repro.autograd.tensor import Tensor, no_grad
from repro.data.batching import TripletBatch
from repro.losses.margin import MarginRankingLoss
from repro.nn.module import Module
from repro.utils.validation import check_triples


class KGEModel(Module):
    """Abstract knowledge-graph embedding model.

    Parameters
    ----------
    n_entities, n_relations:
        Vocabulary sizes.
    embedding_dim:
        Entity embedding width ``d``.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int) -> None:
        super().__init__()
        if n_entities <= 0 or n_relations <= 0 or embedding_dim <= 0:
            raise ValueError(
                "n_entities, n_relations, and embedding_dim must all be positive, got "
                f"{n_entities}, {n_relations}, {embedding_dim}"
            )
        self.n_entities = int(n_entities)
        self.n_relations = int(n_relations)
        self.embedding_dim = int(embedding_dim)
        #: When True, models that support it emit row-sparse gradients from
        #: their SpMM / gather backwards (see ``repro.sparse.rowsparse``).
        self.sparse_grads = False

    #: Number of entity-table buckets; models backed by a
    #: :class:`~repro.nn.partitioned.PartitionedEmbedding` override this with
    #: the partition count so the training/serving layers can stay
    #: partition-aware without isinstance checks.
    n_partitions = 1

    def set_sparse_grads(self, enabled: bool = True) -> "KGEModel":
        """Toggle the row-sparse gradient path (where the model supports it).

        Sparse models route the flag into their SpMM and embedding-gather
        backwards so gradients — and the optimizer updates they drive — cost
        ``O(batch)`` instead of ``O(vocabulary)`` per step.  Models without a
        sparse path (the dense bilinear family) simply ignore the flag, so
        flipping it is always safe.  Returns ``self`` for chaining.
        """
        self.sparse_grads = bool(enabled)
        from repro.nn.embedding import Embedding, StackedEmbedding

        for module in self.modules():
            if isinstance(module, (Embedding, StackedEmbedding)):
                module.sparse_grad = bool(enabled)
        return self

    # ------------------------------------------------------------------ #
    # Core API
    # ------------------------------------------------------------------ #
    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity of each triplet (differentiable), shape ``(B,)``."""
        raise NotImplementedError

    def forward(self, triples: np.ndarray) -> Tensor:
        return self.scores(triples)

    def loss(self, batch: TripletBatch, criterion: Optional[Module] = None) -> Tensor:
        """Margin-ranking loss of one positive/negative batch.

        The positive and negative triples are scored in a single concatenated
        pass (one incidence matrix, one SpMM) — the trick the sparse
        formulation exploits to amortise the kernel launch.
        """
        criterion = criterion if criterion is not None else MarginRankingLoss()
        combined = np.concatenate([batch.positives, batch.negatives], axis=0)
        all_scores = self.scores(combined)
        m = batch.size
        # Positives occupy the first half of the concatenated batch, so plain
        # slices split the scores; fancy indexing here would copy an index
        # array through the autograd gather op on every step.
        pos_scores = all_scores[:m]
        neg_scores = all_scores[m:]
        return criterion(pos_scores, neg_scores)

    def score_triples(self, triples: np.ndarray, chunk_size: int = 65536) -> np.ndarray:
        """Non-differentiable scores (used by evaluation), computed in chunks."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        out = np.empty(triples.shape[0], dtype=np.float64)
        with no_grad():
            for start in range(0, triples.shape[0], chunk_size):
                stop = min(start + chunk_size, triples.shape[0])
                out[start:stop] = self.scores(triples[start:stop]).data
        return out

    # ------------------------------------------------------------------ #
    # Link prediction helpers
    # ------------------------------------------------------------------ #
    def score_all_tails(self, heads: np.ndarray, relations: np.ndarray,
                        chunk_size: int = 65536) -> np.ndarray:
        """Score every entity as a candidate tail: ``(B, n_entities)``.

        The generic implementation expands to ``B * n_entities`` triples and
        scores them in chunks; subclasses with a cheaper closed form (e.g.
        TransE's ``h + r`` against all tails) override it.
        """
        heads = np.asarray(heads, dtype=np.int64).reshape(-1)
        relations = np.asarray(relations, dtype=np.int64).reshape(-1)
        if heads.shape != relations.shape:
            raise ValueError("heads and relations must have equal length")
        return self._score_all_generic(heads, relations, position="tail",
                                       chunk_size=chunk_size)

    def score_all_heads(self, relations: np.ndarray, tails: np.ndarray,
                        chunk_size: int = 65536) -> np.ndarray:
        """Score every entity as a candidate head: ``(B, n_entities)``."""
        relations = np.asarray(relations, dtype=np.int64).reshape(-1)
        tails = np.asarray(tails, dtype=np.int64).reshape(-1)
        if tails.shape != relations.shape:
            raise ValueError("tails and relations must have equal length")
        return self._score_all_generic(relations, tails, position="head",
                                       chunk_size=chunk_size)

    def _score_all_generic(self, first: np.ndarray, second: np.ndarray,
                           position: str, chunk_size: int) -> np.ndarray:
        """Candidate-expansion ranking shared by the two ``score_all_*`` fallbacks.

        Delegates to :func:`repro.ranking.candidate_expansion_scores`, the one
        implementation of the expand-and-chunk grid this library has.
        """
        return ranking.candidate_expansion_scores(
            first, second, position=position, n_entities=self.n_entities,
            score_triples=self.score_triples, chunk_size=chunk_size)

    #: Pairwise L2 distances ``(B, N)`` through one GEMM; kept as a static
    #: method for API compatibility — the implementation lives in
    #: :func:`repro.ranking.l2_distance_matrix`.
    l2_distance_matrix = staticmethod(ranking.l2_distance_matrix)

    #: O(N) argpartition top-k (ascending); see :func:`repro.ranking.top_k`.
    _top_k = staticmethod(ranking.top_k)

    def predict_tails(self, head: int, relation: int, k: int = 10) -> np.ndarray:
        """Return the ``k`` most plausible tail entities for ``(head, relation, ?)``."""
        scores = self.score_all_tails(np.array([head]), np.array([relation]))[0]
        return self._top_k(scores, k)

    def predict_heads(self, relation: int, tail: int, k: int = 10) -> np.ndarray:
        """Return the ``k`` most plausible head entities for ``(?, relation, tail)``."""
        scores = self.score_all_heads(np.array([relation]), np.array([tail]))[0]
        return self._top_k(scores, k)

    def classify_triples(self, triples: np.ndarray, threshold: float) -> np.ndarray:
        """Binary triple classification: True when dissimilarity <= threshold."""
        return self.score_triples(triples) <= float(threshold)

    def l2_query_vector(self, anchor: int, relation: int,
                        direction: str) -> Optional[np.ndarray]:
        """Embedding-space query vector when ranking reduces to an L2 kNN.

        Models whose ``score_all_*`` is exactly ``||q − t'||`` over the entity
        table return the float64 query ``q`` (TransE: ``h + r`` for tails,
        ``t − r`` for heads) so the serving engine can route the query through
        an ANN index and rescore candidates with the identical closed form.
        The default returns ``None`` — "not L2-rankable" — which makes ANN
        serving fall back to exact ranking for this model.
        """
        return None

    # ------------------------------------------------------------------ #
    # Introspection / maintenance
    # ------------------------------------------------------------------ #
    def entity_embedding_matrix(self) -> np.ndarray:
        """Dense ``(n_entities, d)`` entity embedding snapshot."""
        raise NotImplementedError

    def relation_embedding_matrix(self) -> np.ndarray:
        """Dense ``(n_relations, d_rel)`` relation embedding snapshot."""
        raise NotImplementedError

    def entity_embedding_rows(self, entity_ids: np.ndarray) -> np.ndarray:
        """Copy of selected entity embedding rows ``(k, d)``.

        The default slices the dense snapshot; table-backed models override
        it with a row read that never densifies the full matrix.
        """
        idx = np.asarray(entity_ids, dtype=np.int64).reshape(-1)
        return self.entity_embedding_matrix()[idx]

    def iter_entity_embedding_blocks(self, block_rows: Optional[int] = None
                                     ) -> Iterable[Tuple[int, np.ndarray]]:
        """Yield ``(start_row, block)`` sweeps over the entity embeddings.

        Bounded-memory primitive behind blocked ranking and the serving
        engine's nearest-neighbour scan.  ``block_rows`` defaults to an
        element-bounded size (a few MB per block regardless of row width).
        The default yields slices of the dense snapshot; partitioned models
        stream one bucket at a time.
        """
        from repro.nn.table import block_rows_for

        if block_rows is None:
            block_rows = block_rows_for(self.embedding_dim)
        matrix = self.entity_embedding_matrix()
        for start in range(0, matrix.shape[0], int(block_rows)):
            yield start, matrix[start:start + int(block_rows)]

    def bind_optimizer(self, optimizer) -> None:
        """Give the model a chance to cooperate with its optimiser.

        Default is a no-op.  Partition-backed models attach the optimiser to
        their embedding table so per-bucket optimiser state slabs page in and
        out with their bucket (see
        :meth:`~repro.nn.partitioned.PartitionedEmbedding.attach_optimizer`).
        Trainers call this right after constructing the optimiser.
        """

    def normalize_parameters(self) -> None:
        """Per-epoch parameter maintenance (entity renormalisation etc.).

        Default is a no-op; models that constrain embedding norms override it.
        """

    def config(self) -> Dict[str, object]:
        """Serializable hyperparameter summary (used by reports)."""
        return {
            "model": type(self).__name__,
            "n_entities": self.n_entities,
            "n_relations": self.n_relations,
            "embedding_dim": self.embedding_dim,
            "n_parameters": self.num_parameters(),
        }


class TranslationalModel(KGEModel):
    """Base for models scoring with a distance over a translation residual.

    Parameters
    ----------
    dissimilarity:
        Name of the distance function (``"L1"``, ``"L2"``, ``"torus_L2"``...).
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "L2") -> None:
        super().__init__(n_entities, n_relations, embedding_dim)
        from repro.nn.functional import get_dissimilarity

        self.dissimilarity_name = dissimilarity
        self.dissimilarity = get_dissimilarity(dissimilarity)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["dissimilarity"] = self.dissimilarity_name
        return cfg
