"""SpTransX models — the paper's primary contribution.

Every model here expresses its embedding extraction as one sparse-dense
matrix multiplication (SpMM) against an incidence matrix built from the
triplet batch, replacing the per-triplet gather/scatter of conventional
implementations:

* :class:`SpTransE` / :class:`SpTorusE` — ``hrt`` incidence (h + r − t).
* :class:`SpTransR` / :class:`SpTransH` — ``ht`` incidence (h − t) plus the
  model-specific projection.
* :class:`SpDistMult` / :class:`SpComplEx` / :class:`SpRotatE` — the
  Appendix-D semiring extension to non-translational scores.

All models share the :class:`~repro.models.base.KGEModel` interface (scores,
loss, link prediction) so the trainer, the evaluator, and the benchmarks can
swap sparse models and dense baselines freely.
"""

from repro.models.base import KGEModel, TranslationalModel
from repro.models.transe import SpTransE
from repro.models.transr import SpTransR
from repro.models.transh import SpTransH
from repro.models.toruse import SpTorusE
from repro.models.semiring_models import SpDistMult, SpComplEx, SpRotatE
from repro.models.extensions import SpTransA, SpTransC, SpTransM

SPARSE_MODELS = {
    "transe": SpTransE,
    "transr": SpTransR,
    "transh": SpTransH,
    "toruse": SpTorusE,
    "transm": SpTransM,
    "transc": SpTransC,
    "transa": SpTransA,
    "distmult": SpDistMult,
    "complex": SpComplEx,
    "rotate": SpRotatE,
}

__all__ = [
    "KGEModel",
    "TranslationalModel",
    "SpTransE",
    "SpTransR",
    "SpTransH",
    "SpTorusE",
    "SpTransM",
    "SpTransC",
    "SpTransA",
    "SpDistMult",
    "SpComplEx",
    "SpRotatE",
    "SPARSE_MODELS",
]
