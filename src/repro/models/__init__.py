"""SpTransX models — the paper's primary contribution.

Every model here expresses its embedding extraction as one sparse-dense
matrix multiplication (SpMM) against an incidence matrix built from the
triplet batch, replacing the per-triplet gather/scatter of conventional
implementations:

* :class:`SpTransE` / :class:`SpTorusE` — ``hrt`` incidence (h + r − t).
* :class:`SpTransR` / :class:`SpTransH` — ``ht`` incidence (h − t) plus the
  model-specific projection.
* :class:`SpDistMult` / :class:`SpComplEx` / :class:`SpRotatE` — the
  Appendix-D semiring extension to non-translational scores.

All models share the :class:`~repro.models.base.KGEModel` interface (scores,
loss, link prediction) so the trainer, the evaluator, and the benchmarks can
swap sparse models and dense baselines freely.
"""

from repro.models.base import KGEModel, TranslationalModel
from repro.models.transe import SpTransE
from repro.models.transr import SpTransR
from repro.models.transh import SpTransH
from repro.models.toruse import SpTorusE
from repro.models.semiring_models import SpDistMult, SpComplEx, SpRotatE
from repro.models.extensions import SpTransA, SpTransC, SpTransM
from repro.registry import models_by_formulation

#: Legacy name → class mapping, snapshotted from ``repro.registry`` at import
#: time (each model class registers itself via ``@register_model``).  Models
#: registered later appear in the registry but not here — new code should use
#: ``repro.registry.get_entry``/``models_by_formulation`` directly.
SPARSE_MODELS = models_by_formulation("sparse")

__all__ = [
    "KGEModel",
    "TranslationalModel",
    "SpTransE",
    "SpTransR",
    "SpTransH",
    "SpTorusE",
    "SpTransM",
    "SpTransC",
    "SpTransA",
    "SpDistMult",
    "SpComplEx",
    "SpRotatE",
    "SPARSE_MODELS",
]
