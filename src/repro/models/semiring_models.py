"""Non-translational models via the semiring SpMM extension (paper Appendix D).

The incidence-matrix structure (three non-zeros per row over the stacked
``[entities; relations]`` embedding) is reused with different semiring
operators:

* :class:`SpDistMult` — ``times_times`` semiring: per-row ``h ⊙ r ⊙ t``.
* :class:`SpComplEx` — the complex ``times_times`` semiring over paired
  (real, imaginary) stacked matrices.
* :class:`SpRotatE` — the ``rotate`` semiring for the element-wise rotation
  ``h ⊙ r − t`` with unit-modulus relations parameterised by a phase.

To keep every model compatible with the margin-ranking trainer and the
ranking evaluator, ``scores`` returns a dissimilarity: bilinear models return
the *negated* plausibility, RotatE returns its modulus distance.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.models.base import KGEModel
from repro.nn.embedding import StackedEmbedding
from repro.nn.parameter import Parameter
from repro.nn import init
from repro.registry import register_model
from repro.sparse.semiring import complex_semiring_spmm, semiring_spmm
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("distmult", "sparse", formulation_tag="semiring-times-times")
class SpDistMult(KGEModel):
    """DistMult through the ``times_times`` semiring SpMM.

    Parameters
    ----------
    n_entities, n_relations, embedding_dim:
        Vocabulary sizes and embedding width.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int, rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim)
        self.embeddings = StackedEmbedding(n_entities, n_relations, embedding_dim, rng=rng)

    def plausibility(self, triples: np.ndarray) -> Tensor:
        """DistMult score ``sum_j h_j r_j t_j`` (larger = more plausible)."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        combined = semiring_spmm(triples, self.embeddings.weight,
                                 self.n_entities, "times_times")
        return combined.sum(axis=-1)

    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity convention: negated plausibility."""
        return -self.plausibility(triples)

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.embeddings.entity_embeddings().copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.embeddings.relation_embeddings().copy()

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["semiring"] = "times_times"
        return cfg


@register_model("complex", "sparse", formulation_tag="semiring-complex-times-times")
class SpComplEx(KGEModel):
    """ComplEx through the complex ``times_times`` semiring SpMM.

    Embeddings are complex vectors stored as a (real, imaginary) pair of
    stacked matrices; the score is ``Re(<h, r, conj(t)>)``.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int, rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim)
        rng = new_rng(rng)
        self.real = StackedEmbedding(n_entities, n_relations, embedding_dim, rng=rng)
        self.imag = StackedEmbedding(n_entities, n_relations, embedding_dim, rng=rng)

    def plausibility(self, triples: np.ndarray) -> Tensor:
        """ComplEx score ``Re(sum_j h_j r_j conj(t_j))``."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        real_part = complex_semiring_spmm(triples, self.real.weight, self.imag.weight,
                                          self.n_entities)
        return real_part.sum(axis=-1)

    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity convention: negated plausibility."""
        return -self.plausibility(triples)

    def entity_embedding_matrix(self) -> np.ndarray:
        return np.concatenate(
            [self.real.entity_embeddings(), self.imag.entity_embeddings()], axis=1
        )

    def relation_embedding_matrix(self) -> np.ndarray:
        return np.concatenate(
            [self.real.relation_embeddings(), self.imag.relation_embeddings()], axis=1
        )

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["semiring"] = "complex_times_times"
        return cfg


@register_model("rotate", "sparse", formulation_tag="semiring-rotate")
class SpRotatE(KGEModel):
    """RotatE through the ``rotate`` semiring over paired stacked matrices.

    Entities are complex vectors; each relation is a unit-modulus rotation
    parameterised by a phase vector θ (so ``r = cos θ + i sin θ``).  The score
    is the summed complex modulus of ``h ⊙ r − t``.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int, rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim)
        rng = new_rng(rng)
        ent_re = Parameter(np.empty((n_entities, embedding_dim)), name="entity_real")
        ent_im = Parameter(np.empty((n_entities, embedding_dim)), name="entity_imag")
        phases = Parameter(np.empty((n_relations, embedding_dim)), name="relation_phase")
        init.xavier_uniform_(ent_re, rng=rng)
        init.xavier_uniform_(ent_im, rng=rng)
        init.uniform_(phases, -np.pi, np.pi, rng=rng)
        self.entity_real = ent_re
        self.entity_imag = ent_im
        self.relation_phase = phases

    def _stacked(self) -> tuple[Tensor, Tensor]:
        """Stacked (real, imaginary) matrices ``[entities; relations]``.

        The relation block is the differentiable (cos θ, sin θ) image of the
        phase parameter, so gradients flow back into θ through the stack.
        """
        cos_theta = ops.cos(self.relation_phase)
        sin_theta = ops.sin(self.relation_phase)
        stacked_re = ops.concatenate([self.entity_real, cos_theta], axis=0)
        stacked_im = ops.concatenate([self.entity_imag, sin_theta], axis=0)
        return stacked_re, stacked_im

    def residual_components(self, triples: np.ndarray) -> tuple[Tensor, Tensor]:
        """Real and imaginary parts of ``h ⊙ r − t`` per triplet."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        stacked_re, stacked_im = self._stacked()
        h = triples[:, 0]
        r = triples[:, 1] + self.n_entities
        t = triples[:, 2]
        h_re = ops.gather_rows(stacked_re, h)
        h_im = ops.gather_rows(stacked_im, h)
        r_re = ops.gather_rows(stacked_re, r)
        r_im = ops.gather_rows(stacked_im, r)
        t_re = ops.gather_rows(stacked_re, t)
        t_im = ops.gather_rows(stacked_im, t)
        res_re = h_re * r_re - h_im * r_im - t_re
        res_im = h_re * r_im + h_im * r_re - t_im
        return res_re, res_im

    def scores(self, triples: np.ndarray) -> Tensor:
        """Summed complex modulus of the rotation residual (smaller = better)."""
        res_re, res_im = self.residual_components(triples)
        modulus = ops.sqrt(res_re * res_re + res_im * res_im, eps=1e-12)
        return modulus.sum(axis=-1)

    def entity_embedding_matrix(self) -> np.ndarray:
        return np.concatenate([self.entity_real.data, self.entity_imag.data], axis=1)

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.relation_phase.data.copy()

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["semiring"] = "rotate"
        return cfg
