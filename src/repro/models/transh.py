"""Sparse TransH (paper Section 4.5).

TransH projects entities onto a relation-specific hyperplane with normal
``w_r`` before translating by ``d_r``.  The paper's algebraic rearrangement,

    ``(h − t) + d_r − (w_rᵀ · (h − t)) w_r ≈ 0``,

contains the ``ht`` expression twice, so a single ``ht`` SpMM provides both
occurrences; the remaining work is a row-wise dot product and a rank-1
correction.  Reusing the SpMM output for both terms is what gives the sparse
TransH its small memory footprint (paper Section 6.2.2).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.ops import normalize_rows, row_dot
from repro.autograd.tensor import Tensor
from repro.models.base import TranslationalModel
from repro.nn.embedding import Embedding
from repro.nn.parameter import Parameter
from repro.nn import init
from repro.registry import register_model
from repro.sparse.backends import DEFAULT_BACKEND
from repro.sparse.incidence import IncidenceBuilder
from repro.sparse.spmm import spmm
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("transh", "sparse", accepts_backend=True, accepts_dissimilarity=True,
                supports_sparse_grads=True, formulation_tag="ht-spmm+hyperplane",
                default_dissimilarity="L2")
class SpTransH(TranslationalModel):
    """TransH trained through SpMM over the ``ht`` incidence matrix.

    Parameters
    ----------
    n_entities, n_relations:
        Vocabulary sizes.
    embedding_dim:
        Entity (and hyperplane) embedding width.
    dissimilarity:
        ``"L1"`` or ``"L2"``.
    backend, fmt:
        SpMM backend name and incidence format.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "L2", backend: str = DEFAULT_BACKEND,
                 fmt: str = "csr", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim, dissimilarity)
        rng = new_rng(rng)
        entity_weight = Parameter(np.empty((n_entities, embedding_dim)), name="entity_embeddings")
        init.xavier_uniform_(entity_weight, rng=rng)
        self.entity_embeddings = entity_weight

        self.translations = Embedding(n_relations, embedding_dim, rng=rng)
        self.normals = Embedding(n_relations, embedding_dim, rng=rng)

        self.builder = IncidenceBuilder(n_entities, n_relations, fmt=fmt)
        self.backend = backend

    def residuals(self, triples: np.ndarray) -> Tensor:
        """Per-triplet ``(h − t) + d_r − (w_rᵀ (h − t)) w_r`` with one SpMM."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        if self.sparse_grads:
            # The row-sparse backward never needs A^T; skip building it.
            A, A_t = self.builder.ht(triples), None
        else:
            A, A_t = self.builder.ht(triples, with_transpose=True)
        ht = spmm(A, self.entity_embeddings, backend=self.backend, A_t=A_t,
                  sparse_grad=self.sparse_grads)                             # (B, d)
        rel_idx = triples[:, 1]
        d_r = self.translations(rel_idx)                                      # (B, d)
        w_r = normalize_rows(self.normals(rel_idx))                           # (B, d), unit norm
        projection = row_dot(w_r, ht)                                         # (B,)
        correction = w_r * projection.reshape(-1, 1)
        return ht + d_r - correction

    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity ``||h_⊥ + d_r − t_⊥||`` per triplet."""
        return self.dissimilarity(self.residuals(triples))

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.entity_embeddings.data.copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.translations.weight.data.copy()

    def normal_vectors(self) -> np.ndarray:
        """Unit-normalised hyperplane normals ``(R, d)``."""
        w = self.normals.weight.data
        return w / np.maximum(np.linalg.norm(w, axis=1, keepdims=True), 1e-12)

    def normalize_parameters(self) -> None:
        """Constrain entity embeddings to the unit ball and normals to unit norm."""
        ent = self.entity_embeddings.data
        norms = np.linalg.norm(ent, axis=1, keepdims=True)
        ent *= np.where(norms > 1.0, 1.0 / np.maximum(norms, 1e-12), 1.0)
        w = self.normals.weight.data
        w /= np.maximum(np.linalg.norm(w, axis=1, keepdims=True), 1e-12)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["backend"] = self.backend
        cfg["formulation"] = "ht-spmm+hyperplane"
        return cfg
