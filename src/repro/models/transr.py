"""Sparse TransR (paper Section 4.4).

TransR scores ``||M_r h + r − M_r t||`` with a per-relation projection matrix
``M_r`` mapping the entity space (dimension ``d``) into the relation space
(dimension ``k``).  The paper's rearrangement ``M_r (h − t) + r`` exposes the
``ht`` expression, so the sparse path is:

1. one SpMM with the ``ht`` incidence matrix → per-triplet ``h − t``;
2. a batched projection by the gathered ``M_r`` matrices;
3. addition of the gathered relation vectors and the L2 norm.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.ops import bmm_vec, gather_rows
from repro.autograd.tensor import Tensor
from repro.models.base import TranslationalModel
from repro.nn import init
from repro.nn.embedding import Embedding
from repro.nn.parameter import Parameter
from repro.registry import register_model
from repro.sparse.backends import DEFAULT_BACKEND
from repro.sparse.incidence import IncidenceBuilder
from repro.sparse.spmm import spmm
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("transr", "sparse", accepts_relation_dim=True, accepts_backend=True,
                accepts_dissimilarity=True, supports_sparse_grads=True,
                formulation_tag="ht-spmm+projection", default_dissimilarity="L2")
class SpTransR(TranslationalModel):
    """TransR trained through SpMM over the ``ht`` incidence matrix.

    Parameters
    ----------
    n_entities, n_relations:
        Vocabulary sizes.
    embedding_dim:
        Entity embedding width ``d``.
    relation_dim:
        Relation-space width ``k`` (defaults to ``embedding_dim``).
    dissimilarity:
        ``"L1"`` or ``"L2"``.
    backend, fmt:
        SpMM backend name and incidence format.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 relation_dim: int | None = None, dissimilarity: str = "L2",
                 backend: str = DEFAULT_BACKEND, fmt: str = "csr", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim, dissimilarity)
        self.relation_dim = int(relation_dim) if relation_dim is not None else int(embedding_dim)
        if self.relation_dim <= 0:
            raise ValueError(f"relation_dim must be positive, got {relation_dim}")
        rng = new_rng(rng)

        entity_weight = Parameter(np.empty((n_entities, embedding_dim)), name="entity_embeddings")
        init.xavier_uniform_(entity_weight, rng=rng)
        self.entity_embeddings = entity_weight

        self.relation_embeddings = Embedding(n_relations, self.relation_dim, rng=rng)

        projections = Parameter(
            np.empty((n_relations, self.relation_dim, embedding_dim)), name="projections"
        )
        init.identity_stack_(projections)
        self.projections = projections

        self.builder = IncidenceBuilder(n_entities, n_relations, fmt=fmt)
        self.backend = backend

    def residuals(self, triples: np.ndarray) -> Tensor:
        """Per-triplet ``M_r (h − t) + r`` via one ``ht`` SpMM + batched projection."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        if self.sparse_grads:
            # The row-sparse backward never needs A^T; skip building it.
            A, A_t = self.builder.ht(triples), None
        else:
            A, A_t = self.builder.ht(triples, with_transpose=True)
        ht = spmm(A, self.entity_embeddings, backend=self.backend, A_t=A_t,
                  sparse_grad=self.sparse_grads)                               # (B, d)
        rel_idx = triples[:, 1]
        mats = gather_rows(self.projections, rel_idx,
                           sparse_grad=self.sparse_grads)                      # (B, k, d)
        projected = bmm_vec(mats, ht)                                          # (B, k)
        rel = self.relation_embeddings(rel_idx)                                # (B, k)
        return projected + rel

    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity ``||M_r (h − t) + r||`` per triplet."""
        return self.dissimilarity(self.residuals(triples))

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.entity_embeddings.data.copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.relation_embeddings.weight.data.copy()

    def projection_matrices(self) -> np.ndarray:
        """Snapshot of the per-relation projection stack ``(R, k, d)``."""
        return self.projections.data.copy()

    def normalize_parameters(self) -> None:
        """Constrain entity and relation embeddings to the unit L2 ball."""
        for matrix in (self.entity_embeddings.data, self.relation_embeddings.weight.data):
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            scale = np.where(norms > 1.0, 1.0 / np.maximum(norms, 1e-12), 1.0)
            matrix *= scale

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["relation_dim"] = self.relation_dim
        cfg["backend"] = self.backend
        cfg["formulation"] = "ht-spmm+projection"
        return cfg
