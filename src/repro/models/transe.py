"""Sparse TransE (paper Section 4.3).

TransE enforces ``h + r ≈ t`` and scores a triplet with ``||h + r − t||``.
The sparse formulation obtains the whole batch of residuals with one SpMM:
the ``hrt`` incidence matrix (one row per triplet, +1 at head, +1 at the
offset relation column, −1 at tail) is multiplied against the stacked
``[E_entities; E_relations]`` matrix.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.tensor import Tensor
from repro.models.base import TranslationalModel
from repro.nn.embedding import StackedEmbedding
from repro.registry import register_model
from repro.sparse.backends import DEFAULT_BACKEND
from repro.sparse.incidence import IncidenceBuilder
from repro.sparse.spmm import spmm
from repro.utils.validation import check_triples


@register_model("transe", "sparse", accepts_backend=True, accepts_dissimilarity=True,
                supports_sparse_grads=True, formulation_tag="hrt-spmm",
                default_dissimilarity="L2")
class SpTransE(TranslationalModel):
    """TransE trained through SpMM over the ``hrt`` incidence matrix.

    Parameters
    ----------
    n_entities, n_relations:
        Vocabulary sizes.
    embedding_dim:
        Shared entity/relation embedding width.
    dissimilarity:
        ``"L1"`` or ``"L2"`` (the paper's experiments use L2).
    backend:
        Registered SpMM backend name (``"scipy"``, ``"fused"``, ``"numpy"``).
    fmt:
        Incidence-matrix format handed to the backend (``"csr"`` or ``"coo"``).
    rng:
        Seed or generator for the Xavier initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "L2", backend: str = DEFAULT_BACKEND,
                 fmt: str = "csr", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim, dissimilarity)
        self.embeddings = StackedEmbedding(n_entities, n_relations, embedding_dim, rng=rng)
        self.builder = IncidenceBuilder(n_entities, n_relations, fmt=fmt)
        self.backend = backend

    #: Upper bound on the number of ``(B, block, d)`` diff elements a single
    #: closed-form ranking block may materialise (~16 MB of float64).  Keeps
    #: peak memory flat in the vocabulary size and each block inside the CPU
    #: cache hierarchy — large multi-query blocks were allocation-bound (every
    #: 100+ MB temporary is an mmap + kernel page-zeroing round trip); see
    #: ``score_all_tails``.
    RANK_BLOCK_ELEMENTS = 1 << 21

    def residuals(self, triples: np.ndarray) -> Tensor:
        """Per-triplet ``h + r − t`` computed with a single SpMM."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        if self.sparse_grads:
            # The row-sparse backward reads A's structure directly; building
            # the transpose would be dead work on the hot path.
            A, A_t = self.builder.hrt(triples), None
        else:
            A, A_t = self.builder.hrt(triples, with_transpose=True)
        return spmm(A, self.embeddings.weight, backend=self.backend, A_t=A_t,
                    sparse_grad=self.sparse_grads)

    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity ``||h + r − t||`` per triplet."""
        return self.dissimilarity(self.residuals(triples))

    def score_all_tails(self, heads: np.ndarray, relations: np.ndarray,
                        chunk_size: int = 65536) -> np.ndarray:
        """Closed-form ranking: ``||(h + r) − t'||`` against every entity.

        The ``(B, N, d)`` diff tensor is never materialised whole — at
        B=128, N=100k, d=100 that would be ~10 GB — the candidate entities
        are processed in blocks bounded by :attr:`RANK_BLOCK_ELEMENTS`.
        """
        heads = np.asarray(heads, dtype=np.int64).reshape(-1)
        relations = np.asarray(relations, dtype=np.int64).reshape(-1)
        ent = self.embeddings.entity_embeddings()
        rel = self.embeddings.relation_embeddings()
        translated = ent[heads] + rel[relations]          # (B, d)
        return self._rank_blocked(translated, ent, reverse=False,
                                  chunk_size=chunk_size)

    def score_all_heads(self, relations: np.ndarray, tails: np.ndarray,
                        chunk_size: int = 65536) -> np.ndarray:
        """Closed-form ranking: ``||h' − (t − r)||`` against every entity.

        Blocked over candidate entities like :meth:`score_all_tails`.
        """
        relations = np.asarray(relations, dtype=np.int64).reshape(-1)
        tails = np.asarray(tails, dtype=np.int64).reshape(-1)
        ent = self.embeddings.entity_embeddings()
        rel = self.embeddings.relation_embeddings()
        target = ent[tails] - rel[relations]               # (B, d)
        return self._rank_blocked(target, ent, reverse=True,
                                  chunk_size=chunk_size)

    def _rank_blocked(self, queries: np.ndarray, ent: np.ndarray,
                      reverse: bool, chunk_size: int = 65536) -> np.ndarray:
        """Reduce ``queries`` against every entity in memory-bounded blocks.

        ``chunk_size`` caps the entities per block; :attr:`RANK_BLOCK_ELEMENTS`
        additionally bounds the ``(B, block, d)`` diff tensor, whichever is
        smaller.  ``reverse`` flips the sign of the residual (``entity −
        query`` instead of ``query − entity``) so asymmetric dissimilarities
        in subclasses keep their original orientation.
        """
        if self._l2_gemm_applies():
            return self._rank_l2_gemm(queries, ent)
        b, d = queries.shape
        n = ent.shape[0]
        block = max(1, min(int(chunk_size),
                           int(self.RANK_BLOCK_ELEMENTS // max(1, b * d))))
        out = np.empty((b, n), dtype=np.result_type(queries.dtype, ent.dtype))
        for start in range(0, n, block):
            stop = min(n, start + block)
            diff = queries[:, None, :] - ent[None, start:stop, :]
            if reverse:
                np.negative(diff, out=diff)
            out[:, start:stop] = self._reduce(diff)
        return out

    def _l2_gemm_applies(self) -> bool:
        """Whether the GEMM expansion can replace the blocked diff reduction.

        Only valid when the reduction really is the plain L2 norm: subclasses
        (torus, squared, adaptive metrics) and instances that override
        :meth:`_reduce` keep the blocked path.
        """
        reduce_impl = getattr(self._reduce, "__func__", self._reduce)
        return reduce_impl is SpTransE._reduce and self.dissimilarity_name == "L2"

    def _rank_l2_gemm(self, queries: np.ndarray, ent: np.ndarray) -> np.ndarray:
        """Batched L2 ranking through one GEMM, no ``(B, N, d)`` temporary.

        The single-matmul expansion is the serving-path win that makes
        coalesced multi-query ranking cheaper than one query at a time.  The
        norm is symmetric, so the ``reverse`` orientation needs no special
        case.
        """
        return self.l2_distance_matrix(queries, ent)

    def _reduce(self, diff: np.ndarray) -> np.ndarray:
        if self.dissimilarity_name == "L1":
            return np.abs(diff).sum(axis=-1)
        return np.sqrt((diff ** 2).sum(axis=-1) + 1e-12)

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.embeddings.entity_embeddings().copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.embeddings.relation_embeddings().copy()

    def normalize_parameters(self) -> None:
        """Project entity embeddings onto the unit L2 ball (TransE's constraint)."""
        self.embeddings.renormalize_entities(max_norm=1.0, p=2)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["backend"] = self.backend
        cfg["formulation"] = "hrt-spmm"
        return cfg
