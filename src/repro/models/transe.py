"""Sparse TransE (paper Section 4.3).

TransE enforces ``h + r ≈ t`` and scores a triplet with ``||h + r − t||``.
The sparse formulation obtains the whole batch of residuals with one SpMM:
the ``hrt`` incidence matrix (one row per triplet, +1 at head, +1 at the
offset relation column, −1 at tail) is multiplied against the stacked
``[E_entities; E_relations]`` matrix.

With ``partitions > 1`` the entity table moves into a
:class:`~repro.nn.partitioned.PartitionedEmbedding` and the *same* SpMM runs
over a **compacted sub-incidence matrix**: the batch's unique entity and
relation ids are remapped (order-preservingly) onto a compact column space,
only those rows are gathered from the resident buckets, and the backward
emits per-bucket row-sparse gradients.  Because the remap preserves the
within-row column order of the full incidence matrix, both the forward
residuals and the coalesced backward sums are bit-identical to the
unpartitioned ``sparse_grads`` path on the same backend — which is what lets
a ``P``-way partitioned run reproduce the unpartitioned trajectory digest
exactly while never holding more than ``max_resident`` buckets in memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.models.base import TranslationalModel
from repro.nn.embedding import StackedEmbedding
from repro.nn.partitioned import PartitionedEmbedding
from repro.nn.table import block_rows_for
from repro.ranking import l2_distance_matrix
from repro.registry import register_model
from repro.sparse.backends import DEFAULT_BACKEND, get_backend
from repro.sparse.incidence import IncidenceBuilder, build_hrt_incidence
from repro.sparse.spmm import rowsparse_backward_for, spmm
from repro.utils.validation import check_triples


@register_model("transe", "sparse", accepts_backend=True, accepts_dissimilarity=True,
                supports_sparse_grads=True, accepts_partitions=True,
                formulation_tag="hrt-spmm", default_dissimilarity="L2")
class SpTransE(TranslationalModel):
    """TransE trained through SpMM over the ``hrt`` incidence matrix.

    Parameters
    ----------
    n_entities, n_relations:
        Vocabulary sizes.
    embedding_dim:
        Shared entity/relation embedding width.
    dissimilarity:
        ``"L1"`` or ``"L2"`` (the paper's experiments use L2).
    backend:
        Registered SpMM backend name (``"scipy"``, ``"fused"``, ``"numpy"``).
    fmt:
        Incidence-matrix format handed to the backend (``"csr"`` or ``"coo"``).
    rng:
        Seed or generator for the Xavier initialisation.
    partitions:
        Number of entity buckets (``1`` keeps the classic dense
        :class:`~repro.nn.embedding.StackedEmbedding`).  ``> 1`` pages entity
        rows through an LRU-bounded resident set and implies row-sparse
        gradients (the partitioned table has no dense full-table path).
    partition_dir:
        Directory backing the bucket files (default: private tempdir).
    max_resident:
        Buckets simultaneously resident; ``2`` matches the bucket-pair batch
        schedule.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "L2", backend: str = DEFAULT_BACKEND,
                 fmt: str = "csr", rng=None, partitions: int = 1,
                 partition_dir: Optional[str] = None,
                 max_resident: Optional[int] = 2) -> None:
        super().__init__(n_entities, n_relations, embedding_dim, dissimilarity)
        self.partitions = max(1, int(partitions))
        self.n_partitions = self.partitions
        if self.partitions > 1:
            self.embeddings = PartitionedEmbedding(
                n_entities, n_relations, embedding_dim,
                partitions=self.partitions, rng=rng, directory=partition_dir,
                max_resident=max_resident)
            # The compact sub-incidence path always produces row-sparse
            # per-bucket gradients; dense full-table gradients do not exist.
            self.sparse_grads = True
        else:
            self.embeddings = StackedEmbedding(n_entities, n_relations,
                                               embedding_dim, rng=rng)
        self.builder = IncidenceBuilder(n_entities, n_relations, fmt=fmt)
        self.fmt = fmt
        self.backend = backend

    #: Upper bound on the number of ``(B, block, d)`` diff elements a single
    #: closed-form ranking block may materialise (~16 MB of float64).  Keeps
    #: peak memory flat in the vocabulary size and each block inside the CPU
    #: cache hierarchy — large multi-query blocks were allocation-bound (every
    #: 100+ MB temporary is an mmap + kernel page-zeroing round trip); see
    #: ``score_all_tails``.
    RANK_BLOCK_ELEMENTS = 1 << 21

    def set_sparse_grads(self, enabled: bool = True) -> "SpTransE":
        """Toggle row-sparse gradients (forced on for partitioned tables)."""
        if self.partitions > 1:
            enabled = True
        return super().set_sparse_grads(enabled)

    def bind_optimizer(self, optimizer) -> None:
        if self.partitions > 1:
            self.embeddings.attach_optimizer(optimizer)

    def residuals(self, triples: np.ndarray) -> Tensor:
        """Per-triplet ``h + r − t`` computed with a single SpMM."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        if self.partitions > 1:
            return self._residuals_partitioned(triples)
        if self.sparse_grads:
            # The row-sparse backward reads A's structure directly; building
            # the transpose would be dead work on the hot path.
            A, A_t = self.builder.hrt(triples), None
        else:
            A, A_t = self.builder.hrt(triples, with_transpose=True)
        return spmm(A, self.embeddings.weight, backend=self.backend, A_t=A_t,
                    sparse_grad=self.sparse_grads)

    def _residuals_partitioned(self, triples: np.ndarray) -> Tensor:
        """Compact sub-incidence SpMM over only the batch's unique rows.

        The unique entity/relation ids are remapped onto ``[0, U_e)`` /
        ``[0, U_r)``; both maps are monotone, so the compacted ``hrt``
        matrix's per-row column order — and therefore every floating-point
        accumulation in the kernel and in the row-sparse backward — matches
        the full-matrix computation exactly.  The backward splits the compact
        row-sparse gradient back onto the touched bucket parameters (bucket-
        local indices) and the relation parameter.
        """
        entity_ids = np.unique(triples[:, 0::2])
        relation_ids = np.unique(triples[:, 1])
        compact = np.empty_like(triples)
        compact[:, 0] = np.searchsorted(entity_ids, triples[:, 0])
        compact[:, 1] = np.searchsorted(relation_ids, triples[:, 1])
        compact[:, 2] = np.searchsorted(entity_ids, triples[:, 2])
        A = build_hrt_incidence(compact, int(entity_ids.size),
                                int(relation_ids.size), fmt=self.fmt)
        stacked, parents = self.embeddings.gather_stacked(entity_ids, relation_ids)
        out = get_backend(self.backend)(A, stacked)
        table = self.embeddings
        n_rows = stacked.shape[0]
        rowsparse_bwd = rowsparse_backward_for(self.backend)

        def backward(grad: np.ndarray) -> None:
            table.scatter_stacked_grad(
                entity_ids, relation_ids, rowsparse_bwd(A, grad, n_rows))

        return Tensor._make(out, parents, backward, "spmm[partitioned]")

    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity ``||h + r − t||`` per triplet."""
        return self.dissimilarity(self.residuals(triples))

    # ------------------------------------------------------------------ #
    # Closed-form ranking
    # ------------------------------------------------------------------ #
    def _entity_rows(self, entity_ids: np.ndarray) -> np.ndarray:
        if self.partitions > 1:
            return self.embeddings.read_rows(entity_ids)
        return self.embeddings.entity_embeddings()[entity_ids]

    def _relation_rows(self, relation_ids: np.ndarray) -> np.ndarray:
        if self.partitions > 1:
            return self.embeddings.relation_rows(relation_ids)
        return self.embeddings.relation_embeddings()[relation_ids]

    def score_all_tails(self, heads: np.ndarray, relations: np.ndarray,
                        chunk_size: int = 65536) -> np.ndarray:
        """Closed-form ranking: ``||(h + r) − t'||`` against every entity.

        The ``(B, N, d)`` diff tensor is never materialised whole — at
        B=128, N=100k, d=100 that would be ~10 GB — the candidate entities
        are processed in blocks bounded by :attr:`RANK_BLOCK_ELEMENTS` (and,
        for partitioned tables, streamed one resident bucket at a time).
        """
        heads = np.asarray(heads, dtype=np.int64).reshape(-1)
        relations = np.asarray(relations, dtype=np.int64).reshape(-1)
        translated = self._entity_rows(heads) + self._relation_rows(relations)
        return self._rank_blocked(translated, reverse=False,
                                  chunk_size=chunk_size)

    def score_all_heads(self, relations: np.ndarray, tails: np.ndarray,
                        chunk_size: int = 65536) -> np.ndarray:
        """Closed-form ranking: ``||h' − (t − r)||`` against every entity.

        Blocked over candidate entities like :meth:`score_all_tails`.
        """
        relations = np.asarray(relations, dtype=np.int64).reshape(-1)
        tails = np.asarray(tails, dtype=np.int64).reshape(-1)
        target = self._entity_rows(tails) - self._relation_rows(relations)
        return self._rank_blocked(target, reverse=True, chunk_size=chunk_size)

    def _rank_blocked(self, queries: np.ndarray, reverse: bool,
                      chunk_size: int = 65536) -> np.ndarray:
        """Reduce ``queries`` against every entity in memory-bounded blocks.

        ``chunk_size`` caps the entities per block; :attr:`RANK_BLOCK_ELEMENTS`
        additionally bounds the ``(B, block, d)`` diff tensor, whichever is
        smaller.  ``reverse`` flips the sign of the residual (``entity −
        query`` instead of ``query − entity``) so asymmetric dissimilarities
        in subclasses keep their original orientation.  Candidate blocks come
        from :meth:`iter_entity_embedding_blocks`, so the same loop serves the
        dense table (views) and the partitioned table (one bucket resident at
        a time).
        """
        use_gemm = self._l2_gemm_applies()
        if use_gemm and self.partitions == 1:
            # Dense fast path: one GEMM over the whole entity matrix.
            return self._rank_l2_gemm(queries, self.embeddings.entity_embeddings())
        b, d = queries.shape
        n = self.n_entities
        block = max(1, min(int(chunk_size),
                           int(self.RANK_BLOCK_ELEMENTS // max(1, b * d))))
        # The GEMM path needs no (B, block, d) diff tensor, but each block
        # still materialises ~block*d floats of candidate rows — bound by
        # elements, not rows, so wide tables stay within the memory budget.
        block_rows = max(1, min(int(chunk_size),
                                int(self.RANK_BLOCK_ELEMENTS // max(1, d)))
                         ) if use_gemm else block
        out = np.empty((b, n), dtype=np.float64)
        for start, ent_block in self.iter_entity_embedding_blocks(block_rows):
            stop = start + ent_block.shape[0]
            if use_gemm:
                out[:, start:stop] = self._rank_l2_gemm(queries, ent_block)
            else:
                diff = queries[:, None, :] - ent_block[None, :, :]
                if reverse:
                    np.negative(diff, out=diff)
                out[:, start:stop] = self._reduce(diff)
        return out

    def _l2_gemm_applies(self) -> bool:
        """Whether the GEMM expansion can replace the blocked diff reduction.

        Only valid when the reduction really is the plain L2 norm: subclasses
        (torus, squared, adaptive metrics) and instances that override
        :meth:`_reduce` keep the blocked path.
        """
        reduce_impl = getattr(self._reduce, "__func__", self._reduce)
        return reduce_impl is SpTransE._reduce and self.dissimilarity_name == "L2"

    def _rank_l2_gemm(self, queries: np.ndarray, ent: np.ndarray) -> np.ndarray:
        """Batched L2 ranking through one GEMM, no ``(B, N, d)`` temporary.

        The single-matmul expansion is the serving-path win that makes
        coalesced multi-query ranking cheaper than one query at a time.  The
        norm is symmetric, so the ``reverse`` orientation needs no special
        case.
        """
        return l2_distance_matrix(queries, ent)

    def _reduce(self, diff: np.ndarray) -> np.ndarray:
        if self.dissimilarity_name == "L1":
            return np.abs(diff).sum(axis=-1)
        return np.sqrt((diff ** 2).sum(axis=-1) + 1e-12)

    # ------------------------------------------------------------------ #
    # Exact rescoring (two-phase quantized serving)
    # ------------------------------------------------------------------ #
    @property
    def serving_quantized(self) -> Optional[str]:
        """Quantization mode the entity table is served from (or ``None``)."""
        if self.partitions > 1:
            return self.embeddings.quantized
        return None

    def exact_entity_rows(self, entity_ids: np.ndarray) -> np.ndarray:
        """Float64 entity rows regardless of serving quantization.

        On a quantized partitioned table this reads the exact bucket files
        row-wise (:meth:`~repro.nn.partitioned.PartitionedEmbedding.exact_rows`)
        instead of the quantized resident slabs.
        """
        idx = np.asarray(entity_ids, dtype=np.int64).reshape(-1)
        if self.partitions > 1:
            return self.embeddings.exact_rows(idx)
        return np.array(self.embeddings.entity_embeddings()[idx],
                        dtype=np.float64, copy=True)

    def exact_candidate_scores(self, anchor: int, relation: int,
                               candidates: np.ndarray,
                               direction: str) -> Optional[np.ndarray]:
        """Full-precision scores for one query against a short candidate list.

        The rescoring half of two-phase quantized serving: the engine ranks
        every entity coarsely on the quantized slabs, keeps the top
        ``k × expansion`` candidates, and calls this to score just those rows
        from the exact float64 bucket files — the same
        ``||q||² − 2q·Tᵀ + ||t||²`` kernel the full-precision path runs, so
        the rescored ordering matches full-precision serving.  ``direction``
        is ``"tail"`` (``anchor`` is the head) or ``"head"`` (``anchor`` is
        the tail); returns ``None`` when the closed L2 form does not apply
        (L1 / overridden reductions), telling the caller to serve the coarse
        ranking as-is.
        """
        query = self.l2_query_vector(anchor, relation, direction)
        if query is None:
            return None
        candidates = np.asarray(candidates, dtype=np.int64).reshape(-1)
        return l2_distance_matrix(query[None, :], self.exact_entity_rows(candidates))[0]

    def l2_query_vector(self, anchor: int, relation: int,
                        direction: str) -> Optional[np.ndarray]:
        """Float64 L2 query (``h + r`` / ``t − r``) when the closed form applies.

        Shared by :meth:`exact_candidate_scores` and the serving engine's
        ANN routing, so an IVF-rescored ranking and an exact rescored ranking
        score candidates from literally the same query vector.  ``None`` for
        L1 / overridden reductions (the caller falls back to exact ranking).
        """
        if not self._l2_gemm_applies():
            return None
        anchor_row = self.exact_entity_rows(np.array([anchor]))[0]
        rel_row = np.asarray(self._relation_rows(np.array([relation]))[0],
                             dtype=np.float64)
        return anchor_row + rel_row if direction == "tail" else anchor_row - rel_row

    # ------------------------------------------------------------------ #
    # Introspection / maintenance
    # ------------------------------------------------------------------ #
    def entity_embedding_matrix(self) -> np.ndarray:
        """Dense snapshot; for partitioned tables this densifies every bucket
        (debugging / small-scale use — serving paths stream blocks instead)."""
        if self.partitions > 1:
            return self.embeddings.to_matrix()
        return self.embeddings.entity_embeddings().copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        if self.partitions > 1:
            return self.embeddings.relations.data.copy()
        return self.embeddings.relation_embeddings().copy()

    def entity_embedding_rows(self, entity_ids: np.ndarray) -> np.ndarray:
        idx = np.asarray(entity_ids, dtype=np.int64).reshape(-1)
        return np.array(self._entity_rows(idx), copy=True)

    def iter_entity_embedding_blocks(self, block_rows: Optional[int] = None
                                     ) -> Iterator[Tuple[int, np.ndarray]]:
        if block_rows is None:
            block_rows = block_rows_for(self.embedding_dim,
                                        self.RANK_BLOCK_ELEMENTS)
        if self.partitions > 1:
            yield from self.embeddings.iter_blocks(int(block_rows))
        else:
            yield from self.embeddings.entity_table().iter_blocks(int(block_rows))

    def normalize_parameters(self) -> None:
        """Project entity embeddings onto the unit L2 ball (TransE's constraint).

        Block-wise on both table kinds: bounded temporaries, bit-identical
        per-row results.
        """
        if self.partitions > 1:
            self.embeddings.renormalize_(max_norm=1.0, p=2)
        else:
            self.embeddings.renormalize_entities(max_norm=1.0, p=2)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["backend"] = self.backend
        cfg["formulation"] = "hrt-spmm"
        if self.partitions > 1:
            cfg["partitions"] = self.partitions
        return cfg
