"""Additional translational models expressed through the sparse formulation.

The paper's Table 2 lists several more translation-based score functions that
contain the same ``hrt`` expression and can therefore ride on the identical
single-SpMM machinery:

* **TransM** (Fan et al., 2014): ``w_r · ||h + r − t||`` — a per-relation
  scalar weight on the TransE distance.
* **TransC** (Lv et al., 2018), simplified to its score form in Table 2:
  ``||h + r − t||²₂``.
* **TransA** (Xiao et al., 2015): ``|h + r − t|ᵀ W_r |h + r − t|`` with a
  per-relation non-negative symmetric weight matrix (an adaptive Mahalanobis
  metric).

These classes demonstrate the paper's claim that "our proposed sparse approach
can be extended to accelerate other translation-based models": each one reuses
:class:`~repro.models.transe.SpTransE`'s ``hrt`` SpMM and only changes the
distance applied to the residual.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.models.transe import SpTransE
from repro.nn import init
from repro.nn.parameter import Parameter
from repro.registry import register_model
from repro.sparse.backends import DEFAULT_BACKEND
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("transm", "sparse", accepts_backend=True, accepts_dissimilarity=True,
                supports_sparse_grads=True, formulation_tag="hrt-spmm+relation-weight",
                default_dissimilarity="L2")
class SpTransM(SpTransE):
    """TransM through the ``hrt`` SpMM: ``w_r · ||h + r − t||``.

    The per-relation weight down-weights one-to-many / many-to-one relations so
    their looser translations are penalised less.  Weights are stored as free
    parameters passed through a softplus to stay positive.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "L2", backend: str = DEFAULT_BACKEND,
                 fmt: str = "csr", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim,
                         dissimilarity=dissimilarity, backend=backend, fmt=fmt, rng=rng)
        # softplus(log(e - 1)) == 1, so training starts at the TransE metric.
        self.relation_weights = Parameter(np.full(n_relations, np.log(np.e - 1.0)),
                                          name="relation_weights")

    def relation_weight_values(self) -> np.ndarray:
        """Positive per-relation weights ``w_r`` (after the softplus)."""
        return np.logaddexp(0.0, self.relation_weights.data)

    def scores(self, triples: np.ndarray) -> Tensor:
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        distances = self.dissimilarity(self.residuals(triples))
        weights = ops.softplus(ops.gather_rows(
            self.relation_weights.reshape(-1, 1), triples[:, 1]
        ))
        return distances * weights.reshape(-1)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "hrt-spmm+relation-weight"
        return cfg


@register_model("transc", "sparse", accepts_backend=True, supports_sparse_grads=True,
                formulation_tag="hrt-spmm+squared-distance",
                default_dissimilarity="squared_L2")
class SpTransC(SpTransE):
    """TransC's score form through the ``hrt`` SpMM: ``||h + r − t||²₂``.

    Only the squared-distance score of the paper's Table 2 is modelled; the
    full TransC concept/instance sphere machinery is out of scope.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 backend: str = DEFAULT_BACKEND, fmt: str = "csr", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim,
                         dissimilarity="squared_L2", backend=backend, fmt=fmt, rng=rng)

    def _reduce(self, diff: np.ndarray) -> np.ndarray:
        return (diff ** 2).sum(axis=-1)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "hrt-spmm+squared-distance"
        return cfg


@register_model("transa", "sparse", accepts_backend=True, supports_sparse_grads=True,
                formulation_tag="hrt-spmm+adaptive-metric", default_dissimilarity="L2")
class SpTransA(SpTransE):
    """TransA through the ``hrt`` SpMM: ``|h + r − t|ᵀ W_r |h + r − t|``.

    ``W_r`` is parameterised as ``M_r M_rᵀ`` (always symmetric positive
    semi-definite) and initialised at the identity, so training starts from the
    squared-L2 TransE metric and learns an adaptive per-relation metric.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 backend: str = DEFAULT_BACKEND, fmt: str = "csr", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim,
                         dissimilarity="L2", backend=backend, fmt=fmt, rng=rng)
        rng = new_rng(rng)
        metric = Parameter(np.empty((n_relations, embedding_dim, embedding_dim)),
                           name="metric_factors")
        init.identity_stack_(metric)
        self.metric_factors = metric

    def metric_matrices(self) -> np.ndarray:
        """The per-relation metrics ``W_r = M_r M_rᵀ`` (R, d, d)."""
        factors = self.metric_factors.data
        return np.einsum("rij,rkj->rik", factors, factors)

    def scores(self, triples: np.ndarray) -> Tensor:
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        abs_residual = ops.absolute(self.residuals(triples))          # (B, d)
        factors = ops.gather_rows(self.metric_factors, triples[:, 1])  # (B, d, d)
        projected = ops.bmm_vec(factors, abs_residual)                 # (B, d) = M_rᵀ|res|? see below
        # |res|ᵀ (M M^T) |res| == ||M^T |res|||²; bmm_vec computes M |res| with M
        # as stored, so the factor stack holds M^T directly (identity init makes
        # the distinction moot at start).
        return ops.squared_l2(projected)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "hrt-spmm+adaptive-metric"
        return cfg
