"""Sparse TorusE (paper Section 4.6).

TorusE shares TransE's additive structure (``h + r ≈ t``) but measures the
residual with a toroidal (wraparound) distance over the fractional parts of
the embeddings.  The sparse path is therefore identical to SpTransE — one
``hrt`` SpMM — followed by the torus dissimilarity, which the paper's
profiling (Figure 2) shows is itself a significant cost for this model.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.models.transe import SpTransE
from repro.registry import register_model
from repro.sparse.backends import DEFAULT_BACKEND


@register_model("toruse", "sparse", accepts_backend=True, accepts_dissimilarity=True,
                supports_sparse_grads=True, formulation_tag="hrt-spmm-torus",
                default_dissimilarity="torus_L2")
class SpTorusE(SpTransE):
    """TorusE trained through SpMM over the ``hrt`` incidence matrix.

    Parameters are identical to :class:`~repro.models.transe.SpTransE` except
    that the dissimilarity defaults to the squared toroidal L2 distance.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "torus_L2", backend: str = DEFAULT_BACKEND,
                 fmt: str = "csr", rng=None) -> None:
        if not dissimilarity.startswith("torus"):
            raise ValueError(
                f"TorusE requires a toroidal dissimilarity, got {dissimilarity!r}"
            )
        super().__init__(n_entities, n_relations, embedding_dim,
                         dissimilarity=dissimilarity, backend=backend, fmt=fmt, rng=rng)

    def _reduce(self, diff: np.ndarray) -> np.ndarray:
        frac = diff - np.floor(diff)
        dist = np.minimum(frac, 1.0 - frac)
        if self.dissimilarity_name == "torus_L1":
            return dist.sum(axis=-1)
        return (dist ** 2).sum(axis=-1)

    def normalize_parameters(self) -> None:
        """TorusE works on the fractional part; wrap embeddings into [0, 1)."""
        w = self.embeddings.weight.data
        np.mod(w, 1.0, out=w)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "hrt-spmm-torus"
        return cfg
