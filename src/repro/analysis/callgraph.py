"""Interprocedural layer of ``sptransx check``: the project call graph.

PR 7's checkers are file-local: a helper that mutates engine state without
the lock two calls deep, or an SQLite handle that leaks across a fork
through an intermediate module, passes silently.  This module gives the
checkers a whole-program view — which function calls which — so rules can
propagate facts (holds-lock, owns-resource, reached-from-fork-closure)
along real call edges instead of guessing from file boundaries.

Resolution is deliberately *heuristic but honest*: everything Python makes
statically visible is resolved (module-level imports and symbols, direct
calls, ``self.method()`` through base classes, ``self.attr.method()`` when
the attribute's class is inferable from ``__init__`` assignments or
parameter annotations, locally-constructed objects), and everything else —
dynamic dispatch through the model/backend registries, callables passed as
values, ``getattr`` — lands in :attr:`CallGraph.unresolved` rather than
producing a wrong edge.  Checkers built on the graph must therefore degrade
gracefully (no edge ⇒ no claim), never false-positive on dynamism.

Layout of keys (strings, stable across builds):

* module:      ``"serving/engine.py"`` (package-relative path)
* function:    ``"serving/engine.py::top_k"``
* method:      ``"serving/engine.py::InferenceEngine.reload"``
* class:       ``"serving/engine.py::InferenceEngine"`` (in :attr:`classes`)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Project, SourceFile

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "ClassInfo", "ModuleInfo",
           "walk_shallow"]

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class scopes.

    The roots themselves are yielded; a nested def/lambda is yielded (so a
    visitor can notice it exists) but its body is not entered — nested
    scopes execute at a different time with different lock/resource state,
    so facts must never leak across the boundary.
    """
    stack: List[ast.AST] = [node]
    first = True
    while stack:
        current = stack.pop()
        yield current
        if not first and isinstance(current, _NESTED_SCOPES):
            continue
        first = False
        stack.extend(ast.iter_child_nodes(current))

#: Module-level pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"


def module_to_relpath(project: Project, module: str,
                      package_name: str = "repro") -> Optional[str]:
    """Map a dotted ``repro.*`` module name to its package relpath."""
    prefix = package_name + "."
    if module == package_name:
        return "__init__.py" if project.file("__init__.py") else None
    if not module.startswith(prefix):
        return None
    tail = module[len(prefix):].replace(".", "/")
    for candidate in (f"{tail}.py", f"{tail}/__init__.py"):
        if project.file(candidate) is not None:
            return candidate
    return None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    key: str
    relpath: str
    qualname: str                     # "Class.method" or "func" or MODULE_BODY
    node: Optional[ast.AST]           # FunctionDef/AsyncFunctionDef; None for <module>
    cls: Optional[str] = None         # owning class key, if a method

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition with resolved bases and attribute types."""

    key: str
    relpath: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)       # resolved class keys
    methods: Dict[str, str] = field(default_factory=dict)  # name -> function key
    attr_types: Dict[str, str] = field(default_factory=dict)  # self.X -> class key


@dataclass
class CallSite:
    """One call expression, resolved or not.

    ``callee`` is the resolved function key (``None`` when resolution
    failed — dynamic dispatch, external library, computed callable).
    ``instantiates`` carries the class key when the call constructs a
    known project class (``callee`` then points at its ``__init__`` if
    one is defined).
    """

    caller: str
    node: ast.Call
    name: str                         # printable callee ("self._drain", "np.load")
    callee: Optional[str] = None
    instantiates: Optional[str] = None


class _ModuleSymbols:
    """Import/definition bindings visible at a module's top level."""

    def __init__(self) -> None:
        #: local name -> ("module", relpath) | ("symbol", relpath, name)
        self.imports: Dict[str, Tuple] = {}
        self.functions: Dict[str, str] = {}   # name -> function key
        self.classes: Dict[str, str] = {}     # name -> class key
        #: every first-party relpath whose import executes at module load
        #: time (including dotted imports that bind no local name, and the
        #: ancestor package __init__s Python runs on the way down).
        self.imported_modules: Set[str] = set()


@dataclass
class ModuleInfo:
    relpath: str
    symbols: _ModuleSymbols


def _call_name(func: ast.expr) -> str:
    """Best-effort printable name of a call target expression."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return f"{_call_name(func.value)}.{func.attr}"
    if isinstance(func, ast.Call):
        return _call_name(func.func) + "()"
    return "<expr>"


class CallGraph:
    """Call edges + symbol/class resolution over a :class:`Project`.

    Build once per check run (:meth:`for_project` memoises on the project
    instance) and query:

    * :meth:`resolve` — callee key for a specific ``ast.Call`` node
    * :meth:`calls_in` — every call site inside one function
    * :meth:`callers_of` — reverse edges
    * :meth:`resolve_method` — MRO walk over resolved base classes
    * :meth:`infer_type` — heuristic class of an expression in a context
    """

    def __init__(self, project: Project):
        self.project = project
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._calls: Dict[str, List[CallSite]] = {}
        self._callers: Dict[str, List[CallSite]] = {}
        self._by_node: Dict[int, CallSite] = {}
        self.unresolved: List[CallSite] = []
        self._build()

    # -------------------------------------------------------------- #
    # Construction
    # -------------------------------------------------------------- #
    @classmethod
    def for_project(cls, project: Project) -> "CallGraph":
        """The project's call graph, built once and cached on the project."""
        cached = getattr(project, "_callgraph_cache", None)
        if cached is None:
            cached = cls(project)
            project._callgraph_cache = cached  # type: ignore[attr-defined]
        return cached

    def _build(self) -> None:
        sources = list(self.project.files)
        for src in sources:
            self._collect_module(src)
        for src in sources:
            self._resolve_class_hierarchy(src)
        for src in sources:
            self._infer_attr_types(src)
        for src in sources:
            self._collect_calls(src)

    def _collect_module(self, src: SourceFile) -> None:
        symbols = _ModuleSymbols()
        self.modules[src.relpath] = ModuleInfo(src.relpath, symbols)
        module_key = f"{src.relpath}::{MODULE_BODY}"
        self.functions[module_key] = FunctionInfo(
            key=module_key, relpath=src.relpath, qualname=MODULE_BODY, node=src.tree)
        for stmt in src.tree.body:
            self._bind_import(src, symbols, stmt)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = f"{src.relpath}::{stmt.name}"
                self.functions[key] = FunctionInfo(
                    key=key, relpath=src.relpath, qualname=stmt.name, node=stmt)
                symbols.functions[stmt.name] = key
                self._register_nested(src, stmt.name, stmt)
            elif isinstance(stmt, ast.ClassDef):
                cls_key = f"{src.relpath}::{stmt.name}"
                info = ClassInfo(key=cls_key, relpath=src.relpath,
                                 name=stmt.name, node=stmt)
                self.classes[cls_key] = info
                symbols.classes[stmt.name] = cls_key
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mkey = f"{src.relpath}::{stmt.name}.{member.name}"
                        self.functions[mkey] = FunctionInfo(
                            key=mkey, relpath=src.relpath,
                            qualname=f"{stmt.name}.{member.name}",
                            node=member, cls=cls_key)
                        info.methods[member.name] = mkey
                        self._register_nested(
                            src, f"{stmt.name}.{member.name}", member)

    def _register_nested(self, src: SourceFile, parent_qual: str,
                         parent: ast.AST) -> None:
        """Register closures as their own functions (``outer.<locals>.inner``).

        A closure executes at a different time than its enclosing scope
        (callback, thread target, factory product), so its call sites must
        not be attributed to the outer function.  Nested defs get ``cls=None``
        even inside methods — their ``self`` binding is a free variable the
        graph does not model.
        """
        for node in walk_shallow(parent):
            if node is parent or not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            qual = f"{parent_qual}.<locals>.{node.name}"
            key = f"{src.relpath}::{qual}"
            self.functions[key] = FunctionInfo(
                key=key, relpath=src.relpath, qualname=qual, node=node)
            self._register_nested(src, qual, node)

    def _bind_import(self, src: SourceFile, symbols: _ModuleSymbols,
                     stmt: ast.stmt) -> None:
        # Imports nested under `if TYPE_CHECKING:` / try blocks still bind at
        # the top level for resolution purposes.
        for node in ast.walk(stmt) if isinstance(stmt, (ast.If, ast.Try)) else (stmt,):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    rel = module_to_relpath(self.project, alias.name)
                    if rel is not None:
                        self._note_imported(symbols, rel)
                        local = alias.asname or alias.name.split(".")[0]
                        if alias.asname or "." not in alias.name:
                            symbols.imports[local] = ("module", rel)
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                rel = module_to_relpath(self.project, node.module)
                if rel is not None:
                    self._note_imported(symbols, rel)
                for alias in node.names:
                    local = alias.asname or alias.name
                    sub = module_to_relpath(self.project,
                                            f"{node.module}.{alias.name}")
                    if sub is not None:
                        # ``from repro.data import sqlite_store``
                        self._note_imported(symbols, sub)
                        symbols.imports[local] = ("module", sub)
                    elif rel is not None:
                        symbols.imports[local] = ("symbol", rel, alias.name)

    def _note_imported(self, symbols: _ModuleSymbols, rel: str) -> None:
        symbols.imported_modules.add(rel)
        # Importing a submodule executes every ancestor package __init__.
        parts = rel.split("/")[:-1]
        for depth in range(len(parts)):
            init = "/".join(parts[:depth + 1]) + "/__init__.py"
            if self.project.file(init) is not None:
                symbols.imported_modules.add(init)

    # -------------------------------------------------------------- #
    # Symbol resolution
    # -------------------------------------------------------------- #
    def _lookup_symbol(self, relpath: str, name: str,
                       _seen: Optional[Set] = None) -> Optional[Tuple[str, str]]:
        """Resolve ``name`` in ``relpath``'s namespace to ("class"|"function", key).

        Follows one level of re-export chains (``from x import Y`` where x
        itself imported Y) with a cycle guard.
        """
        module = self.modules.get(relpath)
        if module is None:
            return None
        seen = _seen or set()
        if (relpath, name) in seen:
            return None
        seen.add((relpath, name))
        symbols = module.symbols
        if name in symbols.classes:
            return ("class", symbols.classes[name])
        if name in symbols.functions:
            return ("function", symbols.functions[name])
        bound = symbols.imports.get(name)
        if bound is None:
            return None
        if bound[0] == "symbol":
            return self._lookup_symbol(bound[1], bound[2], seen)
        return None

    def resolve_method(self, class_key: str, method: str,
                       _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Function key implementing ``method`` on ``class_key`` (MRO walk)."""
        seen = _seen or set()
        if class_key in seen:
            return None
        seen.add(class_key)
        info = self.classes.get(class_key)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.bases:
            found = self.resolve_method(base, method, seen)
            if found is not None:
                return found
        return None

    def _resolve_class_ref(self, relpath: str, expr: ast.expr) -> Optional[str]:
        """Class key for a base-class / annotation expression, if first-party."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            # String annotation: ``server: "InferenceServer"``.
            try:
                expr = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(expr, ast.Subscript):      # Optional[X] / List[X]
            return None
        if isinstance(expr, ast.Name):
            found = self._lookup_symbol(relpath, expr.id)
            if found and found[0] == "class":
                return found[1]
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            module = self.modules.get(relpath)
            if module is None:
                return None
            bound = module.symbols.imports.get(expr.value.id)
            if bound and bound[0] == "module":
                found = self._lookup_symbol(bound[1], expr.attr)
                if found and found[0] == "class":
                    return found[1]
        return None

    def _resolve_class_hierarchy(self, src: SourceFile) -> None:
        for stmt in src.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            info = self.classes[f"{src.relpath}::{stmt.name}"]
            for base in stmt.bases:
                resolved = self._resolve_class_ref(src.relpath, base)
                if resolved is not None:
                    info.bases.append(resolved)

    # -------------------------------------------------------------- #
    # Receiver-type heuristics
    # -------------------------------------------------------------- #
    def _infer_attr_types(self, src: SourceFile) -> None:
        for stmt in src.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            info = self.classes[f"{src.relpath}::{stmt.name}"]
            # Class-level annotations (``server: "InferenceServer"``).
            for member in stmt.body:
                if isinstance(member, ast.AnnAssign) and isinstance(member.target, ast.Name):
                    typed = self._resolve_class_ref(src.relpath, member.annotation)
                    if typed is not None:
                        info.attr_types[member.target.id] = typed
            for member in stmt.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                params = self._annotated_params(src.relpath, member)
                for node in walk_shallow(member):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        attr = _self_attr_name(target)
                        if not attr:
                            continue
                        typed = self._infer_value_type(src.relpath, node.value,
                                                       params, info)
                        if typed is not None:
                            info.attr_types.setdefault(attr, typed)

    def _annotated_params(self, relpath: str,
                          func: ast.AST) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for arg in list(func.args.posonlyargs) + list(func.args.args) + list(
                func.args.kwonlyargs):
            if arg.annotation is not None:
                typed = self._resolve_class_ref(relpath, arg.annotation)
                if typed is not None:
                    out[arg.arg] = typed
        return out

    def _infer_value_type(self, relpath: str, value: ast.expr,
                          params: Dict[str, str],
                          cls: Optional[ClassInfo]) -> Optional[str]:
        """Class key of a value expression: ctor call, typed param, typed attr."""
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                found = self._lookup_symbol(relpath, func.id)
                if found and found[0] == "class":
                    return found[1]
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                module = self.modules.get(relpath)
                bound = module.symbols.imports.get(func.value.id) if module else None
                if bound and bound[0] == "module":
                    found = self._lookup_symbol(bound[1], func.attr)
                    if found and found[0] == "class":
                        return found[1]
            return None
        if isinstance(value, ast.Name):
            return params.get(value.id)
        attr = _self_attr_name(value)
        if attr and cls is not None:
            return cls.attr_types.get(attr)
        if isinstance(value, ast.Attribute):
            base = self._infer_value_type(relpath, value.value, params, cls)
            if base is not None:
                based = self.classes.get(base)
                if based is not None:
                    return based.attr_types.get(value.attr)
        return None

    def infer_type(self, relpath: str, expr: ast.expr,
                   cls_key: Optional[str] = None,
                   local_types: Optional[Dict[str, str]] = None) -> Optional[str]:
        """Heuristic class key of ``expr`` inside (module, class) context."""
        cls = self.classes.get(cls_key) if cls_key else None
        if isinstance(expr, ast.Name) and local_types and expr.id in local_types:
            return local_types[expr.id]
        return self._infer_value_type(relpath, expr, local_types or {}, cls)

    # -------------------------------------------------------------- #
    # Call-edge extraction
    # -------------------------------------------------------------- #
    def _collect_calls(self, src: SourceFile) -> None:
        module_key = f"{src.relpath}::{MODULE_BODY}"

        def walk_function(fn: FunctionInfo, body: Sequence[ast.stmt]) -> None:
            local_types = {}
            if fn.node is not None and isinstance(
                    fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_types.update(self._annotated_params(src.relpath, fn.node))
            cls = self.classes.get(fn.cls) if fn.cls else None
            for stmt in body:
                if isinstance(stmt, _NESTED_SCOPES):
                    continue  # nested defs are their own entries
                for node in walk_shallow(stmt):
                    if isinstance(node, ast.Assign) and isinstance(
                            node.value, (ast.Call, ast.Name, ast.Attribute)):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                typed = self._infer_value_type(
                                    src.relpath, node.value, local_types, cls)
                                if typed is not None:
                                    local_types[target.id] = typed
                    if isinstance(node, ast.Call):
                        self._record_call(src, fn, node, local_types)

        for key, fn in list(self.functions.items()):
            if fn.relpath != src.relpath:
                continue
            if fn.qualname == MODULE_BODY:
                # Module-level statements, minus def/class bodies.
                body = [s for s in src.tree.body
                        if not isinstance(s, (ast.FunctionDef,
                                              ast.AsyncFunctionDef, ast.ClassDef))]
                walk_function(fn, body)
            elif isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk_function(fn, fn.node.body)
        # Decorator / default / base expressions at class+module level also
        # execute at import time; attribute them to <module>.
        fn = self.functions[module_key]
        for stmt in src.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                for deco in stmt.decorator_list:
                    for node in ast.walk(deco):
                        if isinstance(node, ast.Call):
                            self._record_call(src, fn, node, {})

    def _record_call(self, src: SourceFile, fn: FunctionInfo, node: ast.Call,
                     local_types: Dict[str, str]) -> None:
        if id(node) in self._by_node:
            return
        callee, instantiates = self._resolve_call(src.relpath, fn, node,
                                                  local_types)
        site = CallSite(caller=fn.key, node=node, name=_call_name(node.func),
                        callee=callee, instantiates=instantiates)
        self._calls.setdefault(fn.key, []).append(site)
        self._by_node[id(node)] = site
        if callee is not None:
            self._callers.setdefault(callee, []).append(site)
        elif instantiates is None:
            self.unresolved.append(site)

    def _resolve_call(self, relpath: str, fn: FunctionInfo, node: ast.Call,
                      local_types: Dict[str, str]
                      ) -> Tuple[Optional[str], Optional[str]]:
        func = node.func
        cls = self.classes.get(fn.cls) if fn.cls else None
        # plain name: local function / class ctor / imported symbol
        if isinstance(func, ast.Name):
            found = self._lookup_symbol(relpath, func.id)
            if found is None:
                return None, None
            kind, key = found
            if kind == "function":
                return key, None
            init = self.resolve_method(key, "__init__")
            return init, key
        if not isinstance(func, ast.Attribute):
            return None, None
        # self.method(...)
        if isinstance(func.value, ast.Name) and func.value.id == "self" and cls:
            method = self.resolve_method(cls.key, func.attr)
            return method, None
        # module.func(...) / module.Class(...)
        if isinstance(func.value, ast.Name):
            module = self.modules.get(relpath)
            bound = (module.symbols.imports.get(func.value.id)
                     if module else None)
            if bound and bound[0] == "module":
                found = self._lookup_symbol(bound[1], func.attr)
                if found is None:
                    return None, None
                kind, key = found
                if kind == "function":
                    return key, None
                init = self.resolve_method(key, "__init__")
                return init, key
        # typed receiver: local var / self.attr / chained attrs
        receiver = self.infer_type(relpath, func.value,
                                   cls.key if cls else None, local_types)
        if receiver is not None:
            method = self.resolve_method(receiver, func.attr)
            return method, None
        return None, None

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #
    def resolve(self, node: ast.Call) -> Optional[str]:
        """Resolved callee key for a call node seen during the build."""
        site = self._by_node.get(id(node))
        return site.callee if site is not None else None

    def site(self, node: ast.Call) -> Optional[CallSite]:
        return self._by_node.get(id(node))

    def calls_in(self, function_key: str) -> List[CallSite]:
        return self._calls.get(function_key, [])

    def callers_of(self, function_key: str) -> List[CallSite]:
        return self._callers.get(function_key, [])

    def function(self, key: str) -> Optional[FunctionInfo]:
        return self.functions.get(key)

    def class_of(self, key: str) -> Optional[ClassInfo]:
        return self.classes.get(key)

    def iter_functions(self, *prefixes: str) -> Iterator[FunctionInfo]:
        """Defined functions/methods (no module bodies), optionally by prefix."""
        for fn in self.functions.values():
            if fn.qualname == MODULE_BODY:
                continue
            if not prefixes or any(fn.relpath.startswith(p) for p in prefixes):
                yield fn

    def display(self, key: str) -> str:
        """Human-readable ``Class.method()`` / ``func()`` form of a key."""
        fn = self.functions.get(key)
        if fn is None:
            return key
        return f"{fn.qualname}()"


def _self_attr_name(node: ast.expr) -> str:
    """``X`` when node is ``self.X``, else empty string."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return ""
