"""Core of the ``sptransx check`` static-analysis framework.

The repo accumulated a set of cross-cutting invariants (dtype preservation
through the kernel layer, fork-safety in the multiprocess trainer, lock
discipline in serving, kernel-parity test coverage, registry completeness)
that example-based tests can only spot-check.  This package encodes each
invariant once, as an AST-level rule run over the whole source tree, so a
regression anywhere in the codebase fails CI even when no existing test
happens to exercise the broken path.

Three layers:

* :class:`Finding` — one rule violation at a file:line.
* :class:`Checker` — a rule implementation.  Checkers either inspect one
  file at a time (``check_file``) or the whole project (``check_project``,
  for cross-file rules like kernel-parity coverage).  Concrete checkers
  live in :mod:`repro.analysis.checkers` and register themselves with
  :func:`register_checker`.
* :class:`Project` / :func:`run_checks` — the driver: discovers sources,
  parses once, fans files out to checkers, and filters results through
  suppression comments.

Suppressions::

    x = np.empty(n)  # repro: ignore[dtype-ctor]
    # repro: ignore[lock-discipline]      (suppresses this physical line)
    # repro: ignore-file[fork-atexit]     (anywhere: suppresses whole file)
    # repro: ignore                       (all rules, this line)

No third-party dependencies: everything here is stdlib ``ast`` + ``re``.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import subprocess
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Checker",
    "Project",
    "SourceFile",
    "register_checker",
    "iter_checkers",
    "iter_rules",
    "run_checks",
    "changed_files",
]

#: Matches ``repro: ignore[rule-a,rule-b]`` / ``repro: ignore-file[...]``
#: comments.  A bare ``repro: ignore`` (no bracket) suppresses every rule.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>ignore-file|ignore)"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?"
)

#: Sentinel meaning "all rules suppressed".
_ALL_RULES = frozenset({"*"})


@dataclass(frozen=True)
class Finding:
    """One rule violation: ``path:line:col  rule  message``.

    ``snippet`` is the source line the finding points at (used for the
    content-based fingerprint; empty when unavailable).
    """

    rule: str
    path: str  # repo-root-relative, posix separators
    line: int
    col: int
    message: str
    snippet: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def fingerprint(self) -> str:
        """Stable content-based identity: rule + path + normalized snippet.

        Deliberately excludes the line number, so a finding keeps its
        fingerprint when unrelated edits shift the file — the property a
        future baseline ("known findings") file needs to not churn on
        every rebase.
        """
        normalized = " ".join(self.snippet.split())
        digest = hashlib.sha256(
            f"{self.rule}\0{self.path}\0{normalized}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


def _iter_comments(text: str) -> Iterator[Tuple[int, str]]:
    """(lineno, comment_text) for every comment token in ``text``.

    Falls back to a line scan on tokenize errors (sources are already
    ast-parsed before this runs, so that path is effectively dead).
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        for lineno, line in enumerate(text.splitlines(), start=1):
            if "#" in line:
                yield lineno, line[line.index("#"):]


class _SuppressionEntry:
    """One ``# repro: ignore...`` comment, with use tracking."""

    __slots__ = ("kind", "line", "rules", "used", "comment")

    def __init__(self, kind: str, line: int, rules: frozenset, comment: str):
        self.kind = kind        # "file" | "line"
        self.line = line        # physical line of the comment
        self.rules = rules      # rule ids, or _ALL_RULES
        self.used = False       # did it suppress at least one finding?
        self.comment = comment  # verbatim text, for the unused message


class _Suppressions:
    """Per-file suppression state parsed from ``# repro:`` comments.

    Real COMMENT tokens only (via ``tokenize``): a suppression example
    inside a docstring documents the syntax, it does not suppress — and
    must not be reported as a stale ignore either.
    """

    def __init__(self, text: str):
        self.entries: List[_SuppressionEntry] = []
        for lineno, comment in _iter_comments(text):
            m = _SUPPRESS_RE.search(comment)
            if m is None:
                continue
            raw = m.group("rules")
            rules = frozenset(
                r.strip() for r in raw.split(",") if r.strip()
            ) if raw else frozenset(_ALL_RULES)
            kind = "file" if m.group("kind") == "ignore-file" else "line"
            self.entries.append(
                _SuppressionEntry(kind, lineno, rules, m.group(0).strip())
            )

    def is_suppressed(self, rule: str, line: int) -> bool:
        hit = False
        for entry in self.entries:
            if not (entry.rules & {rule, "*"}):
                continue
            if entry.kind == "file" or entry.line == line:
                entry.used = True
                hit = True
        return hit


class SourceFile:
    """A parsed source file plus its suppression table.

    ``relpath`` is relative to the *package* root (``src/repro``) for
    package sources, or to the repo root (``tests/...``) for test files —
    checkers scope themselves by these paths.  ``display_path`` is always
    repo-root-relative and is what appears in findings.
    """

    def __init__(self, path: Path, relpath: str, display_path: str):
        self.path = path
        self.relpath = relpath
        self.display_path = display_path
        self.text = path.read_text(encoding="utf-8")
        self._tree: Optional[ast.AST] = None
        self._suppressions: Optional[_Suppressions] = None

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree  # type: ignore[return-value]

    @property
    def suppressions(self) -> _Suppressions:
        if self._suppressions is None:
            self._suppressions = _Suppressions(self.text)
        return self._suppressions

    def line_text(self, line: int) -> str:
        lines = self.text.splitlines()
        return lines[line - 1] if 1 <= line <= len(lines) else ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.display_path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=self.line_text(line),
        )


class Project:
    """The file set ``run_checks`` operates on.

    ``root`` is the repo root; package sources are discovered under
    ``<root>/<package>`` (default ``src/repro``) and test files under
    ``<root>/tests``.  Fixture projects in the test-suite use the same
    layout in a tmpdir, so checkers never special-case the real repo.
    """

    def __init__(self, root: Path, package: str = "src/repro"):
        self.root = Path(root)
        self.package = package
        self.package_root = self.root / package
        self.tests_root = self.root / "tests"
        self._files: Optional[List[SourceFile]] = None
        self._test_files: Optional[List[SourceFile]] = None
        self._by_relpath: Dict[str, SourceFile] = {}

    @staticmethod
    def _load(path: Path, relpath: str, display: str) -> Optional[SourceFile]:
        try:
            return SourceFile(path, relpath, display)
        except (OSError, UnicodeDecodeError):
            return None

    @property
    def files(self) -> List[SourceFile]:
        if self._files is None:
            out: List[SourceFile] = []
            if self.package_root.is_dir():
                for path in sorted(self.package_root.rglob("*.py")):
                    rel = path.relative_to(self.package_root).as_posix()
                    display = path.relative_to(self.root).as_posix()
                    src = self._load(path, rel, display)
                    if src is not None:
                        out.append(src)
                        self._by_relpath[rel] = src
            self._files = out
        return self._files

    @property
    def test_files(self) -> List[SourceFile]:
        if self._test_files is None:
            out: List[SourceFile] = []
            if self.tests_root.is_dir():
                for path in sorted(self.tests_root.rglob("*.py")):
                    rel = path.relative_to(self.root).as_posix()
                    src = self._load(path, rel, rel)
                    if src is not None:
                        out.append(src)
            self._test_files = out
        return self._test_files

    def file(self, relpath: str) -> Optional[SourceFile]:
        self.files  # ensure index built
        return self._by_relpath.get(relpath)

    def iter_package(self, *prefixes: str) -> Iterator[SourceFile]:
        """Package files whose relpath starts with any prefix (all if none)."""
        for src in self.files:
            if not prefixes or any(
                src.relpath == p or src.relpath.startswith(p) for p in prefixes
            ):
                yield src

    def source_for_display_path(self, display_path: str) -> Optional[SourceFile]:
        for src in self.files:
            if src.display_path == display_path:
                return src
        for src in self.test_files:
            if src.display_path == display_path:
                return src
        return None


class Checker:
    """Base class for one invariant.

    Subclasses set ``name`` (registry key), ``rule_ids`` (the ids findings
    carry — one checker may emit several), and ``description``.  File-scoped
    rules override :meth:`interesting` + :meth:`check_file`; cross-file
    rules override :meth:`check_project`.  ``trigger_prefixes`` lets
    ``--diff`` mode decide whether a project-level rule must re-run for a
    given changed-file set.
    """

    name: str = ""
    rule_ids: Tuple[str, ...] = ()
    description: str = ""
    #: package-relative prefixes (or ``tests/...`` repo-relative ones) whose
    #: modification requires re-running this checker in ``--diff`` mode.
    trigger_prefixes: Tuple[str, ...] = ()

    def interesting(self, relpath: str) -> bool:
        return False

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def triggered_by(self, relpaths: Sequence[str]) -> bool:
        if not self.trigger_prefixes:
            return any(self.interesting(r) for r in relpaths)
        return any(
            r == p or r.startswith(p)
            for r in relpaths
            for p in self.trigger_prefixes
        )


_CHECKERS: Dict[str, Checker] = {}


def register_checker(cls):
    """Class decorator: instantiate and register a :class:`Checker`."""
    instance = cls()
    if not instance.name or not instance.rule_ids:
        raise ValueError(f"checker {cls.__name__} must set name and rule_ids")
    _CHECKERS[instance.name] = instance
    return cls


def _ensure_builtin_checkers() -> None:
    # Importing the subpackage triggers the @register_checker decorators.
    from repro.analysis import checkers  # noqa: F401


def iter_checkers() -> List[Checker]:
    _ensure_builtin_checkers()
    return [c for _, c in sorted(_CHECKERS.items())]


def iter_rules() -> List[Tuple[str, str]]:
    """``(rule_id, description)`` pairs for every registered rule."""
    out: List[Tuple[str, str]] = []
    for checker in iter_checkers():
        for rule in checker.rule_ids:
            out.append((rule, checker.description))
    return sorted(out)


def changed_files(root: Path, ref: str) -> List[str]:
    """Repo-relative .py paths changed since ``ref`` (committed or dirty)."""
    proc = subprocess.run(
        ["git", "-C", str(root), "diff", "--name-only", ref, "--"],
        capture_output=True,
        text=True,
        check=True,
    )
    return [
        line.strip()
        for line in proc.stdout.splitlines()
        if line.strip().endswith(".py")
    ]


def _package_relpaths(project: Project, repo_relative: Iterable[str]) -> List[str]:
    """Map repo-relative paths to package/test relpaths the checkers use."""
    prefix = project.package.rstrip("/") + "/"
    out = []
    for p in repo_relative:
        p = p.strip().replace("\\", "/")
        if p.startswith(prefix):
            out.append(p[len(prefix):])
        elif p.startswith("tests/"):
            out.append(p)
    return out


def run_checks(
    root: Path,
    *,
    rules: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[str]] = None,
    diff_ref: Optional[str] = None,
    package: str = "src/repro",
) -> List[Finding]:
    """Run every registered checker over the project and return findings.

    ``rules`` restricts to the given rule ids; ``paths`` (repo-relative) or
    ``diff_ref`` (git ref) restrict the file set.  Findings suppressed by
    ``# repro: ignore`` comments are dropped, and the result is sorted by
    (path, line, col, rule).
    """
    project = Project(Path(root), package=package)
    restriction: Optional[Set[str]] = None
    if diff_ref is not None:
        restriction = set(_package_relpaths(project, changed_files(project.root, diff_ref)))
    if paths is not None:
        explicit = set(_package_relpaths(project, paths))
        restriction = explicit if restriction is None else (restriction & explicit)

    wanted = set(rules) if rules else None
    findings: List[Finding] = []
    executed_rules: Set[str] = set()
    for checker in iter_checkers():
        if wanted is not None and not (wanted & set(checker.rule_ids)):
            continue
        if restriction is not None:
            if not checker.triggered_by(sorted(restriction)):
                continue
        executed_rules.update(checker.rule_ids)
        for src in project.files:
            if not checker.interesting(src.relpath):
                continue
            if restriction is not None and src.relpath not in restriction:
                continue
            findings.extend(checker.check_file(src, project))
        findings.extend(checker.check_project(project))

    kept: List[Finding] = []
    for f in findings:
        if wanted is not None and f.rule not in wanted:
            continue
        src = project.source_for_display_path(f.path)
        if src is not None and src.suppressions.is_suppressed(f.rule, f.line):
            continue
        kept.append(f)
    kept.extend(_unused_suppressions(project, executed_rules, restriction))
    # Project-level checkers may emit duplicates when run under multiple
    # rule restrictions; dedup on the full identity.
    unique = {(f.rule, f.path, f.line, f.col, f.message): f for f in kept}
    return sorted(unique.values(), key=Finding.sort_key)


def _unused_suppressions(
    project: Project,
    executed_rules: Set[str],
    restriction: Optional[Set[str]],
) -> List[Finding]:
    """``suppression-unused`` findings: ignores that suppressed nothing.

    Runs after the main filter pass, which marks every suppression entry
    that consumed a finding.  Conservative by construction:

    * an entry is judged only when every rule it names actually executed
      this run (``--rules``/``--diff`` may have skipped the checker that
      would have used it);
    * a bare ``# repro: ignore`` is judged only when *all* registered
      rules ran;
    * only package sources are scanned — test files embed suppression
      comments inside fixture string literals.
    """
    if "suppression-unused" not in executed_rules:
        return []
    all_rules = {rule for rule, _ in iter_rules()}
    out: List[Finding] = []
    for src in project.files:
        if restriction is not None and src.relpath not in restriction:
            continue
        for entry in src.suppressions.entries:
            if entry.used:
                continue
            named = set() if entry.rules == _ALL_RULES else set(entry.rules)
            # Typo'd rule names can never be used; judge on the known part
            # (or on every rule for bare/unknown-only ignores).
            required = (named & all_rules) or all_rules
            if not required <= executed_rules:
                continue
            scope = "file" if entry.kind == "file" else "this line"
            finding = Finding(
                rule="suppression-unused",
                path=src.display_path,
                line=entry.line,
                col=1,
                message=(
                    f"`{entry.comment}` suppresses nothing: no "
                    f"{'/'.join(sorted(named)) if named else 'rule'} "
                    f"finding on {scope}; remove the stale comment"
                ),
                snippet=src.line_text(entry.line),
            )
            if not src.suppressions.is_suppressed(finding.rule, finding.line):
                out.append(finding)
    return out
