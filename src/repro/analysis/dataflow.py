"""Per-function forward dataflow for ``sptransx check`` rules.

A deliberately small abstract-interpretation layer: each function body is
lowered to a statement-level control-flow graph (``with``/``try``-aware,
path-insensitive), and a checker supplies a :class:`Transfer` — the lattice
(``initial``/``join``/``equals``) plus a per-node ``transfer`` function.
:class:`ForwardAnalysis` then runs the standard worklist algorithm to a
fixpoint and exposes the state flowing into every node, most usefully the
state at the function's normal exits (where the resource-lifecycle rule
asks "is anything still open?").

CFG shape notes — tuned for what the rules need, not for completeness:

* ``with`` statements produce explicit ``with-enter``/``with-exit`` nodes
  per item, so a transfer function can model guaranteed release.
* every statement inside a ``try`` body gets an edge to each handler's
  catch node (an exception can surface anywhere in the body).
* ``return`` / ``break`` / ``continue`` route through *copies* of the
  enclosing ``finally`` bodies before reaching their target, so a
  ``finally: handle.close()`` is visible on the early-return path without
  merging it into the fall-through path.
* explicit ``raise`` flows to a separate ``raise-exit``; implicit
  exception exits are not modelled (treating every call as may-raise would
  drown the rules in impossible leak paths).
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["CFG", "CFGNode", "Transfer", "ForwardAnalysis", "build_cfg"]


class CFGNode:
    """One CFG node: a simple statement or a structural pseudo-op."""

    __slots__ = ("kind", "stmt", "item", "succs", "index")

    def __init__(self, kind: str, stmt: Optional[ast.AST] = None,
                 item: Optional[ast.withitem] = None, index: int = 0):
        self.kind = kind          # entry|exit|raise-exit|stmt|loop-test|
        self.stmt = stmt          # with-enter|with-exit|catch
        self.item = item
        self.succs: List["CFGNode"] = []
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line = getattr(self.stmt, "lineno", "?")
        return f"<CFGNode {self.kind}@{line} ->{len(self.succs)}>"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise-exit")

    def _new(self, kind: str, stmt: Optional[ast.AST] = None,
             item: Optional[ast.withitem] = None) -> CFGNode:
        node = CFGNode(kind, stmt, item, index=len(self.nodes))
        self.nodes.append(node)
        return node


class _Loop:
    __slots__ = ("test", "breaks", "finally_depth")

    def __init__(self, test: CFGNode, finally_depth: int):
        self.test = test
        self.breaks: List[CFGNode] = []
        self.finally_depth = finally_depth


class _Finally:
    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[ast.stmt]):
        self.stmts = stmts


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._loops: List[_Loop] = []
        self._finallys: List[_Finally] = []

    # ---- plumbing --------------------------------------------------- #
    def _node(self, kind: str, stmt: Optional[ast.AST],
              frontier: List[CFGNode],
              item: Optional[ast.withitem] = None) -> CFGNode:
        node = self.cfg._new(kind, stmt, item)
        for prev in frontier:
            prev.succs.append(node)
        return node

    def _seq(self, stmts: Sequence[ast.stmt],
             frontier: List[CFGNode]) -> List[CFGNode]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _through_finallys(self, frontier: List[CFGNode],
                          down_to: int = 0) -> List[CFGNode]:
        """Route ``frontier`` through copies of enclosing finally bodies."""
        saved = self._finallys
        for depth in range(len(saved) - 1, down_to - 1, -1):
            self._finallys = saved[:depth]
            frontier = self._seq(saved[depth].stmts, frontier)
        self._finallys = saved
        return frontier

    # ---- statement lowering ----------------------------------------- #
    def _stmt(self, stmt: ast.stmt, frontier: List[CFGNode]) -> List[CFGNode]:
        if not frontier:
            return []  # unreachable code after return/raise/break
        if isinstance(stmt, ast.Return):
            node = self._node("stmt", stmt, frontier)
            ends = self._through_finallys([node])
            for end in ends:
                end.succs.append(self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._node("stmt", stmt, frontier)
            ends = self._through_finallys([node])
            for end in ends:
                end.succs.append(self.cfg.raise_exit)
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self._node("stmt", stmt, frontier)
            if self._loops:
                loop = self._loops[-1]
                ends = self._through_finallys([node],
                                              down_to=loop.finally_depth)
                if isinstance(stmt, ast.Break):
                    loop.breaks.extend(ends)
                else:
                    for end in ends:
                        end.succs.append(loop.test)
            return []
        if isinstance(stmt, ast.If):
            test = self._node("stmt", stmt, frontier)
            then_out = self._seq(stmt.body, [test])
            else_out = self._seq(stmt.orelse, [test]) if stmt.orelse else [test]
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            test = self._node("loop-test", stmt, frontier)
            self._loops.append(_Loop(test, len(self._finallys)))
            body_out = self._seq(stmt.body, [test])
            for end in body_out:
                end.succs.append(test)
            loop = self._loops.pop()
            else_out = (self._seq(stmt.orelse, [test])
                        if stmt.orelse else [test])
            return else_out + loop.breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                frontier = [self._node("with-enter", stmt, frontier, item=item)]
            frontier = self._seq(stmt.body, frontier)
            for item in reversed(stmt.items):
                if not frontier:
                    break
                frontier = [self._node("with-exit", stmt, frontier, item=item)]
            return frontier
        if isinstance(stmt, ast.Try):
            has_finally = bool(stmt.finalbody)
            if has_finally:
                self._finallys.append(_Finally(stmt.finalbody))
            before = len(self.cfg.nodes)
            body_out = self._seq(stmt.body, frontier)
            body_nodes = self.cfg.nodes[before:]
            handler_outs: List[CFGNode] = []
            for handler in stmt.handlers:
                catch_sources = body_nodes if body_nodes else list(frontier)
                catch = self._node("catch", handler, catch_sources)
                handler_outs.extend(self._seq(handler.body, [catch]))
            else_out = (self._seq(stmt.orelse, body_out)
                        if stmt.orelse else body_out)
            merged = else_out + handler_outs
            if has_finally:
                self._finallys.pop()
                merged = self._seq(stmt.finalbody, merged)
            return merged
        # Simple statement (Assign, Expr, Delete, Assert, nested def, ...).
        return [self._node("stmt", stmt, frontier)]

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        frontier = self._seq(body, [self.cfg.entry])
        for end in frontier:
            end.succs.append(self.cfg.exit)
        return self.cfg


def build_cfg(func: ast.AST) -> CFG:
    """CFG of a ``FunctionDef``/``AsyncFunctionDef`` body."""
    return _Builder().build(func.body)


class Transfer:
    """The analysis a checker plugs into :class:`ForwardAnalysis`.

    States must form a finite-height lattice under :meth:`join` or the
    worklist will not terminate; the default implementations treat states
    as plain dicts compared with ``==``.
    """

    def initial(self) -> Any:
        return {}

    def copy(self, state: Any) -> Any:
        return dict(state)

    def join(self, a: Any, b: Any) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def equals(self, a: Any, b: Any) -> bool:
        return a == b

    def transfer(self, node: CFGNode, state: Any) -> Any:  # pragma: no cover
        raise NotImplementedError


class ForwardAnalysis:
    """Worklist forward dataflow over one CFG with a :class:`Transfer`."""

    def __init__(self, cfg: CFG, transfer: Transfer):
        self.cfg = cfg
        self.transfer = transfer
        self._in: Dict[int, Any] = {}
        self._out: Dict[int, Any] = {}

    def run(self) -> "ForwardAnalysis":
        tf = self.transfer
        self._in[self.cfg.entry.index] = tf.initial()
        worklist = [self.cfg.entry]
        # Finite-lattice states converge quickly; the guard only protects
        # against a checker-supplied transfer that is not monotone.
        budget = max(64, len(self.cfg.nodes)) * 64
        while worklist and budget > 0:
            budget -= 1
            node = worklist.pop(0)
            state_in = self._in.get(node.index)
            if state_in is None:
                continue
            state_out = tf.transfer(node, tf.copy(state_in))
            previous = self._out.get(node.index)
            if previous is not None and tf.equals(previous, state_out):
                continue
            self._out[node.index] = state_out
            for succ in node.succs:
                merged = (tf.copy(state_out)
                          if succ.index not in self._in
                          else tf.join(self._in[succ.index],
                                       tf.copy(state_out)))
                if (succ.index not in self._in
                        or not tf.equals(self._in[succ.index], merged)):
                    self._in[succ.index] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        return self

    def state_in(self, node: CFGNode) -> Optional[Any]:
        return self._in.get(node.index)

    def exit_state(self) -> Optional[Any]:
        """Joined state over every normal (non-raise) path out of the function."""
        return self._in.get(self.cfg.exit.index)

    def raise_state(self) -> Optional[Any]:
        return self._in.get(self.cfg.raise_exit.index)
