"""suppression-unused rule registration.

The actual detection lives in :func:`repro.analysis.core.run_checks`
(only the driver knows which suppression comments consumed a finding
after the full filter pass — flake8 structures its unused-``noqa`` check
the same way).  This checker exists so the rule participates in the
ordinary machinery: ``--list-rules``, ``--rules suppression-unused``
selection, and ``--diff`` triggering.
"""

from __future__ import annotations

from repro.analysis.core import Checker, register_checker


@register_checker
class SuppressionUnusedChecker(Checker):
    name = "suppression-unused"
    rule_ids = ("suppression-unused",)
    description = (
        "# repro: ignore[...] comments that no longer suppress any "
        "finding are stale and must be removed (unused-noqa style)"
    )
    # A suppression can go stale because of a change anywhere (the rule it
    # references may stop firing), so diff mode always re-evaluates.
    trigger_prefixes = ("",)
