"""lock-discipline checker.

The serving tier is the only multi-threaded part of the system, and its
concurrency contract is simple: a class that creates a ``threading.Lock``
in ``__init__`` promises that *every* post-construction mutation of the
state initialised alongside that lock happens inside a ``with
self._lock:`` block.  The ``RequestBatcher`` shutdown races fixed by hand
in PR 4 were exactly violations of this contract (``_closed`` flipped
outside ``_submit_lock``), so the rule is now machine-checked for all of
``serving/``.

Mechanics, per class in ``serving/``:

* lock attributes = ``self.X = threading.Lock()/RLock()`` in ``__init__``;
  classes without one are ignored (plain data holders).
* guarded attributes = every other ``self.Y`` assigned in ``__init__``.
* any ``self.Y = ...`` / ``self.Y += ...`` / ``self.Y[...] = ...`` /
  ``del self.Y`` in another method must sit lexically inside a ``with``
  statement whose context expression is one of the class's lock
  attributes.  Nested/multi-item ``with`` blocks count.

Escape hatch: methods whose name ends in ``_locked`` are exempt — the
repo's documented convention for helpers whose *caller* holds the lock
(e.g. ``InferenceEngine._entity_snapshot_locked``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.core import Checker, Finding, Project, SourceFile, register_checker


def _is_lock_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in {"Lock", "RLock"}:
        return isinstance(func.value, ast.Name) and func.value.id == "threading"
    return isinstance(func, ast.Name) and func.id in {"Lock", "RLock"}


def _self_attr(node: ast.expr) -> str:
    """Attribute name when ``node`` is ``self.X``, else empty string."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _init_attrs(init: ast.FunctionDef) -> Set[str]:
    attrs: Set[str] = set()
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                name = _self_attr(target)
                if name:
                    attrs.add(name)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            name = _self_attr(node.target)
            if name:
                attrs.add(name)
    return attrs


def _lock_attrs(init: ast.FunctionDef) -> Set[str]:
    locks: Set[str] = set()
    for node in ast.walk(init):
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
            for target in node.targets:
                name = _self_attr(target)
                if name:
                    locks.add(name)
    return locks


def _mutated_attr(node: ast.AST) -> List[ast.expr]:
    """Mutation targets of an assignment-like node (``self.X`` or ``self.X[...]``)."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    out: List[ast.expr] = []
    for t in targets:
        if isinstance(t, ast.Subscript):
            t = t.value
        if isinstance(t, ast.Tuple):
            out.extend(e for e in t.elts)
        else:
            out.append(t)
    return out


class _MethodVisitor(ast.NodeVisitor):
    """Walks one method body tracking the lexical ``with self._lock`` stack."""

    def __init__(self, source: SourceFile, cls: str, method: str,
                 guarded: Set[str], locks: Set[str]):
        self.source = source
        self.cls = cls
        self.method = method
        self.guarded = guarded
        self.locks = locks
        self.depth = 0
        self.findings: List[Finding] = []

    def _holds_lock(self, node: ast.With) -> bool:
        return any(
            _self_attr(item.context_expr) in self.locks
            for item in node.items
        )

    def visit_With(self, node: ast.With) -> None:
        held = self._holds_lock(node)
        if held:
            self.depth += 1
        self.generic_visit(node)
        if held:
            self.depth -= 1

    def _check(self, node: ast.AST) -> None:
        if self.depth > 0:
            return
        for target in _mutated_attr(node):
            name = _self_attr(target)
            if name and name in self.guarded:
                self.findings.append(
                    self.source.finding(
                        "lock-discipline",
                        node,
                        f"{self.cls}.{self.method} mutates self.{name} "
                        f"outside a with-block on "
                        f"{' or '.join(sorted('self.' + l for l in self.locks))}; "
                        "state initialised alongside a Lock must only change "
                        "under it (suffix the method _locked if the caller "
                        "holds the lock)",
                    )
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs (callbacks) execute later, possibly without the lock —
        # treat their bodies as unlocked unless they take the lock themselves.
        saved = self.depth
        self.depth = 0
        self.generic_visit(node)
        self.depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef


@register_checker
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    rule_ids = ("lock-discipline",)
    description = (
        "serving/ classes that create a Lock in __init__ must mutate the "
        "state initialised alongside it only inside with-blocks on that lock"
    )

    def interesting(self, relpath: str) -> bool:
        return relpath.startswith("serving/")

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            init = next(
                (
                    n
                    for n in node.body
                    if isinstance(n, ast.FunctionDef) and n.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            locks = _lock_attrs(init)
            if not locks:
                continue
            guarded = _init_attrs(init) - locks
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__" or method.name.endswith("_locked"):
                    continue
                visitor = _MethodVisitor(
                    source, node.name, method.name, guarded, locks
                )
                for stmt in method.body:
                    visitor.visit(stmt)
                findings.extend(visitor.findings)
        return findings
