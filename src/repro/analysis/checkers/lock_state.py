"""lock-state checker: interprocedural race detection.

``lock-discipline`` (PR 7) is lexical: a mutation of Lock-guarded state is
fine iff it sits inside a ``with self._lock:`` block *in the same method*.
That misses the helper-chain race — a thread entry point that calls a
private helper which calls a ``_locked`` helper, with nobody on the path
actually taking the lock.  This rule closes the gap by propagating a
holds-lock fact along real call edges from every thread entry point:

* **lock classes** — any class (package-wide, not just ``serving/``) that
  creates a ``threading.Lock``/``RLock`` in ``__init__``; the attributes
  initialised alongside it are the guarded state (same contract as
  ``lock-discipline``).
* **thread entry points** — public methods (anything a caller on another
  thread may invoke: the engine API surface, dunders), ``do_*`` HTTP
  handler methods, and any method passed as a ``threading.Thread(target=
  self.X)`` (the ``RequestBatcher`` worker loop).
* **propagation** — from each entry the checker walks the body tracking
  which locks are lexically held, and follows ``self.*`` call edges into
  private and ``_locked``-suffixed helpers carrying the held-lock set.
  Cross-object edges are followed only into ``*_locked`` methods of other
  lock classes, with an *empty* held set — calling another object's
  caller-holds-the-lock helper without its lock is exactly the race.
* **finding** — a write to guarded state reached with no lock held, with
  the full call chain in the message::

      RequestBatcher._run() -> RequestBatcher._flush(): writes
      self._pending without self._submit_lock

Graceful degradation: unresolved calls (dynamic dispatch, callables as
values) contribute no edges and therefore no claims; a chain the graph
cannot see is a chain this rule stays silent on.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, ClassInfo, FunctionInfo
from repro.analysis.checkers.lock_discipline import (
    _init_attrs,
    _lock_attrs,
    _mutated_attr,
    _self_attr,
)
from repro.analysis.core import Checker, Finding, Project, register_checker

_MAX_CHAIN = 12


class _ClassLocks:
    """Lock/guarded attribute sets of one class (both empty if lock-free).

    Lock-free classes still matter to the walk: their entry points can
    reach another object's ``_locked`` helper (``Engine.reload() ->
    cache._evict_locked()``) without that object's lock.
    """

    def __init__(self, info: ClassInfo, init: Optional[ast.FunctionDef]):
        self.info = info
        self.locks = _lock_attrs(init) if init else set()
        # No lock, nothing guarded: a lock-free class's own writes are
        # never findings — it participates only as a *caller* into some
        # other object's ``_locked`` helper.
        self.guarded = (_init_attrs(init) - self.locks) if self.locks else set()


def _find_init(info: ClassInfo) -> Optional[ast.FunctionDef]:
    for member in info.node.body:
        if isinstance(member, ast.FunctionDef) and member.name == "__init__":
            return member
    return None


def _thread_targets(info: ClassInfo) -> Set[str]:
    """Methods passed as ``threading.Thread(target=self.X)`` in this class."""
    targets: Set[str] = set()
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_thread = (
            isinstance(func, ast.Attribute) and func.attr == "Thread"
        ) or (isinstance(func, ast.Name) and func.id == "Thread")
        if not is_thread:
            continue
        for kw in node.keywords:
            if kw.arg == "target":
                name = _self_attr(kw.value)
                if name:
                    targets.add(name)
    return targets


def _is_entry(name: str, thread_targets: Set[str]) -> bool:
    """Is this method a thread entry point of its class?"""
    if name == "__init__" or name.endswith("_locked"):
        return False
    if not name.startswith("_"):
        return True  # public API surface
    if name.startswith("__") and name.endswith("__"):
        return True  # dunder protocol methods (len, contains, enter, ...)
    if name.startswith("do_"):
        return True  # http.server handler convention
    return name in thread_targets


class _PathVisitor(ast.NodeVisitor):
    """Walks one method body with a (carried + lexical) held-lock set.

    Reports unguarded writes and yields resolved same-object /
    cross-object call edges with the lock state at the call site.
    """

    def __init__(self, checker: "LockStateChecker", fn: FunctionInfo,
                 locks: _ClassLocks, held: frozenset,
                 chain: Tuple[str, ...]):
        self.checker = checker
        self.fn = fn
        self.locks = locks
        self.lexical: List[str] = []
        self.carried = held
        self.chain = chain

    def _held(self) -> frozenset:
        return self.carried | frozenset(self.lexical)

    def visit_With(self, node: ast.With) -> None:
        taken = [
            _self_attr(item.context_expr)
            for item in node.items
            if _self_attr(item.context_expr) in self.locks.locks
        ]
        self.lexical.extend(taken)
        self.generic_visit(node)
        del self.lexical[len(self.lexical) - len(taken):]

    visit_AsyncWith = visit_With

    def _check_write(self, node: ast.AST) -> None:
        if self._held():
            return
        for target in _mutated_attr(node):
            name = _self_attr(target)
            if name and name in self.locks.guarded:
                self.checker._report(self.fn, self.locks, node, name,
                                     self.chain)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_write(node)
        self.generic_visit(node)

    visit_AugAssign = visit_Assign
    visit_AnnAssign = visit_Assign
    visit_Delete = visit_Assign

    def visit_Call(self, node: ast.Call) -> None:
        self.checker._follow_call(self.fn, node, self._held(), self.chain)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # closures run later, with unknown lock state; never descend

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


@register_checker
class LockStateChecker(Checker):
    name = "lock-state"
    rule_ids = ("lock-state",)
    description = (
        "no write to Lock-guarded state may be reachable from a thread "
        "entry point on a lock-free call path (interprocedural; follows "
        "_locked helper chains across call edges)"
    )
    # Interprocedural: any package change can add or remove a call edge.
    trigger_prefixes = ("",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        self._graph = CallGraph.for_project(project)
        self._project = project
        self._findings: List[Finding] = []
        self._class_locks: Dict[str, _ClassLocks] = {}
        self._entries: Dict[str, Set[str]] = {}
        self._visited: Set[Tuple[str, frozenset]] = set()

        for key, info in self._graph.classes.items():
            self._class_locks[key] = _ClassLocks(info, _find_init(info))
            self._entries[key] = {
                name for name in info.methods
                if _is_entry(name, _thread_targets(info))
            }

        for cls_key in sorted(self._entries):
            locks = self._class_locks[cls_key]
            for name in sorted(self._entries[cls_key]):
                fn = self._graph.functions[locks.info.methods[name]]
                self._walk(fn, locks, frozenset(), ())
        return self._findings

    # ------------------------------------------------------------------ #
    def _walk(self, fn: FunctionInfo, locks: _ClassLocks,
              held: frozenset, chain: Tuple[str, ...]) -> None:
        if len(chain) >= _MAX_CHAIN:
            return
        # The lock context can differ per entry class (base-class methods
        # reached from different subclasses), so it is part of the memo key.
        memo = (fn.key, locks.info.key, held)
        if memo in self._visited:
            return
        self._visited.add(memo)
        if not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        visitor = _PathVisitor(self, fn, locks, held,
                               chain + (self._graph.display(fn.key),))
        for stmt in fn.node.body:
            visitor.visit(stmt)

    def _follow_call(self, fn: FunctionInfo, node: ast.Call,
                     held: frozenset, chain: Tuple[str, ...]) -> None:
        site = self._graph.site(node)
        if site is None or site.callee is None:
            return  # unresolved: no edge, no claim
        callee = self._graph.functions.get(site.callee)
        if callee is None or callee.cls is None:
            return
        if site.name.startswith("self.") and "." not in site.name[5:]:
            # Same-object call: carry the held set into private /_locked
            # helpers, keeping the *caller's* lock context (`self` is still
            # the same object even when the method resolved to a base
            # class).  Entry methods are roots of their own analysis.
            caller_locks = self._class_locks.get(fn.cls)
            if caller_locks is None:
                return
            if _is_entry(callee.name, _thread_targets(caller_locks.info)):
                return
            self._walk(callee, caller_locks, held, chain)
        elif callee.name.endswith("_locked"):
            # Cross-object edge into another object's caller-holds-the-lock
            # helper: we cannot prove the receiver's lock is held, so enter
            # with an empty held set — its guarded writes become findings.
            callee_locks = self._class_locks.get(callee.cls)
            if callee_locks is not None:
                self._walk(callee, callee_locks, frozenset(), chain)

    def _report(self, fn: FunctionInfo, locks: _ClassLocks,
                node: ast.AST, attr: str, chain: Tuple[str, ...]) -> None:
        source = self._project.file(fn.relpath)
        if source is None:
            return
        lock_names = " or ".join(
            "self." + name for name in sorted(locks.locks)
        )
        self._findings.append(
            source.finding(
                "lock-state",
                node,
                f"{' -> '.join(chain)}: writes self.{attr} without "
                f"{lock_names} — this path is reachable from the thread "
                f"entry point {chain[0]} with no lock held",
            )
        )
