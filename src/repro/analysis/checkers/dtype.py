"""dtype-preservation checker.

PR 6 established the contract that the kernel layer, ranking tiles, and
loss paths preserve the caller's floating dtype — a float32 model must
never silently widen to float64 mid-pipeline.  Two rule ids enforce the
static side of that contract inside the hot-path modules (``sparse/``,
``nn/``, ``losses/``, ``evaluation/``, ``ranking.py``,
``data/synthetic.py``):

* ``dtype-ctor`` — ``np.zeros/empty/ones/full/arange`` without an explicit
  ``dtype=``.  Bare constructors default to float64 (int64 for arange),
  which either widens a float32 pipeline or relies on a platform default.
* ``dtype-promotion`` — constructs that force float64 promotion: passing
  the *builtin* ``float``/``int`` where a dtype is expected
  (``astype(float)``, ``dtype=float``) and ``np.array``/``np.asarray`` of
  float-literal lists without a ``dtype=``.

Intentional float64 sites (metric accumulators, rank vectors) carry a
``# repro: ignore[dtype-ctor]`` suppression so the intent is visible at
the call site.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Checker, Finding, Project, SourceFile, register_checker

#: Constructors whose dtype defaults are a promotion hazard, mapped to the
#: positional index at which ``dtype`` may be passed without a keyword.
_CTOR_DTYPE_POS = {
    "zeros": 1,
    "empty": 1,
    "ones": 1,
    "full": 2,
    "arange": 3,
}

_NUMPY_NAMES = {"np", "numpy"}

_SCOPES = ("sparse/", "nn/", "losses/", "evaluation/", "ann/")
_SCOPE_FILES = ("ranking.py", "data/synthetic.py")


def _is_numpy_attr(func: ast.expr, names: Iterable[str]) -> bool:
    return (
        isinstance(func, ast.Attribute)
        and func.attr in names
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_NAMES
    )


def _has_dtype(call: ast.Call, positional_index: int) -> bool:
    if any(kw.arg == "dtype" for kw in call.keywords):
        return True
    return len(call.args) > positional_index


def _is_builtin_float_dtype(node: ast.expr) -> bool:
    """``float``/``int``/``"float"`` passed where a dtype is expected."""
    if isinstance(node, ast.Name) and node.id in {"float", "int"}:
        return True
    return isinstance(node, ast.Constant) and node.value in {"float", "int"}


def _literal_contains_float(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Tuple)):
        return any(_literal_contains_float(e) for e in node.elts)
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _literal_contains_float(node.operand)
    return False


class _DtypeVisitor(ast.NodeVisitor):
    def __init__(self, source: SourceFile):
        self.source = source
        self.findings: List[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if _is_numpy_attr(func, _CTOR_DTYPE_POS):
            ctor = func.attr  # type: ignore[union-attr]
            if not _has_dtype(node, _CTOR_DTYPE_POS[ctor]):
                self.findings.append(
                    self.source.finding(
                        "dtype-ctor",
                        node,
                        f"np.{ctor}(...) without an explicit dtype= defaults to "
                        f"{'int64' if ctor == 'arange' else 'float64'}; "
                        "name the dtype so hot-path precision is deliberate",
                    )
                )
            else:
                self._check_dtype_value(node)
        elif isinstance(func, ast.Attribute) and func.attr == "astype":
            if node.args and _is_builtin_float_dtype(node.args[0]):
                self.findings.append(
                    self.source.finding(
                        "dtype-promotion",
                        node,
                        "astype(float) promotes to float64 via the Python "
                        "builtin; spell the numpy dtype explicitly "
                        "(np.float64 if widening is intended)",
                    )
                )
        elif _is_numpy_attr(func, {"array", "asarray", "full_like", "asanyarray"}):
            self._check_dtype_value(node)
            if not _has_dtype(node, positional_index=10**6):
                if node.args and _literal_contains_float(node.args[0]):
                    self.findings.append(
                        self.source.finding(
                            "dtype-promotion",
                            node,
                            "float literals without dtype= build a float64 "
                            "array; pass dtype= to keep the pipeline's "
                            "precision",
                        )
                    )
        self.generic_visit(node)

    def _check_dtype_value(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_builtin_float_dtype(kw.value):
                self.findings.append(
                    self.source.finding(
                        "dtype-promotion",
                        node,
                        "dtype=float is the Python builtin (always float64); "
                        "use an explicit numpy dtype",
                    )
                )


@register_checker
class DtypePreservationChecker(Checker):
    name = "dtype"
    rule_ids = ("dtype-ctor", "dtype-promotion")
    description = (
        "hot-path numpy constructors and casts must name their dtype so "
        "float32 pipelines never silently widen to float64"
    )

    def interesting(self, relpath: str) -> bool:
        return relpath in _SCOPE_FILES or any(
            relpath.startswith(p) for p in _SCOPES
        )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        visitor = _DtypeVisitor(source)
        visitor.visit(source.tree)
        return visitor.findings
