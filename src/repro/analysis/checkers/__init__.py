"""Built-in checkers; importing this package registers them all."""

from repro.analysis.checkers import (  # noqa: F401
    ann_recall,
    dtype,
    fork_safety,
    kernel_parity,
    lock_discipline,
    registry_checks,
)
