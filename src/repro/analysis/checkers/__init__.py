"""Built-in checkers; importing this package registers them all."""

from repro.analysis.checkers import (  # noqa: F401
    ann_recall,
    dtype,
    fork_safety,
    fork_taint,
    kernel_parity,
    lock_discipline,
    lock_state,
    registry_checks,
    resource_lifecycle,
    suppression_unused,
)
