"""registry completeness checker.

Two halves of the spec-driven contract from PR 2/3:

* ``registry-model`` — every concrete :class:`KGEModel` subclass under
  ``models/`` / ``baselines/`` must carry ``@register_model``.  An
  unregistered model is invisible to ``build_model``/``ModelSpec`` and to
  checkpoint restore, which silently falls back to the legacy path.
  Abstract intermediates live in ``models/base.py``, which is exempt;
  everything else reachable (transitively) from a base-module class is
  considered concrete.
* ``registry-roundtrip`` — every dataclass field of the spec classes
  (``ModelSpec``, ``ExperimentSpec``/``DataSpec``/``EvalSpec``,
  ``TrainingConfig``) must be visible in both ``to_dict`` and
  ``from_dict``.  A field added to the dataclass but forgotten in the
  serializers round-trips to its default, which is exactly the class of
  bug the spec-versioning machinery cannot catch.

A field "appears" in a serializer when its name occurs as a string
literal, attribute, bare name, or keyword argument anywhere in the method
body — this tolerates renamed wire keys (``version`` serialised as
``"spec_version"`` still reads ``self.version``).  Serializers built
dynamically over ``fields(cls)`` / ``asdict`` / ``cls(**...)`` cover
every field by construction and are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Checker, Finding, Project, SourceFile, register_checker

_MODEL_DIRS = ("models/", "baselines/")
_BASE_FILE = "models/base.py"
_SPEC_FILES = ("registry.py", "experiment/spec.py", "training/config.py")


def _base_names(node: ast.ClassDef) -> Set[str]:
    out: Set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            out.add(base.id)
        elif isinstance(base, ast.Attribute):
            out.add(base.attr)
    return out


def _has_register_model(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "register_model":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "register_model":
            return True
    return False


def _model_findings(project: Project) -> List[Finding]:
    base_src = project.file(_BASE_FILE)
    roots: Set[str] = {"KGEModel"}
    if base_src is not None:
        roots |= {
            n.name for n in base_src.tree.body if isinstance(n, ast.ClassDef)
        }

    # (class, bases, registered?, defining source) for every model-dir class.
    classes: Dict[str, Tuple[ast.ClassDef, Set[str], bool, SourceFile]] = {}
    for src in project.files:
        if src.relpath == _BASE_FILE or not src.relpath.startswith(_MODEL_DIRS):
            continue
        for node in src.tree.body:
            if isinstance(node, ast.ClassDef):
                classes[node.name] = (
                    node,
                    _base_names(node),
                    _has_register_model(node),
                    src,
                )

    def is_model(name: str, seen: Set[str]) -> bool:
        if name in roots:
            return True
        if name in seen or name not in classes:
            return False
        seen.add(name)
        return any(is_model(b, seen) for b in classes[name][1])

    findings: List[Finding] = []
    for name, (node, bases, registered, src) in sorted(classes.items()):
        if name.startswith("_") or registered:
            continue
        if any(is_model(b, {name}) for b in bases):
            findings.append(
                src.finding(
                    "registry-model",
                    node,
                    f"concrete KGEModel subclass {name} lacks "
                    "@register_model — it cannot be built from a ModelSpec "
                    "or restored from a checkpoint",
                )
            )
    return findings


def _names_in(body: Iterable[ast.stmt]) -> Set[str]:
    out: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                out.add(node.value)
            elif isinstance(node, ast.Name):
                out.add(node.id)
            elif isinstance(node, ast.Attribute):
                out.add(node.attr)
            elif isinstance(node, ast.keyword) and node.arg:
                out.add(node.arg)
    return out


def _is_dynamic(body: Iterable[ast.stmt]) -> bool:
    """Serializers driven by dataclass introspection cover all fields."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                fn = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else ""
                )
                if fn in {"asdict", "fields"}:
                    return True
                if any(kw.arg is None for kw in node.keywords):  # cls(**...)
                    return True
    return False


def _roundtrip_findings(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for relpath in _SPEC_FILES:
        src = project.file(relpath)
        if src is None:
            continue
        for node in src.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                n.name: n for n in node.body if isinstance(n, ast.FunctionDef)
            }
            to_dict = methods.get("to_dict")
            from_dict = methods.get("from_dict")
            if to_dict is None or from_dict is None:
                continue
            fields_ = [
                (stmt.target.id, stmt)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
                and not (
                    isinstance(stmt.annotation, ast.Subscript)
                    and isinstance(stmt.annotation.value, ast.Name)
                    and stmt.annotation.value.id == "ClassVar"
                )
            ]
            for method in (to_dict, from_dict):
                if _is_dynamic(method.body):
                    continue
                visible = _names_in(method.body)
                for field_name, stmt in fields_:
                    if field_name not in visible:
                        findings.append(
                            src.finding(
                                "registry-roundtrip",
                                stmt,
                                f"{node.name}.{field_name} does not appear in "
                                f"{method.name}() — the field will not "
                                "round-trip through spec serialisation",
                            )
                        )
    return findings


@register_checker
class RegistryCompletenessChecker(Checker):
    name = "registry"
    rule_ids = ("registry-model", "registry-roundtrip")
    description = (
        "every concrete model class must carry @register_model and every "
        "spec dataclass field must round-trip through to_dict/from_dict"
    )
    trigger_prefixes = (
        "models/",
        "baselines/",
        "registry.py",
        "experiment/spec.py",
        "training/config.py",
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        return _model_findings(project) + _roundtrip_findings(project)
