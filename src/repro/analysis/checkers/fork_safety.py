"""fork-safety checker.

``MultiprocessTrainer`` uses ``fork``-start workers: everything importable
from ``training/multiprocess.py`` is duplicated into child processes with
whatever process-global state the parent had.  Three classes of state are
known to corrupt silently across ``os.fork`` and are banned inside the
trainer's import closure:

* ``fork-module-lock`` — a module-level ``threading.Lock``/``RLock``:
  if any parent thread holds it at fork time, every child inherits it
  locked forever (the classic logging-deadlock).
* ``fork-sqlite`` — ``sqlite3.connect`` reachable from the trainer module:
  SQLite connections must never cross a fork (the docs forbid sharing a
  connection between processes); batch factories open their own handle
  post-fork instead.
* ``fork-atexit`` — ``atexit.register`` in the closure: handlers
  registered pre-fork re-run in every worker at child exit, typically
  re-flushing or deleting parent-owned resources.

Scope: ``training/multiprocess.py`` plus the first-party ``repro.*``
modules it directly imports (one level — the modules whose globals the
fork demonstrably duplicates into the hot path).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.core import Checker, Finding, Project, SourceFile, register_checker

_ENTRY = "training/multiprocess.py"


def _module_to_relpath(project: Project, module: str) -> Optional[str]:
    """Map ``repro.data.batching`` to ``data/batching.py`` (or pkg init)."""
    if not module.startswith("repro."):
        return None
    tail = module[len("repro."):].replace(".", "/")
    for candidate in (f"{tail}.py", f"{tail}/__init__.py"):
        if project.file(candidate) is not None:
            return candidate
    return None


def _direct_imports(project: Project, source: SourceFile) -> List[str]:
    out: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                rel = _module_to_relpath(project, alias.name)
                if rel:
                    out.add(rel)
        elif isinstance(node, ast.ImportFrom) and node.module:
            rel = _module_to_relpath(project, node.module)
            if rel:
                out.add(rel)
            else:
                # ``from repro.training import config`` style
                for alias in node.names:
                    rel = _module_to_relpath(
                        project, f"{node.module}.{alias.name}"
                    )
                    if rel:
                        out.add(rel)
    return sorted(out)


def _threading_lock_call(node: ast.expr, lock_aliases: Set[str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in {"Lock", "RLock"}
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    ):
        return True
    return isinstance(func, ast.Name) and func.id in lock_aliases


def _lock_aliases(tree: ast.Module) -> Set[str]:
    """Names bound by ``from threading import Lock [as L], RLock``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name in {"Lock", "RLock"}:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _check_one(source: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    aliases = _lock_aliases(source.tree)

    # Module-level lock objects (only top-level statements — locks created
    # inside functions/classes are per-call or per-instance and fine).
    for stmt in source.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is not None and _threading_lock_call(value, aliases):
                findings.append(
                    source.finding(
                        "fork-module-lock",
                        stmt,
                        "module-level threading lock in the fork closure: a "
                        "lock held at os.fork() time stays locked forever in "
                        "every worker; create it per-instance or post-fork",
                    )
                )

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "connect"
                and isinstance(func.value, ast.Name)
                and func.value.id == "sqlite3"
            ):
                findings.append(
                    source.finding(
                        "fork-sqlite",
                        node,
                        "sqlite3.connect in the fork closure: connections "
                        "must not cross os.fork(); pass a path and open the "
                        "handle inside the worker (BatchFactory contract)",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "register"
                and isinstance(func.value, ast.Name)
                and func.value.id == "atexit"
            ):
                findings.append(
                    source.finding(
                        "fork-atexit",
                        node,
                        "atexit.register in the fork closure: handlers "
                        "registered pre-fork re-run in every worker at child "
                        "exit; use explicit close() on the owning object",
                    )
                )
    return findings


@register_checker
class ForkSafetyChecker(Checker):
    name = "fork-safety"
    rule_ids = ("fork-module-lock", "fork-sqlite", "fork-atexit")
    description = (
        "training/multiprocess.py and its direct repro imports must stay "
        "fork-safe: no module-level locks, sqlite connections, or atexit "
        "handlers in the closure fork duplicates into workers"
    )
    trigger_prefixes = ("training/", "data/", "losses/", "models/", "sparse/", "utils/")

    def check_project(self, project: Project) -> Iterable[Finding]:
        entry = project.file(_ENTRY)
        if entry is None:
            return []
        findings: List[Finding] = []
        scope = [_ENTRY] + _direct_imports(project, entry)
        for relpath in scope:
            src = project.file(relpath)
            if src is not None:
                findings.extend(_check_one(src))
        return findings
