"""kernel-parity coverage checker.

Every SpMM backend ships with a bit-identical "twin" test (the fused and
compiled kernels are only trustworthy because ``tests/sparse/`` asserts
exact equality against the reference), and every public kernel in
``sparse/kernels.py`` is exercised by name.  This rule makes that
*coverage* machine-checked: adding ``register_backend("mynew", ...)``
without a ``tests/sparse/`` test containing the string ``"mynew"`` — or a
public kernel function no test imports — fails ``sptransx check`` before
a reviewer ever has to remember the convention.

* ``kernel-parity`` findings point at the registration / ``def`` line of
  the uncovered backend or kernel.
* Backends count as covered when their registry name appears as a string
  literal in any ``tests/sparse/*.py``; kernels when their function name
  appears as a bare word.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Tuple

from repro.analysis.core import Checker, Finding, Project, register_checker

_BACKENDS_FILE = "sparse/backends.py"
_KERNELS_FILE = "sparse/kernels.py"
_TESTS_PREFIX = "tests/sparse/"


def _registered_backends(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    out: List[Tuple[str, ast.AST]] = []
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "register_backend"
            and stmt.value.args
            and isinstance(stmt.value.args[0], ast.Constant)
            and isinstance(stmt.value.args[0].value, str)
        ):
            out.append((stmt.value.args[0].value, stmt))
    return out


def _public_kernels(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    return [
        (stmt.name, stmt)
        for stmt in tree.body
        if isinstance(stmt, ast.FunctionDef) and not stmt.name.startswith("_")
    ]


@register_checker
class KernelParityChecker(Checker):
    name = "kernel-parity"
    rule_ids = ("kernel-parity",)
    description = (
        "every registered SpMM backend and public kernels.py function must "
        "be named by a parity test under tests/sparse/"
    )
    trigger_prefixes = ("sparse/", "tests/sparse/")

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        tests = [
            t for t in project.test_files if t.relpath.startswith(_TESTS_PREFIX)
        ]
        corpus = "\n".join(t.text for t in tests)

        backends_src = project.file(_BACKENDS_FILE)
        if backends_src is not None:
            for name, node in _registered_backends(backends_src.tree):
                if (f'"{name}"' not in corpus) and (f"'{name}'" not in corpus):
                    findings.append(
                        backends_src.finding(
                            "kernel-parity",
                            node,
                            f'backend "{name}" is registered but no '
                            f"tests/sparse/ test names it; add a bit-identical "
                            "parity test against the reference backend",
                        )
                    )

        kernels_src = project.file(_KERNELS_FILE)
        if kernels_src is not None:
            for name, node in _public_kernels(kernels_src.tree):
                if not re.search(rf"\b{re.escape(name)}\b", corpus):
                    findings.append(
                        kernels_src.finding(
                            "kernel-parity",
                            node,
                            f"public kernel {name}() has no tests/sparse/ "
                            "test naming it; fused kernels are only safe "
                            "with an exact-parity test",
                        )
                    )
        return findings
