"""fork-taint checker: transitive fork-closure hazard detection.

The PR 7 ``fork-safety`` rules stop one import level away from
``training/multiprocess.py`` — a module-level lock or an import-time
``sqlite3.connect`` two hops down the import graph forks into every
worker just as surely, but invisibly to a file-local rule.  This rule
walks the *transitive* module-level import closure over the call graph
and reports each hazard with the full chain that carries it into the
fork:

* **closure** — BFS from ``training/multiprocess.py`` over module-level
  imports (what actually executes before ``os.fork()`` can run; lazy
  function-level imports execute in whichever process calls them and are
  out of scope).
* **import-time hazards** — in every closure module: a module-level
  ``threading.Lock``/``RLock`` assignment, plus any ``sqlite3.connect``,
  ``atexit.register`` or lock construction reachable from module-level
  *call sites* through resolved call edges (a top-level
  ``_X = _make()`` runs ``_make`` at import time, wherever it is
  defined).
* **dedup with fork-safety** — hazards that the file-local rules already
  flag (anything lexically inside ``training/multiprocess.py`` or its
  direct imports) are skipped; this rule only reports what the old scope
  could not see.

Findings carry the evidence chain, e.g.::

    fork-taint: import chain training/multiprocess.py ->
    data/streaming.py -> x.py; call chain <module> -> make_conn():
    sqlite3.connect(...) executes at import time inside the fork closure

Graceful degradation: unresolved call targets (registries, callables as
values) end the walk — no edge, no claim.  Hazards created inside
functions that only run post-fork are deliberately not flagged (that is
the ``BatchFactory`` contract, not a bug).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, MODULE_BODY, walk_shallow
from repro.analysis.checkers.fork_safety import (
    _ENTRY,
    _direct_imports,
    _lock_aliases,
    _threading_lock_call,
)
from repro.analysis.core import Checker, Finding, Project, register_checker

_MAX_CALL_DEPTH = 8

_HAZARD_TEXT = {
    "lock": "a threading lock created at import time stays locked forever "
            "in every worker if any parent thread holds it at os.fork()",
    "sqlite": "sqlite3 connections must never cross os.fork(); open the "
              "handle inside the worker instead",
    "atexit": "atexit handlers registered pre-fork re-run in every worker "
              "at child exit",
}


def _hazard_kind(node: ast.Call, lock_aliases: Set[str]) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.attr == "connect" and func.value.id == "sqlite3":
            return "sqlite"
        if func.attr == "register" and func.value.id == "atexit":
            return "atexit"
    if _threading_lock_call(node, lock_aliases):
        return "lock"
    return None


@register_checker
class ForkTaintChecker(Checker):
    name = "fork-taint"
    rule_ids = ("fork-taint",)
    description = (
        "the transitive import closure of training/multiprocess.py must "
        "stay fork-safe: no locks, sqlite connections, or atexit handlers "
        "created at import time anywhere os.fork() duplicates (call "
        "chains from module level included)"
    )
    # The import closure can grow from any package file.
    trigger_prefixes = ("",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        entry = project.file(_ENTRY)
        if entry is None:
            return []
        graph = CallGraph.for_project(project)
        local_scope = {_ENTRY, *_direct_imports(project, entry)}
        closure = self._import_closure(graph)

        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int]] = set()
        for relpath, import_chain in sorted(closure.items()):
            source = project.file(relpath)
            if source is None:
                continue
            aliases = _lock_aliases(source.tree)
            # Module-level lock objects outside the file-local rules' scope.
            if relpath not in local_scope:
                for stmt in source.tree.body:
                    value = getattr(stmt, "value", None)
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and \
                            value is not None and \
                            _threading_lock_call(value, aliases):
                        findings.append(self._finding(
                            source, stmt, "lock", import_chain, ()))
                        # The module-body call walk sees the same ctor.
                        seen.add((relpath, value.lineno, value.col_offset))
            # Hazards reached from module-level call sites via call edges.
            findings.extend(self._walk_calls(
                project, graph, f"{relpath}::{MODULE_BODY}", import_chain,
                ("<module>",), local_scope, set(), seen))
        return findings

    # ------------------------------------------------------------------ #
    def _import_closure(self, graph: CallGraph) -> Dict[str, Tuple[str, ...]]:
        """relpath -> shortest import chain from the trainer module."""
        chains: Dict[str, Tuple[str, ...]] = {_ENTRY: (_ENTRY,)}
        queue = [_ENTRY]
        while queue:
            relpath = queue.pop(0)
            module = graph.modules.get(relpath)
            if module is None:
                continue
            for imported in sorted(module.symbols.imported_modules):
                if imported not in chains:
                    chains[imported] = chains[relpath] + (imported,)
                    queue.append(imported)
        return chains

    def _walk_calls(self, project: Project, graph: CallGraph, fn_key: str,
                    import_chain: Tuple[str, ...],
                    call_chain: Tuple[str, ...], local_scope: Set[str],
                    visited: Set[str],
                    seen: Set[Tuple[str, int, int]]) -> List[Finding]:
        if fn_key in visited or len(call_chain) > _MAX_CALL_DEPTH:
            return []
        visited.add(fn_key)
        fn = graph.function(fn_key)
        if fn is None:
            return []
        source = project.file(fn.relpath)
        if source is None:
            return []
        findings: List[Finding] = []
        aliases = _lock_aliases(source.tree)
        body = fn.node.body if fn.qualname != MODULE_BODY else [
            s for s in source.tree.body
            if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef))]
        for stmt in body:
            for node in walk_shallow(stmt):
                if not isinstance(node, ast.Call):
                    continue
                kind = _hazard_kind(node, aliases)
                if kind is not None:
                    covered_by_fork_safety = (
                        fn.relpath in local_scope
                        and (kind != "lock" or len(call_chain) == 1))
                    key = (fn.relpath, node.lineno, node.col_offset)
                    if not covered_by_fork_safety and key not in seen:
                        seen.add(key)
                        findings.append(self._finding(
                            source, node, kind, import_chain, call_chain))
                    continue
                site = graph.site(node)
                if site is not None and site.callee is not None:
                    findings.extend(self._walk_calls(
                        project, graph, site.callee, import_chain,
                        call_chain + (graph.display(site.callee),),
                        local_scope, visited, seen))
        return findings

    def _finding(self, source, node: ast.AST, kind: str,
                 import_chain: Tuple[str, ...],
                 call_chain: Tuple[str, ...]) -> Finding:
        chain = "import chain " + " -> ".join(import_chain)
        if len(call_chain) > 1:
            chain += "; call chain " + " -> ".join(call_chain)
        return source.finding(
            "fork-taint", node,
            f"{chain}: {_HAZARD_TEXT[kind]} (executes at import time "
            "inside the closure os.fork() duplicates into workers)")
