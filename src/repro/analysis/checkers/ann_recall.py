"""ann-recall coverage checker.

ANN indexes trade exactness for speed, so every index kind is only
trustworthy with a recall/parity test pinning its behaviour: full-probe
searches must match the exact ranking bit-for-bit, and bounded-probe
recall must be measured, not assumed.  ``tests/ann/`` holds those tests.
This rule makes the coverage machine-checked, mirroring ``kernel-parity``
for SpMM backends: adding ``@register_index("mynew")`` without a
``tests/ann/`` test containing the string ``"mynew"`` fails
``sptransx check`` before a reviewer has to remember the convention.

* ``ann-recall`` findings point at the class definition of the uncovered
  index kind.
* Index kinds count as covered when their registry name appears as a
  string literal in any ``tests/ann/*.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from repro.analysis.core import Checker, Finding, Project, register_checker

_ANN_PREFIX = "ann/"
_TESTS_PREFIX = "tests/ann/"


def _registered_indexes(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """``(kind, class node)`` for every ``@register_index("kind")`` class."""
    out: List[Tuple[str, ast.AST]] = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        for deco in stmt.decorator_list:
            if (
                isinstance(deco, ast.Call)
                and isinstance(deco.func, ast.Name)
                and deco.func.id == "register_index"
                and deco.args
                and isinstance(deco.args[0], ast.Constant)
                and isinstance(deco.args[0].value, str)
            ):
                out.append((deco.args[0].value, stmt))
    return out


@register_checker
class AnnRecallChecker(Checker):
    name = "ann-recall"
    rule_ids = ("ann-recall",)
    description = (
        "every registered ANN index kind must be named by a recall/parity "
        "test under tests/ann/"
    )
    trigger_prefixes = ("ann/", "tests/ann/")

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        tests = [
            t for t in project.test_files if t.relpath.startswith(_TESTS_PREFIX)
        ]
        corpus = "\n".join(t.text for t in tests)
        for src in project.iter_package(_ANN_PREFIX):
            for kind, node in _registered_indexes(src.tree):
                if (f'"{kind}"' not in corpus) and (f"'{kind}'" not in corpus):
                    findings.append(
                        src.finding(
                            "ann-recall",
                            node,
                            f'ANN index kind "{kind}" is registered but no '
                            f"tests/ann/ test names it; add a full-probe "
                            "parity test and a bounded-probe recall test",
                        )
                    )
        return findings
