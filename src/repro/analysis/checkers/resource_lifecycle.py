"""resource-lifecycle checker: close-on-all-paths for acquired handles.

The repo's hot paths juggle three kinds of OS-backed handles — SQLite
connections (``sqlite3.connect``), plain files (``open``), and memory maps
(``np.load(..., mmap_mode=...)`` / ``np.lib.format.open_memmap``).  A
handle that is opened but not released on *every* normal path out of the
function is a descriptor leak; on the serving side the transient-mmap
pattern makes this easy to get wrong inside rescoring loops.

Mechanics, per function (forward dataflow over the :mod:`dataflow` CFG):

* an **acquisition** bound to a local starts ``open``;
* ``x.close()``, ``del x`` (the canonical release for ``np.memmap``, which
  has no ``close()``), and ``with x:`` move it to ``closed``;
* passing the handle to *any* call, returning/yielding it, or storing it
  on an object moves it to ``escaped`` — ownership transferred, the
  caller/consumer is now responsible;
* at the function's normal exits, a handle still ``open`` on some path is
  a finding at the acquisition site.  Paths that end in an explicit
  ``raise`` are not charged (error paths may legitimately leak to the
  supervisor); ``finally`` blocks are modelled on early returns.

Interprocedural half — **acquirer propagation**: a function whose return
value is an open handle (``return sqlite3.connect(p)`` or ``return conn``)
is itself an acquisition site for its callers, found via the call graph
and iterated to a fixpoint.  Constructors of *resource classes* (a class
that stores a primitive handle on ``self`` and defines ``close``/
``__exit__``/``__del__``) count the same way.  A class that stores a file
or SQLite handle on ``self`` but defines no release method at all is
flagged directly.

Graceful degradation: handles reached through unresolved calls, container
comprehensions, or attribute chains the graph cannot type produce no
claim.  Anonymous ``open(...)``/``sqlite3.connect(...)`` expressions that
are neither bound, managed, passed on, nor returned are flagged
syntactically (``open(p).read()`` leaks the descriptor until GC).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, walk_shallow
from repro.analysis.core import Checker, Finding, Project, register_checker
from repro.analysis.dataflow import CFGNode, ForwardAnalysis, Transfer, build_cfg

_OPEN, _CLOSED, _ESCAPED = "open", "closed", "escaped"

_KIND_TEXT = {
    "file": "file handle",
    "sqlite": "sqlite connection",
    "mmap": "memory map",
}
_RELEASE_HINT = {
    "file": "close it, use `with`, or hand it to an owner that closes it",
    "sqlite": "close it, use `with contextlib.closing(...)`, or pass it on",
    "mmap": "release it with `del` once copied out (np.memmap has no close)",
}


def acquisition_kind(node: ast.Call) -> Optional[str]:
    """'file' | 'sqlite' | 'mmap' when ``node`` acquires an OS handle."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "file"
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if (func.attr == "connect" and isinstance(base, ast.Name)
            and base.id == "sqlite3"):
        return "sqlite"
    if (func.attr == "load" and isinstance(base, ast.Name)
            and base.id in ("np", "numpy")):
        for kw in node.keywords:
            if kw.arg == "mmap_mode" and not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is None):
                return "mmap"
        return None
    if func.attr == "open_memmap":
        return "mmap"
    return None


def _single_name_target(stmt: ast.Assign) -> Optional[str]:
    if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id
    return None


def _call_arg_values(call: ast.Call) -> Iterable[ast.expr]:
    for arg in call.args:
        yield arg.value if isinstance(arg, ast.Starred) else arg
    for kw in call.keywords:
        yield kw.value


class _Site:
    """One acquisition site inside one function."""

    __slots__ = ("sid", "node", "kind", "via")

    def __init__(self, sid: str, node: ast.Call, kind: str,
                 via: Optional[str] = None):
        self.sid = sid
        self.node = node
        self.kind = kind
        self.via = via  # callee display name when acquired through a call


class _ResourceTransfer(Transfer):
    """Lattice: per-site status (open/closed/escaped) + var bindings."""

    def __init__(self, checker: "ResourceLifecycleChecker",
                 fn: FunctionInfo):
        self.checker = checker
        self.fn = fn
        self.sites: Dict[str, _Site] = {}
        self.returns_kind: Set[str] = set()

    # ---- lattice ----------------------------------------------------- #
    def join(self, a: Dict, b: Dict) -> Dict:
        out: Dict[str, str] = {}
        for key in set(a) | set(b):
            va, vb = a.get(key), b.get(key)
            if key.startswith("r:"):
                if _ESCAPED in (va, vb):
                    out[key] = _ESCAPED
                elif _OPEN in (va, vb):
                    out[key] = _OPEN
                else:
                    out[key] = _CLOSED
            elif va == vb and va is not None:
                out[key] = va  # binding agrees on both paths
        return out

    # ---- helpers ----------------------------------------------------- #
    def _site_for_call(self, node: ast.Call) -> Optional[_Site]:
        kind = acquisition_kind(node)
        via = None
        if kind is None:
            callee = self.checker._graph.resolve(node)
            site = self.checker._graph.site(node)
            if callee is not None and callee in self.checker._acquirers:
                kind = self.checker._acquirers[callee]
                via = self.checker._graph.display(callee)
            elif (site is not None and site.instantiates is not None
                  and site.instantiates in self.checker._resource_classes):
                kind = self.checker._resource_classes[site.instantiates]
                via = self.checker._graph.classes[site.instantiates].name
        if kind is None:
            return None
        sid = f"{node.lineno}:{node.col_offset}"
        if sid not in self.sites:
            self.sites[sid] = _Site(sid, node, kind, via)
        return self.sites[sid]

    def _bind(self, state: Dict, name: str, site: _Site) -> None:
        state[f"v:{name}"] = site.sid
        state[f"r:{site.sid}"] = _OPEN

    def _status(self, state: Dict, name: str) -> Optional[str]:
        sid = state.get(f"v:{name}")
        return None if sid is None else state.get(f"r:{sid}")

    def _mark(self, state: Dict, name: str, status: str) -> None:
        sid = state.get(f"v:{name}")
        if sid is not None:
            state[f"r:{sid}"] = status

    def _drop(self, state: Dict, name: str) -> None:
        state.pop(f"v:{name}", None)

    def _escape_names_in(self, state: Dict, expr: ast.expr) -> None:
        """Escape bindings surrendered by value position (tuple/list/...)."""
        if isinstance(expr, ast.Name):
            self._mark(state, expr.id, _ESCAPED)
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._escape_names_in(state, elt)
        elif isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    self._escape_names_in(state, value)

    # ---- transfer ----------------------------------------------------- #
    def transfer(self, node: CFGNode, state: Dict) -> Dict:
        if node.kind == "with-enter" and node.item is not None:
            ce = node.item.context_expr
            if isinstance(ce, ast.Name):
                # `with handle:` — the with guarantees release on all exits.
                self._mark(state, ce.id, _CLOSED)
            return state
        if node.kind == "loop-test" and isinstance(node.stmt,
                                                   (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.stmt.target):
                if isinstance(sub, ast.Name):
                    self._drop(state, sub.id)
            return state
        if node.kind != "stmt" or node.stmt is None:
            return state
        stmt = node.stmt

        # Handles passed to any call escape (ownership transferred).
        for sub in walk_shallow(stmt):
            if isinstance(sub, ast.Call):
                for arg in _call_arg_values(sub):
                    if isinstance(arg, ast.Name):
                        self._mark(state, arg.id, _ESCAPED)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                if sub.value is not None:
                    self._escape_names_in(state, sub.value)

        if isinstance(stmt, ast.Assign):
            self._assign(state, stmt)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                self._drop(state, stmt.target.id)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._mark(state, target.id, _CLOSED)
                    self._drop(state, target.id)
        elif isinstance(stmt, ast.Return):
            self._return(state, stmt)
        elif isinstance(stmt, ast.Expr):
            self._expr(state, stmt.value)
        return state

    def _assign(self, state: Dict, stmt: ast.Assign) -> None:
        name = _single_name_target(stmt)
        value = stmt.value
        if isinstance(value, ast.Call):
            site = self._site_for_call(value)
            if site is not None and name is not None:
                self._bind(state, name, site)
                return
        if isinstance(value, ast.Name):
            sid = state.get(f"v:{value.id}")
            if sid is not None:
                if name is not None:
                    state[f"v:{name}"] = sid  # alias
                else:
                    state[f"r:{sid}"] = _ESCAPED  # stored on an object
                return
        if name is not None:
            self._drop(state, name)  # rebound to something untracked
        else:
            self._escape_names_in(state, value)

    def _return(self, state: Dict, stmt: ast.Return) -> None:
        value = stmt.value
        if value is None:
            return
        if isinstance(value, ast.Call):
            kind = acquisition_kind(value)
            if kind is None:
                callee = self.checker._graph.resolve(value)
                if callee is not None:
                    kind = self.checker._acquirers.get(callee)
            if kind is not None:
                self.returns_kind.add(kind)
            return
        if isinstance(value, ast.Name):
            if self._status(state, value.id) == _OPEN:
                sid = state[f"v:{value.id}"]
                self.returns_kind.add(self.sites[sid].kind)
        self._escape_names_in(state, value)

    def _expr(self, state: Dict, value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        func = value.func
        if (isinstance(func, ast.Attribute) and func.attr == "close"
                and isinstance(func.value, ast.Name)):
            self._mark(state, func.value.id, _CLOSED)


class ResourceLifecycleChecker(Checker):
    name = "resource-lifecycle"
    rule_ids = ("resource-lifecycle",)
    description = (
        "acquired handles (open/sqlite3.connect/mmap-mode np.load/"
        "open_memmap) must be closed on every normal path, managed by "
        "`with`, or handed off; functions returning open handles taint "
        "their callers (interprocedural)"
    )
    # Interprocedural: acquirer status can change from any package file.
    trigger_prefixes = ("",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        self._project = project
        self._graph = CallGraph.for_project(project)
        self._resource_classes = self._find_resource_classes()
        self._acquirers: Dict[str, str] = {}

        # Fixpoint over "returns an open handle" (chains of factories).
        results: List[Tuple[FunctionInfo, List[_Site], Set[str]]] = []
        for _round in range(4):
            results = [self._analyze(fn) for fn in self._analyzable()]
            acquirers: Dict[str, str] = {}
            for fn, _open_sites, kinds in results:
                for kind in kinds:
                    acquirers[fn.key] = kind
            if acquirers == self._acquirers:
                break
            self._acquirers = acquirers
        findings: List[Finding] = [
            f for fn, open_sites, _k in results
            for f in self._leak_findings(fn, open_sites)
        ]
        findings.extend(self._self_store_findings())
        findings.extend(self._orphan_findings())
        return findings

    # ------------------------------------------------------------------ #
    def _analyzable(self) -> Iterable[FunctionInfo]:
        for fn in self._graph.iter_functions():
            if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield fn

    def _analyze(self, fn: FunctionInfo
                 ) -> Tuple[FunctionInfo, List[_Site], Set[str]]:
        transfer = _ResourceTransfer(self, fn)
        analysis = ForwardAnalysis(build_cfg(fn.node), transfer).run()
        exit_state = analysis.exit_state() or {}
        open_sites = [
            transfer.sites[key[2:]]
            for key, status in exit_state.items()
            if key.startswith("r:") and status == _OPEN
        ]
        return fn, open_sites, transfer.returns_kind

    def _leak_findings(self, fn: FunctionInfo,
                       open_sites: Sequence[_Site]) -> Iterable[Finding]:
        source = self._project.file(fn.relpath)
        if source is None:
            return
        for site in sorted(open_sites, key=lambda s: s.node.lineno):
            what = _KIND_TEXT[site.kind]
            origin = (f"call to {site.via} returns an open {what}"
                      if site.via else f"{what} acquired here")
            yield source.finding(
                "resource-lifecycle",
                site.node,
                f"{origin} is still open on a normal path out of "
                f"{fn.qualname}(); {_RELEASE_HINT[site.kind]}",
            )

    # ------------------------------------------------------------------ #
    def _find_resource_classes(self) -> Dict[str, str]:
        """Class key -> handle kind, for classes owning a primitive handle."""
        out: Dict[str, str] = {}
        for key, info in self._graph.classes.items():
            if not self._has_release(key):
                continue
            for member in info.node.body:
                if not isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                for node in walk_shallow(member):
                    if (isinstance(node, ast.Assign)
                            and isinstance(node.value, ast.Call)
                            and self._is_self_store(node)):
                        kind = acquisition_kind(node.value)
                        if kind is not None:
                            out.setdefault(key, kind)
        return out

    def _has_release(self, class_key: str) -> bool:
        return any(
            self._graph.resolve_method(class_key, name) is not None
            for name in ("close", "__exit__", "__del__")
        )

    @staticmethod
    def _is_self_store(stmt: ast.Assign) -> bool:
        return any(
            isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name)
            and t.value.id == "self"
            for t in stmt.targets
        )

    def _self_store_findings(self) -> Iterable[Finding]:
        """Classes that store a file/sqlite handle but can never release it."""
        for key, info in self._graph.classes.items():
            if self._has_release(key):
                continue
            source = self._project.file(info.relpath)
            if source is None:
                continue
            for member in info.node.body:
                if not isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                for node in walk_shallow(member):
                    if not (isinstance(node, ast.Assign)
                            and isinstance(node.value, ast.Call)
                            and self._is_self_store(node)):
                        continue
                    kind = acquisition_kind(node.value)
                    if kind in ("file", "sqlite"):
                        yield source.finding(
                            "resource-lifecycle",
                            node,
                            f"{info.name} stores an open "
                            f"{_KIND_TEXT[kind]} on self but defines no "
                            "close()/__exit__/__del__; the handle can "
                            "never be released",
                        )

    # ------------------------------------------------------------------ #
    def _orphan_findings(self) -> Iterable[Finding]:
        """Anonymous file/sqlite acquisitions that nothing can ever close."""
        for fn in self._analyzable():
            source = self._project.file(fn.relpath)
            if source is None:
                continue
            consumed = self._consumed_calls(fn)
            for stmt in fn.node.body:
                for node in self._body_walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    kind = acquisition_kind(node)
                    if kind not in ("file", "sqlite"):
                        continue
                    if id(node) in consumed:
                        continue
                    yield source.finding(
                        "resource-lifecycle",
                        node,
                        f"anonymous {_KIND_TEXT[kind]} is never bound: "
                        "nothing can close it (leaks until GC); bind it "
                        "or use a `with` block",
                    )

    @staticmethod
    def _body_walk(stmt: ast.stmt) -> Iterable[ast.AST]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return ()
        return walk_shallow(stmt)

    def _consumed_calls(self, fn: FunctionInfo) -> Set[int]:
        """Call nodes whose handle is bound, managed, passed on, or returned."""
        consumed: Set[int] = set()
        for stmt in fn.node.body:
            for node in self._body_walk(stmt):
                if isinstance(node, ast.Assign):
                    consumed.add(id(node.value))
                elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                    if node.value is not None:
                        consumed.add(id(node.value))
                        if isinstance(node.value, (ast.Tuple, ast.List)):
                            consumed.update(id(e) for e in node.value.elts)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        consumed.add(id(item.context_expr))
                elif isinstance(node, ast.Call):
                    consumed.update(id(a) for a in _call_arg_values(node))
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    # Comprehension-produced handles: container owns them;
                    # no per-element claim (graceful degradation).
                    consumed.update(id(sub) for sub in ast.walk(node))
        return consumed


register_checker(ResourceLifecycleChecker)
