"""Human-readable and JSON reporters for ``sptransx check``."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.core import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding]) -> str:
    """flake8-style one-line-per-finding report plus a per-rule summary."""
    if not findings:
        return "sptransx check: no invariant violations found."
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule}: {f.message}" for f in findings
    ]
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    lines.append("")
    lines.append(
        f"sptransx check: {len(findings)} violation"
        f"{'s' if len(findings) != 1 else ''} ({summary})"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: ``{"violations": N, "findings": [...]}``."""
    payload = {
        "violations": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
