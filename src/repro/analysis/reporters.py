"""Human-readable and JSON reporters for ``sptransx check``."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.core import Finding

__all__ = ["render_text", "render_json", "render_github"]


def render_text(findings: Sequence[Finding]) -> str:
    """flake8-style one-line-per-finding report plus a per-rule summary."""
    if not findings:
        return "sptransx check: no invariant violations found."
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule}: {f.message}" for f in findings
    ]
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    lines.append("")
    lines.append(
        f"sptransx check: {len(findings)} violation"
        f"{'s' if len(findings) != 1 else ''} ({summary})"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: ``{"violations": N, "findings": [...]}``.

    Each finding carries its content-based ``fingerprint`` (rule + path +
    normalized snippet, line-number independent) so future baseline files
    can match findings across rebases.
    """
    payload = {
        "violations": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _gh_escape(value: str, *, property_: bool = False) -> str:
    """GitHub workflow-command escaping (%, CR, LF; plus ',' ':' in props)."""
    value = (value.replace("%", "%25")
             .replace("\r", "%0D")
             .replace("\n", "%0A"))
    if property_:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions annotations: findings render inline on PR diffs.

    One ``::error`` workflow command per finding; a trailing plain-text
    summary line keeps the raw log readable.
    """
    lines = [
        f"::error file={_gh_escape(f.path, property_=True)},"
        f"line={f.line},col={f.col},"
        f"title={_gh_escape(f.rule, property_=True)}::"
        f"{_gh_escape(f'{f.rule}: {f.message}')}"
        for f in findings
    ]
    lines.append(
        f"sptransx check: {len(findings)} violation"
        f"{'s' if len(findings) != 1 else ''}"
        if findings else "sptransx check: no invariant violations found."
    )
    return "\n".join(lines)
