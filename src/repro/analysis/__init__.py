"""Static analysis for repo-wide invariants (``sptransx check``).

See :mod:`repro.analysis.core` for the framework,
:mod:`repro.analysis.callgraph` / :mod:`repro.analysis.dataflow` for the
interprocedural engine (project call graph + per-function forward
dataflow), and :mod:`repro.analysis.checkers` for the shipped rules:

==================  =====================================================
rule id             invariant
==================  =====================================================
dtype-ctor          hot-path numpy constructors name their dtype
dtype-promotion     no builtin-float dtypes / fp64-forcing literals
fork-module-lock    no module-level locks in the fork closure
fork-sqlite         no sqlite connections crossing os.fork
fork-atexit         no atexit handlers in the fork closure
fork-taint          fork hazards anywhere in the *transitive* import
                    closure, with the import/call chain (interprocedural)
lock-discipline     serving state mutates only under its Lock (lexical)
lock-state          no lock-free call path from a thread entry point to a
                    write of Lock-guarded state (interprocedural)
resource-lifecycle  acquired handles (open/sqlite/mmap) close on every
                    path, or escape to an owner (interprocedural)
kernel-parity       every backend/kernel has a tests/sparse/ parity test
registry-model      every concrete model carries @register_model
registry-roundtrip  spec dataclass fields survive to_dict/from_dict
suppression-unused  every ``# repro: ignore`` still suppresses something
==================  =====================================================

Suppress per line with ``# repro: ignore[rule-id]`` or per file with
``# repro: ignore-file[rule-id]``.
"""

from repro.analysis.callgraph import CallGraph, CallSite, walk_shallow
from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceFile,
    changed_files,
    iter_checkers,
    iter_rules,
    register_checker,
    run_checks,
)
from repro.analysis.dataflow import (
    CFG,
    CFGNode,
    ForwardAnalysis,
    Transfer,
    build_cfg,
)
from repro.analysis.reporters import render_github, render_json, render_text

__all__ = [
    "CFG",
    "CFGNode",
    "CallGraph",
    "CallSite",
    "Checker",
    "Finding",
    "ForwardAnalysis",
    "Project",
    "SourceFile",
    "Transfer",
    "build_cfg",
    "changed_files",
    "iter_checkers",
    "iter_rules",
    "register_checker",
    "render_github",
    "render_json",
    "render_text",
    "run_checks",
    "walk_shallow",
]
