"""Static analysis for repo-wide invariants (``sptransx check``).

See :mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.checkers` for the shipped rules:

==================  =====================================================
rule id             invariant
==================  =====================================================
dtype-ctor          hot-path numpy constructors name their dtype
dtype-promotion     no builtin-float dtypes / fp64-forcing literals
fork-module-lock    no module-level locks in the fork closure
fork-sqlite         no sqlite connections crossing os.fork
fork-atexit         no atexit handlers in the fork closure
lock-discipline     serving state mutates only under its Lock
kernel-parity       every backend/kernel has a tests/sparse/ parity test
registry-model      every concrete model carries @register_model
registry-roundtrip  spec dataclass fields survive to_dict/from_dict
==================  =====================================================

Suppress per line with ``# repro: ignore[rule-id]`` or per file with
``# repro: ignore-file[rule-id]``.
"""

from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    SourceFile,
    changed_files,
    iter_checkers,
    iter_rules,
    register_checker,
    run_checks,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Checker",
    "Finding",
    "Project",
    "SourceFile",
    "changed_files",
    "iter_checkers",
    "iter_rules",
    "register_checker",
    "run_checks",
    "render_json",
    "render_text",
]
