"""Blocked ranking and top-k selection shared by models and serving.

Three pieces of logic used to live twice — once as static helpers on
:class:`~repro.models.base.KGEModel` and once re-implemented inside
:mod:`repro.serving.engine`:

* :func:`top_k` — O(N) ``argpartition`` selection of the ``k`` smallest
  scores, ordered ascending;
* :func:`l2_distance_matrix` — pairwise L2 distances through one GEMM;
* :func:`candidate_expansion_scores` — the generic "expand every entity as a
  candidate and score the grid in chunks" ranking fallback.

They now live here, once; :class:`KGEModel` keeps thin delegating wrappers
for API compatibility and the serving engine imports these directly.  The
module additionally provides :func:`nearest_rows`, the blocked
embedding-space kNN used to serve ``nearest_entities`` against tables that
are never densified (partitioned models).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from repro.autograd.function import count_flops

#: Elements per ``(B, tile)`` distance tile of the cache-tiled L2 kernel
#: (~16 MB at float64) — every temporary the kernel touches is tile-sized,
#: so a ranking sweep over a large vocabulary never materialises a second
#: full ``(B, N)`` array beyond the output itself.
RANK_TILE_ELEMENTS = 1 << 21


def top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest scores, ordered ascending.

    ``argpartition`` selects the top-k in O(N), then only those k entries are
    sorted — the serving-time win over a full O(N log N) ``argsort``.
    """
    n = scores.shape[0]
    k = max(0, min(int(k), n))
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.argsort(scores, kind="stable").astype(np.int64)
    selected = np.argpartition(scores, k - 1)[:k]
    # Lexsort orders the selected subset stably by (score, index).  Which of
    # several candidates tied exactly at the k-th score make the cut is up to
    # argpartition, matching np.argsort's own unspecified tie order.
    order = np.lexsort((selected, scores[selected]))
    return selected[order].astype(np.int64)


def l2_distance_matrix(queries: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Pairwise L2 distances ``(B, N)`` through a cache-tiled GEMM kernel.

    ``||q − t||² = ||q||² − 2 q·Tᵀ + ||t||²`` avoids materialising the
    ``(B, N, d)`` diff tensor; shared by the closed-form ranking path
    (``SpTransE``), the serving engine's embedding-space kNN, and the
    per-bucket sweeps over partitioned tables.

    The target rows are processed in tiles bounded by
    :data:`RANK_TILE_ELEMENTS`: each tile's GEMM, norm broadcast, clamp, and
    square root run in place on the output slice, so beyond the ``(B, N)``
    result itself every temporary is tile-sized (cache-resident) — the old
    implementation streamed two extra full ``(B, N)`` arrays through memory.
    The floating-point schedule per element is unchanged, so results are
    bit-identical to the untiled expansion.

    Dtype follows the inputs (``float32`` queries never silently upcast to
    ``float64``).  Mixed precision promotes: quantized ``float16`` target
    tables scored against ``float64`` queries are dequantized one tile at a
    time — the full table is never widened in memory.
    """
    queries = np.asarray(queries)
    targets = np.asarray(targets)
    b, d = queries.shape
    n = targets.shape[0]
    dtype = np.result_type(queries.dtype, targets.dtype)
    if not np.issubdtype(dtype, np.floating):
        dtype = np.dtype(np.float64)
    t0 = time.perf_counter()
    q = queries.astype(dtype, copy=False)
    q_sq = (q ** 2).sum(axis=1)[:, None]
    out = np.empty((b, n), dtype=dtype)
    tile = max(1, RANK_TILE_ELEMENTS // max(1, b))
    for start in range(0, n, tile):
        stop = min(n, start + tile)
        blk = targets[start:stop].astype(dtype, copy=False)
        tile_out = out[:, start:stop]
        tile_out[...] = q_sq + (blk ** 2).sum(axis=1)[None, :]
        tile_out -= 2.0 * (q @ blk.T)
        # Cancellation can leave tiny negatives where q ≈ t.
        np.maximum(tile_out, 0.0, out=tile_out)
        tile_out += 1e-12
        np.sqrt(tile_out, out=tile_out)
    count_flops(
        "rank_l2[tiled]",
        2 * b * n * d + 5 * b * n,
        bytes_streamed=q.nbytes + targets.nbytes + out.nbytes,
        bytes_unique=q.nbytes + targets.nbytes + out.nbytes,
        seconds=time.perf_counter() - t0,
    )
    return out


def candidate_expansion_scores(
    first: np.ndarray,
    second: np.ndarray,
    position: str,
    n_entities: int,
    score_triples: Callable[..., np.ndarray],
    chunk_size: int,
) -> np.ndarray:
    """Candidate-expansion ranking shared by the two ``score_all_*`` fallbacks.

    The whole candidate grid is materialised with ``np.repeat``/``np.tile``
    in blocks of query rows (rather than one Python-level ``column_stack``
    per query), sized so each block stays within ``chunk_size`` triples.
    ``position`` selects whether the tiled candidates stand in for the tail
    (``first``/``second`` are heads/relations) or the head (``first``/
    ``second`` are relations/tails).

    The output dtype follows what ``score_triples`` produces — a model scoring
    in float32 gets a float32 score grid back, never a silent float64 upcast.
    """
    n = int(n_entities)
    b = first.shape[0]
    candidates = np.arange(n, dtype=np.int64)
    out: Optional[np.ndarray] = None
    rows_per_block = max(1, int(chunk_size) // n)
    for start in range(0, b, rows_per_block):
        stop = min(b, start + rows_per_block)
        rows = stop - start
        expanded_first = np.repeat(first[start:stop], n)
        expanded_second = np.repeat(second[start:stop], n)
        tiled = np.tile(candidates, rows)
        if position == "tail":
            triples = np.column_stack([expanded_first, expanded_second, tiled])
        else:
            triples = np.column_stack([tiled, expanded_first, expanded_second])
        block = score_triples(triples, chunk_size=chunk_size).reshape(rows, n)
        if out is None:
            out = np.empty((b, n), dtype=block.dtype)
        out[start:stop] = block
    if out is None:
        out = np.empty((b, n), dtype=np.float64)
    return out


def nearest_rows(query: np.ndarray,
                 blocks: Iterable[Tuple[int, np.ndarray]],
                 k: int,
                 exclude: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked embedding-space kNN: the ``k`` rows closest to ``query``.

    ``blocks`` yields ``(start_row, block)`` pairs (the
    :meth:`~repro.nn.table.EmbeddingTable.iter_blocks` contract), so the full
    table is never materialised — each block contributes its local top-k and
    the running candidate set is re-selected, keeping memory O(block + k).
    Returns ``(indices, distances)`` ascending; ``exclude`` drops one row id
    (the query itself).

    The distance dtype follows NumPy promotion of the query and block dtypes
    (the :func:`l2_distance_matrix` contract): an fp16 query against fp16
    blocks yields fp16 distances, never a silent float64 upcast.  Non-float
    queries (e.g. integer test fixtures) are cast to float64.
    """
    best_idx = np.empty(0, dtype=np.int64)
    best_dist: Optional[np.ndarray] = None
    q = np.asarray(query)
    if not np.issubdtype(q.dtype, np.floating):
        q = np.asarray(q, dtype=np.float64)
    q = q[None, :]
    for start, block in blocks:
        dist = l2_distance_matrix(q, block)[0]
        if best_dist is None:
            best_dist = np.empty(0, dtype=dist.dtype)
        idx = np.arange(start, start + block.shape[0], dtype=np.int64)
        if exclude is not None and start <= exclude < start + block.shape[0]:
            dist[exclude - start] = np.inf
        merged_idx = np.concatenate([best_idx, idx])
        merged_dist = np.concatenate([best_dist, dist])
        keep = top_k(merged_dist, k)
        best_idx, best_dist = merged_idx[keep], merged_dist[keep]
    if best_dist is None:
        best_dist = np.empty(0, dtype=np.float64)
    finite = np.isfinite(best_dist)
    return best_idx[finite], best_dist[finite]
