"""Blocked ranking and top-k selection shared by models and serving.

Three pieces of logic used to live twice — once as static helpers on
:class:`~repro.models.base.KGEModel` and once re-implemented inside
:mod:`repro.serving.engine`:

* :func:`top_k` — O(N) ``argpartition`` selection of the ``k`` smallest
  scores, ordered ascending;
* :func:`l2_distance_matrix` — pairwise L2 distances through one GEMM;
* :func:`candidate_expansion_scores` — the generic "expand every entity as a
  candidate and score the grid in chunks" ranking fallback.

They now live here, once; :class:`KGEModel` keeps thin delegating wrappers
for API compatibility and the serving engine imports these directly.  The
module additionally provides :func:`nearest_rows`, the blocked
embedding-space kNN used to serve ``nearest_entities`` against tables that
are never densified (partitioned models).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

import numpy as np


def top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest scores, ordered ascending.

    ``argpartition`` selects the top-k in O(N), then only those k entries are
    sorted — the serving-time win over a full O(N log N) ``argsort``.
    """
    n = scores.shape[0]
    k = max(0, min(int(k), n))
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.argsort(scores, kind="stable").astype(np.int64)
    selected = np.argpartition(scores, k - 1)[:k]
    # Lexsort orders the selected subset stably by (score, index).  Which of
    # several candidates tied exactly at the k-th score make the cut is up to
    # argpartition, matching np.argsort's own unspecified tie order.
    order = np.lexsort((selected, scores[selected]))
    return selected[order].astype(np.int64)


def l2_distance_matrix(queries: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Pairwise L2 distances ``(B, N)`` through one GEMM.

    ``||q − t||² = ||q||² − 2 q·t + ||t||²`` avoids materialising the
    ``(B, N, d)`` diff tensor; shared by the closed-form ranking path
    (``SpTransE``), the serving engine's embedding-space kNN, and the
    per-bucket sweeps over partitioned tables.
    """
    sq = (queries ** 2).sum(axis=1)[:, None] + (targets ** 2).sum(axis=1)[None, :]
    sq -= 2.0 * (queries @ targets.T)
    # Cancellation can leave tiny negatives where q ≈ t.
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq + 1e-12)


def candidate_expansion_scores(
    first: np.ndarray,
    second: np.ndarray,
    position: str,
    n_entities: int,
    score_triples: Callable[..., np.ndarray],
    chunk_size: int,
) -> np.ndarray:
    """Candidate-expansion ranking shared by the two ``score_all_*`` fallbacks.

    The whole candidate grid is materialised with ``np.repeat``/``np.tile``
    in blocks of query rows (rather than one Python-level ``column_stack``
    per query), sized so each block stays within ``chunk_size`` triples.
    ``position`` selects whether the tiled candidates stand in for the tail
    (``first``/``second`` are heads/relations) or the head (``first``/
    ``second`` are relations/tails).
    """
    n = int(n_entities)
    b = first.shape[0]
    candidates = np.arange(n, dtype=np.int64)
    out = np.empty((b, n), dtype=np.float64)
    rows_per_block = max(1, int(chunk_size) // n)
    for start in range(0, b, rows_per_block):
        stop = min(b, start + rows_per_block)
        rows = stop - start
        expanded_first = np.repeat(first[start:stop], n)
        expanded_second = np.repeat(second[start:stop], n)
        tiled = np.tile(candidates, rows)
        if position == "tail":
            triples = np.column_stack([expanded_first, expanded_second, tiled])
        else:
            triples = np.column_stack([tiled, expanded_first, expanded_second])
        out[start:stop] = score_triples(
            triples, chunk_size=chunk_size).reshape(rows, n)
    return out


def nearest_rows(query: np.ndarray,
                 blocks: Iterable[Tuple[int, np.ndarray]],
                 k: int,
                 exclude: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked embedding-space kNN: the ``k`` rows closest to ``query``.

    ``blocks`` yields ``(start_row, block)`` pairs (the
    :meth:`~repro.nn.table.EmbeddingTable.iter_blocks` contract), so the full
    table is never materialised — each block contributes its local top-k and
    the running candidate set is re-selected, keeping memory O(block + k).
    Returns ``(indices, distances)`` ascending; ``exclude`` drops one row id
    (the query itself).
    """
    best_idx = np.empty(0, dtype=np.int64)
    best_dist = np.empty(0, dtype=np.float64)
    q = np.asarray(query, dtype=np.float64)[None, :]
    for start, block in blocks:
        dist = l2_distance_matrix(q, block)[0]
        idx = np.arange(start, start + block.shape[0], dtype=np.int64)
        if exclude is not None and start <= exclude < start + block.shape[0]:
            dist[exclude - start] = np.inf
        merged_idx = np.concatenate([best_idx, idx])
        merged_dist = np.concatenate([best_dist, dist])
        keep = top_k(merged_dist, k)
        best_idx, best_dist = merged_idx[keep], merged_dist[keep]
    finite = np.isfinite(best_dist)
    return best_idx[finite], best_dist[finite]
