"""Training loops and configuration.

:class:`Trainer` runs the paper's training protocol (margin-ranking loss over
pre-generated negatives, per-phase wall-clock timing of forward / backward /
optimiser step) for any :class:`~repro.models.base.KGEModel`;
:class:`DataParallelTrainer` simulates the Appendix-F multi-worker scaling
study with an α–β communication model, and :class:`MultiprocessTrainer`
executes it for real — worker processes exchanging row-sparse gradients in
lockstep with the single-worker trajectory.
"""

from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer, TrainingResult, EpochStats
from repro.training.callbacks import (
    Callback,
    HistoryCallback,
    EarlyStopping,
    LRSchedulerCallback,
    EvaluationCallback,
)
from repro.training.distributed import DataParallelTrainer, CommunicationModel, ScalingResult
from repro.training.multiprocess import MultiprocessTrainer, MultiprocessResult
from repro.training.checkpoint import (
    Checkpoint,
    save_checkpoint,
    load_checkpoint,
    load_model,
    model_from_checkpoint,
    restore_into,
)

__all__ = [
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "load_model",
    "model_from_checkpoint",
    "restore_into",
    "TrainingConfig",
    "Trainer",
    "TrainingResult",
    "EpochStats",
    "Callback",
    "HistoryCallback",
    "EarlyStopping",
    "LRSchedulerCallback",
    "EvaluationCallback",
    "DataParallelTrainer",
    "CommunicationModel",
    "ScalingResult",
    "MultiprocessTrainer",
    "MultiprocessResult",
]
