"""Checkpointing: save and restore models, optimisers, and training progress.

Long KGE runs (the paper trains 200-1000 epochs) need resumable state.  A
checkpoint is a single ``.npz`` file holding the model's parameter arrays, the
optimiser's per-parameter state, the epoch counter, and the loss history, plus
a JSON-encoded metadata blob (model class, hyperparameters) used to sanity-
check that a checkpoint is being restored into a compatible model.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.models.base import KGEModel
from repro.nn.partitioned import (
    PARTITION_MANIFEST,
    PartitionedEmbedding,
    bucket_filename,
    partitioned_tables,
)
from repro.optim.optimizer import Optimizer
from repro.registry import ModelSpec, UnknownModelError, build_model, spec_from_model


@dataclass
class Checkpoint:
    """In-memory representation of a saved training state."""

    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, np.ndarray] = field(default_factory=dict)
    epoch: int = 0
    losses: List[float] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Path of the ``.npz`` file this checkpoint was read from (``None`` for
    #: checkpoints built in memory).  Partitioned restores use it to locate
    #: the ``weights/`` bucket directory next to the checkpoint.
    source_path: Optional[str] = None

    @property
    def partition_manifest(self) -> Optional[Dict[str, object]]:
        """The partitioned-entity-table manifest, when this checkpoint has one.

        Checkpoints of partitioned models keep entity weights out of the
        ``.npz`` (they live as ``weights/entities.bucket<k>.npy`` files next
        to it) and record the bucket layout here.
        """
        manifest = self.metadata.get("partitioned")
        return manifest if isinstance(manifest, dict) else None

    def spec(self) -> ModelSpec:
        """The :class:`~repro.registry.ModelSpec` this checkpoint was written with.

        Checkpoints written before the spec-driven registry carry only the
        ``model_config`` summary; for those the spec is derived from the
        registered class name so old checkpoints stay loadable.  Raises
        ``ValueError`` when neither form identifies a registered model.
        """
        payload = self.metadata.get("model_spec")
        if payload is not None:
            return ModelSpec.from_dict(payload)  # type: ignore[arg-type]
        return self._spec_from_legacy_config()

    def _spec_from_legacy_config(self) -> ModelSpec:
        from repro.registry import iter_entries

        saved = self.metadata.get("model_config")
        if not isinstance(saved, dict) or "model" not in saved:
            raise ValueError(
                "checkpoint carries no model spec and no legacy model_config; "
                "cannot reconstruct the model"
            )
        class_name = str(saved["model"])
        entry = next((e for e in iter_entries() if e.cls.__name__ == class_name), None)
        if entry is None:
            raise ValueError(
                f"checkpoint was written by unregistered model class {class_name!r}; "
                "register it with @register_model to make it loadable"
            )
        relation_dim = saved.get("relation_dim")
        return ModelSpec(
            model=entry.name,
            formulation=entry.formulation,
            n_entities=int(saved["n_entities"]),
            n_relations=int(saved["n_relations"]),
            embedding_dim=int(saved["embedding_dim"]),
            relation_dim=int(relation_dim) if relation_dim is not None else None,
            backend=(str(saved["backend"])
                     if entry.capabilities.accepts_backend and "backend" in saved
                     else None),
            dissimilarity=(str(saved["dissimilarity"])
                           if entry.capabilities.accepts_dissimilarity
                           and "dissimilarity" in saved else None),
        )


def _partitioned_table(model: KGEModel) -> Tuple[Optional[PartitionedEmbedding], Set[str]]:
    """The model's partitioned table (if any) and its bucket parameter names."""
    tables = partitioned_tables(model)
    if not tables:
        return None, set()
    if len(tables) > 1:
        raise NotImplementedError(
            "checkpointing supports at most one partitioned table per model"
        )
    bucket_ids = {id(p) for p in tables[0].bucket_parameters()}
    names = {name for name, p in model.named_parameters() if id(p) in bucket_ids}
    return tables[0], names


def _flatten_optimizer_state(optimizer: Optimizer, model: KGEModel,
                             skip_names: Optional[Set[str]] = None
                             ) -> Dict[str, np.ndarray]:
    """Key optimiser buffers by parameter name rather than object identity.

    ``skip_names`` excludes parameters whose state lives elsewhere — bucket
    parameters page their Adam/Adagrad slabs to per-bucket files, and pulling
    them all into the ``.npz`` would densify exactly what partitioning keeps
    out of memory.
    """
    name_by_id = {id(p): name for name, p in model.named_parameters()}
    flat: Dict[str, np.ndarray] = {}
    for key, buffers in optimizer.state.items():
        param_name = name_by_id.get(key)
        if param_name is None or (skip_names and param_name in skip_names):
            continue
        for buffer_name, value in buffers.items():
            if isinstance(value, np.ndarray):
                flat[f"{param_name}::{buffer_name}"] = value
            else:
                flat[f"{param_name}::{buffer_name}"] = np.asarray(value)
    return flat


def _restore_optimizer_state(optimizer: Optimizer, model: KGEModel,
                             flat: Dict[str, np.ndarray]) -> None:
    params_by_name = dict(model.named_parameters())
    for key, value in flat.items():
        param_name, _, buffer_name = key.partition("::")
        param = params_by_name.get(param_name)
        if param is None:
            continue
        state = optimizer._param_state(param)
        state[buffer_name] = value if value.ndim else value.item()


def save_checkpoint(path: str, model: KGEModel, optimizer: Optional[Optimizer] = None,
                    epoch: int = 0, losses: Optional[List[float]] = None,
                    extra_metadata: Optional[Dict[str, object]] = None) -> str:
    """Write a checkpoint to ``path`` (``.npz``); returns the path written.

    ``extra_metadata`` entries (must be JSON-serialisable) are merged into the
    metadata blob — the experiment runner stores the training config and
    experiment name there so a checkpoint can be resumed with validated
    hyperparameters.  Reserved keys (``model_spec``, ``epoch``, ...) cannot be
    overridden.
    """
    table, bucket_names = _partitioned_table(model)
    arrays: Dict[str, np.ndarray] = {}
    for name, param in model.named_parameters():
        if name in bucket_names:
            # Entity buckets never enter the npz: they are mirrored as
            # memory-bounded ``weights/entities.bucket<k>.npy`` files below.
            continue
        arrays[f"model::{name}"] = param.data.copy()
    if optimizer is not None:
        for name, value in _flatten_optimizer_state(
                optimizer, model, skip_names=bucket_names).items():
            arrays[f"optim::{name}"] = value
    try:
        spec_payload: Optional[Dict[str, object]] = spec_from_model(model).to_dict()
    except UnknownModelError:
        # Unregistered (e.g. ad-hoc experimental) models still checkpoint;
        # they just cannot be auto-reconstructed by ``model_from_checkpoint``.
        spec_payload = None
    metadata = dict(extra_metadata) if extra_metadata else {}
    if table is not None:
        metadata["partitioned"] = table.manifest()
    metadata.update({
        "model_spec": spec_payload,
        "model_config": model.config(),
        "epoch": int(epoch),
        "losses": list(losses) if losses is not None else [],
        "optimizer": type(optimizer).__name__ if optimizer is not None else None,
        "optimizer_lr": optimizer.lr if optimizer is not None else None,
        "optimizer_step_count": optimizer.step_count if optimizer is not None else 0,
    })
    arrays["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)
    if table is not None:
        # A partitioned checkpoint is only complete with its bucket files:
        # mirror them (one at a time, bounded memory) next to the npz.
        save_weight_files(directory, model)
    return path if path.endswith(".npz") else path + ".npz"


#: Checkpoint filename inside an ``sptransx run`` artifact directory.
ARTIFACT_CHECKPOINT = "checkpoint.npz"

#: Directory of per-parameter ``.npy`` weight files inside an artifact —
#: plain ``numpy.lib.format`` arrays, so they can be served memory-mapped
#: (``np.load(..., mmap_mode="r")``) without densifying into RAM.
ARTIFACT_WEIGHTS = "weights"


def save_weight_files(directory: str, model: KGEModel,
                      quantize: Optional[str] = None,
                      ann: Optional[str] = None,
                      ann_nprobe: Optional[int] = None) -> Dict[str, str]:
    """Write every parameter as ``<directory>/weights/<name>.npy``.

    The files duplicate the arrays already inside ``checkpoint.npz`` in a
    memory-mappable layout (npz members are compressed zip entries and cannot
    be mapped).  Returns ``{parameter_name: file_path}``.

    For a model backed by a :class:`~repro.nn.partitioned.PartitionedEmbedding`
    the entity buckets are written as ``weights/entities.bucket<k>.npy``
    (streamed file copies from the table's own storage — the full table never
    enters memory) together with the ``weights/partition.json`` manifest; all
    other parameters keep the flat ``<name>.npy`` layout.  Loaders treat a
    weights directory *without* a manifest as the legacy single-bucket dense
    layout, so pre-partitioning artifacts stay loadable unchanged.

    ``quantize`` (``"fp16"`` or ``"int8"``) additionally writes quantized
    twins of each bucket (``entities.bucket<k>.f16.npy`` / int8 codes plus
    per-row scales) beside the exact files and records the mode in the
    manifest — see :mod:`repro.nn.quantize`.  Requires a partitioned model.

    ``ann`` (``"ivf"``) builds an ANN index over the bucket files into
    ``<directory>/index/`` — per-bucket k-means centroids plus cluster-sorted
    row permutations and an ``index.json`` manifest; ``ann_nprobe`` pins the
    serving probe width (default: auto-chosen for recall@10 ≥ 0.95, see
    :func:`repro.ann.build_index_files`).  Also partitioned-only.
    """
    weights_dir = os.path.join(directory, ARTIFACT_WEIGHTS)
    os.makedirs(weights_dir, exist_ok=True)
    written: Dict[str, str] = {}
    table, bucket_names = _partitioned_table(model)
    if table is None and quantize is not None:
        raise ValueError(
            "quantize= requires a model with a partitioned entity table "
            "(train with partitions > 1)"
        )
    if table is None and ann is not None:
        raise ValueError(
            "ann= requires a model with a partitioned entity table "
            "(train with partitions > 1)"
        )
    if table is not None:
        table.flush()
        for k in range(table.n_partitions):
            source = os.path.join(table.directory, bucket_filename(k))
            target = os.path.join(weights_dir, bucket_filename(k))
            if os.path.abspath(source) != os.path.abspath(target):
                shutil.copyfile(source, target)
            written[f"entities.bucket{k}"] = target
        table.write_manifest(weights_dir)
        if quantize is not None:
            from repro.nn.quantize import quantize_weight_files

            entry = quantize_weight_files(weights_dir, quantize)
            for k, bucket in enumerate(entry["buckets"]):
                for name in bucket["files"]:
                    written[os.path.splitext(name)[0]] = os.path.join(
                        weights_dir, name)
        if ann is not None:
            from repro.ann import ARTIFACT_INDEX, INDEX_MANIFEST, build_index_files

            index_manifest = build_index_files(directory, kind=ann,
                                               nprobe=ann_nprobe)
            index_dir = os.path.join(directory, ARTIFACT_INDEX)
            written["index.manifest"] = os.path.join(index_dir, INDEX_MANIFEST)
            for bucket in index_manifest["buckets"]:
                for key in ("centroids", "assign"):
                    name = str(bucket[key])
                    written[f"index.{os.path.splitext(name)[0]}"] = os.path.join(
                        index_dir, name)
    for name, param in model.named_parameters():
        if name in bucket_names:
            continue
        path = os.path.join(weights_dir, f"{name}.npy")
        np.save(path, np.ascontiguousarray(param.data))
        written[name] = path
    return written


def resolve_checkpoint_path(path: str) -> str:
    """Resolve an artifact directory / bare path to the actual ``.npz`` file."""
    if os.path.isdir(path):
        candidate = os.path.join(path, ARTIFACT_CHECKPOINT)
        if not os.path.exists(candidate):
            raise FileNotFoundError(
                f"{path} is a directory but contains no {ARTIFACT_CHECKPOINT}; "
                "expected an `sptransx run` artifact directory or a .npz file"
            )
        return candidate
    if not os.path.exists(path):
        if os.path.exists(path + ".npz"):
            return path + ".npz"
        raise FileNotFoundError(path)
    return path


def read_checkpoint_metadata(path: str) -> Dict[str, object]:
    """Read only the JSON metadata blob of a checkpoint.

    Loads a single npz member, so the cost is independent of model size —
    the memory-mapped serving path uses this to learn the model spec without
    pulling any parameter array into RAM.
    """
    with np.load(resolve_checkpoint_path(path), allow_pickle=False) as data:
        return json.loads(bytes(data["metadata"]).decode("utf-8"))


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    ``path`` may also name an experiment artifact *directory* (the layout
    ``sptransx run`` writes); the checkpoint inside it is loaded, which is
    what lets :func:`load_model` and the serving engine warm-load an artifact
    without knowing its internal layout.
    """
    path = resolve_checkpoint_path(path)
    with np.load(path, allow_pickle=False) as data:
        metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
        model_state = {key[len("model::"):]: data[key] for key in data.files
                       if key.startswith("model::")}
        optimizer_state = {key[len("optim::"):]: data[key] for key in data.files
                           if key.startswith("optim::")}
    return Checkpoint(
        model_state=model_state,
        optimizer_state=optimizer_state,
        epoch=int(metadata.get("epoch", 0)),
        losses=[float(x) for x in metadata.get("losses", [])],
        metadata=metadata,
        source_path=os.path.abspath(path),
    )


def model_from_checkpoint(checkpoint: Checkpoint, rng=0) -> KGEModel:
    """Rebuild the exact model a checkpoint was written with and load its weights.

    Construction goes solely through :meth:`Checkpoint.spec` →
    :func:`repro.registry.build_model`, so every recorded hyperparameter —
    SpMM backend, dissimilarity, relation dimension — is restored faithfully
    rather than falling back to constructor defaults.

    Partitioned checkpoints are rebuilt under
    :func:`repro.nn.init.skip_init` (nothing to initialise — the entity
    buckets attach to the ``weights/`` files next to the checkpoint and fault
    in lazily; the remaining parameters load from the npz as usual).
    """
    spec = checkpoint.spec()
    if checkpoint.partition_manifest is not None:
        from repro.nn.init import skip_init

        with skip_init():
            model = build_model(spec, rng=rng)
    else:
        model = build_model(spec, rng=rng)
    restore_into(checkpoint, model)
    return model


def load_model(path: str, rng=0, mmap: bool = False,
               quantized: Optional[object] = None) -> KGEModel:
    """One-call ``path → ready model`` (what the serving engine and CLI use).

    With ``mmap=True`` and an artifact directory carrying a ``weights/``
    directory, the model is constructed without initialising its parameters
    (:func:`repro.nn.init.skip_init`) and each parameter is attached to its
    on-disk ``.npy`` file via ``np.load(..., mmap_mode="r")`` — the embedding
    tables are paged in lazily by the OS and are never densified into RAM.
    The returned model is read-only: training or ``normalize_parameters``
    would write through the map and must use the regular loader.

    ``quantized`` (``"fp16"``/``"int8"``/``"auto"``) serves a partitioned
    model from the quantized bucket files written with
    ``save_weight_files(..., quantize=...)`` — resident bucket bytes drop 2–4×
    and the serving engine rescores top candidates exactly from the float64
    originals.  Requires ``mmap=True`` (the quantized files live in the
    weights directory).
    """
    if quantized not in (None, False) and not mmap:
        raise ValueError(
            "quantized serving reads the weights/ directory; load with "
            "mmap=True (or drop quantized=)"
        )
    if mmap:
        checkpoint_file = resolve_checkpoint_path(path)
        weights_dir = os.path.join(os.path.dirname(checkpoint_file),
                                   ARTIFACT_WEIGHTS)
        if not os.path.isdir(weights_dir):
            raise FileNotFoundError(
                f"no {ARTIFACT_WEIGHTS}/ directory next to {checkpoint_file}; "
                "memory-mapped loading needs an artifact written with weight "
                "files (re-run `sptransx run`, or load with mmap=False)"
            )
        return _model_from_weight_files(checkpoint_file, weights_dir, rng=rng,
                                        quantized=quantized)
    return model_from_checkpoint(load_checkpoint(path), rng=rng)


def _model_from_weight_files(checkpoint_file: str, weights_dir: str,
                             rng=0, quantized: Optional[object] = None
                             ) -> KGEModel:
    """Build a model whose parameters are read-only maps of on-disk arrays.

    With a ``partition.json`` manifest present, the entity buckets attach to
    their ``entities.bucket<k>.npy`` files and fault in lazily (LRU-bounded —
    stricter than mmap: address space, not just RSS, stays bounded); the
    remaining parameters are memory-mapped ``<name>.npy`` files as before.
    Without a manifest the directory is the legacy single-bucket dense
    layout and every parameter is mapped.
    """
    from repro.nn.init import skip_init

    metadata = read_checkpoint_metadata(checkpoint_file)
    spec = Checkpoint(model_state={}, metadata=metadata).spec()
    with skip_init():
        model = build_model(spec, rng=rng)
    bucket_names: Set[str] = set()
    if os.path.exists(os.path.join(weights_dir, PARTITION_MANIFEST)):
        table, bucket_names = _partitioned_table(model)
        if table is None:
            raise ValueError(
                f"{weights_dir} carries a {PARTITION_MANIFEST} but the "
                "checkpointed spec does not describe a partitioned model"
            )
        table.attach_storage(weights_dir, read_only=True, quantized=quantized)
    elif quantized not in (None, False, "auto", True):
        raise ValueError(
            f"quantized={quantized!r} requires a partitioned weights "
            f"directory (no {PARTITION_MANIFEST} in {weights_dir})"
        )
    for name, param in model.named_parameters():
        if name in bucket_names:
            continue
        weight_path = os.path.join(weights_dir, f"{name}.npy")
        if not os.path.exists(weight_path):
            raise FileNotFoundError(
                f"weight file missing for parameter {name!r}: {weight_path}"
            )
        mapped = np.load(weight_path, mmap_mode="r")
        if mapped.shape != param.data.shape or mapped.dtype != param.data.dtype:
            raise ValueError(
                f"weight file {weight_path} has shape {mapped.shape} / dtype "
                f"{mapped.dtype}, model expects {param.data.shape} / {param.data.dtype}"
            )
        param.data = mapped
    return model


def restore_into(checkpoint: Checkpoint, model: KGEModel,
                 optimizer: Optional[Optimizer] = None, strict: bool = True) -> None:
    """Load a checkpoint's state into an existing model (and optimiser).

    ``strict`` additionally verifies that the checkpoint was written by the
    same model class with the same vocabulary sizes and embedding dimension.
    """
    if strict:
        saved = checkpoint.metadata.get("model_config", {})
        current = model.config()
        for key in ("model", "n_entities", "n_relations", "embedding_dim"):
            if key in saved and saved[key] != current.get(key):
                raise ValueError(
                    f"checkpoint/model mismatch for {key!r}: "
                    f"checkpoint has {saved[key]!r}, model has {current.get(key)!r}"
                )
    if checkpoint.partition_manifest is not None:
        _restore_partitioned(checkpoint, model, strict=strict)
    else:
        model.load_state_dict(checkpoint.model_state)
    if optimizer is not None:
        if checkpoint.optimizer_state:
            _restore_optimizer_state(optimizer, model, checkpoint.optimizer_state)
        if checkpoint.metadata.get("optimizer_lr"):
            optimizer.set_lr(float(checkpoint.metadata["optimizer_lr"]))
        # Schedulers key off the global step counter; without this a resumed
        # run (notably stateless SGD) would restart any warmup/decay schedule
        # from step zero.
        optimizer._step_count = int(checkpoint.metadata.get(
            "optimizer_step_count", optimizer._step_count))


def _restore_partitioned(checkpoint: Checkpoint, model: KGEModel,
                         strict: bool = True) -> None:
    """Restore a partitioned checkpoint: npz params + attached bucket files.

    The npz holds every parameter except the entity buckets; those attach
    (read-only, lazily faulted) to the ``weights/`` directory next to the
    checkpoint file.  ``strict`` verifies the npz covers exactly the
    non-bucket parameters.
    """
    table, bucket_names = _partitioned_table(model)
    if table is None:
        raise ValueError(
            "checkpoint was written by a partitioned model but the target "
            "model has no partitioned table; rebuild it with the checkpoint's "
            "spec (model_from_checkpoint does this automatically)"
        )
    own = {name: param for name, param in model.named_parameters()
           if name not in bucket_names}
    state = checkpoint.model_state
    missing = set(own) - set(state)
    unexpected = set(state) - set(own)
    if strict and (missing or unexpected):
        raise KeyError(
            f"state_dict mismatch: missing={sorted(missing)}, "
            f"unexpected={sorted(unexpected)}"
        )
    for name, param in own.items():
        if name not in state:
            continue
        value = np.asarray(state[name], dtype=np.float64)
        if value.shape != tuple(param.shape):
            raise ValueError(
                f"shape mismatch for {name!r}: expected {tuple(param.shape)}, "
                f"got {value.shape}"
            )
        param.data = np.array(value, copy=True)
    if checkpoint.source_path is None:
        raise ValueError(
            "partitioned checkpoint has no source path; load it with "
            "load_checkpoint(path) so the weights/ directory can be located"
        )
    weights_dir = os.path.join(os.path.dirname(checkpoint.source_path),
                               ARTIFACT_WEIGHTS)
    table.attach_storage(weights_dir, read_only=True)
