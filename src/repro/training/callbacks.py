"""Training callbacks: history recording, early stopping, LR scheduling, evaluation."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.utils.logging import get_logger

logger = get_logger("training.callbacks")


class Callback:
    """Base callback with no-op hooks."""

    def on_train_begin(self, trainer) -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        """Called after every epoch with that epoch's :class:`EpochStats`."""

    def on_train_end(self, trainer, result) -> None:
        """Called once after the last epoch with the :class:`TrainingResult`."""


class HistoryCallback(Callback):
    """Record the loss curve (used by the Figure-9 benchmark)."""

    def __init__(self) -> None:
        self.losses: List[float] = []
        self.times: List[float] = []

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        self.losses.append(stats.loss)
        self.times.append(stats.total_time)


class EarlyStopping(Callback):
    """Stop training when the loss stops improving.

    Parameters
    ----------
    patience:
        Number of non-improving epochs tolerated before stopping.
    min_delta:
        Minimum decrease that counts as an improvement.
    restore_best:
        Snapshot the model parameters whenever the loss improves and restore
        that snapshot when training ends, so the model leaves the loop at its
        best epoch rather than ``patience`` epochs past it.  The restore
        happens on *every* train end, including runs that exhaust their epoch
        budget without triggering the stop.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0,
                 restore_best: bool = False) -> None:
        if patience < 0:
            raise ValueError(f"patience must be non-negative, got {patience}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.restore_best = bool(restore_best)
        self.best: Optional[float] = None
        self.best_epoch: Optional[int] = None
        self.best_state: Optional[Dict] = None
        self.bad_epochs = 0
        self.stopped_epoch: Optional[int] = None

    def on_train_begin(self, trainer) -> None:
        self.best = None
        self.best_epoch = None
        self.best_state = None
        self.bad_epochs = 0
        self.stopped_epoch = None

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        if self.best is None or stats.loss < self.best - self.min_delta:
            self.best = stats.loss
            self.best_epoch = epoch
            self.bad_epochs = 0
            if self.restore_best:
                self.best_state = {name: value.copy() for name, value
                                   in trainer.model.state_dict().items()}
            return
        self.bad_epochs += 1
        if self.bad_epochs > self.patience:
            self.stopped_epoch = epoch
            trainer.request_stop()

    def on_train_end(self, trainer, result) -> None:
        if self.restore_best and self.best_state is not None:
            trainer.model.load_state_dict(self.best_state)
            logger.info("restored best parameters from epoch %s (loss=%.6f)",
                        self.best_epoch, self.best)


class LRSchedulerCallback(Callback):
    """Step a learning-rate scheduler after every epoch (Appendix-E protocol)."""

    def __init__(self, scheduler) -> None:
        self.scheduler = scheduler

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        from repro.optim.lr_scheduler import ReduceLROnPlateau

        if isinstance(self.scheduler, ReduceLROnPlateau):
            self.scheduler.step(stats.loss)
        else:
            self.scheduler.step()


class EvaluationCallback(Callback):
    """Run filtered link-prediction evaluation every ``every`` epochs.

    Parameters
    ----------
    dataset:
        Dataset providing the evaluation triples and the filter set.
    every:
        Evaluation period in epochs.
    split:
        ``"valid"`` or ``"test"``.
    ks:
        Hits@k cutoffs to record.
    """

    def __init__(self, dataset, every: int = 10, split: str = "valid",
                 ks=(1, 3, 10)) -> None:
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        if split not in ("valid", "test"):
            raise ValueError(f"split must be 'valid' or 'test', got {split!r}")
        self.dataset = dataset
        self.every = int(every)
        self.split = split
        self.ks = tuple(ks)
        self.history: List[Dict[str, float]] = []

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        if (epoch + 1) % self.every != 0:
            return
        from repro.evaluation.link_prediction import evaluate_link_prediction

        triples = (self.dataset.split.valid if self.split == "valid"
                   else self.dataset.split.test)
        if triples.shape[0] == 0:
            return
        result = evaluate_link_prediction(trainer.model, triples,
                                          known_triples=self.dataset.known_triples(),
                                          ks=self.ks)
        record = {"epoch": float(epoch), "mrr": result.mrr, "mr": result.mean_rank}
        record.update({f"hits@{k}": v for k, v in result.hits.items()})
        self.history.append(record)
        logger.info("eval@epoch %d: %s", epoch, record)
