"""Training configuration."""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, fields, asdict
from typing import Dict, Mapping, Optional


@dataclass
class TrainingConfig:
    """Hyperparameters of one training run.

    Defaults follow the paper's experimental setting (Section 5.3): learning
    rate 4e-4, margin 0.5, L2 dissimilarity, one pre-generated negative per
    positive, Adam optimiser.

    Attributes
    ----------
    epochs:
        Number of passes over the training split.
    batch_size:
        Positives per minibatch.
    learning_rate:
        Optimiser learning rate.
    margin:
        Margin of the ranking loss.
    optimizer:
        ``"adam"``, ``"sgd"``, or ``"adagrad"``.
    normalize_every:
        Call ``model.normalize_parameters()`` every this many epochs
        (0 disables the maintenance step).
    regenerate_negatives:
        Resample negatives each epoch instead of the paper's pre-generated
        protocol.
    shuffle:
        Shuffle triples every epoch.
    seed:
        Seed for batching and negative sampling.
    log_every:
        Emit a log record every this many epochs (0 disables logging).
    sparse_grads:
        Route gradients through the row-sparse pipeline
        (``repro.sparse.rowsparse``): the SpMM backward emits only the
        embedding rows the batch touched and the optimizer scatter-updates
        just those rows, so step cost scales with the batch instead of the
        vocabulary.  Exact for SGD/Adagrad; lazy (SparseAdam-style) for Adam.
        Off by default — models without a sparse path ignore it.  The
        :class:`~repro.training.trainer.Trainer` applies this flag to the
        model in both directions, overriding any earlier
        ``set_sparse_grads`` call.
    num_workers:
        Data-parallel worker processes.  ``1`` (default) trains in-process
        with :class:`~repro.training.trainer.Trainer`; ``N > 1`` shards every
        global batch across ``N`` OS processes that exchange row-sparse
        gradients (:class:`~repro.training.multiprocess.MultiprocessTrainer`)
        and follow the single-worker trajectory.
    sanitize:
        Enable the autograd sanitizer (:func:`repro.autograd.sanitize`) for
        the duration of the run: every tape op is audited for NaN/Inf
        outputs, silent dtype widening, and gradient/output shape agreement,
        with the offending op named on failure.  Off by default; the CI
        smoke jobs turn it on via ``sptransx run --sanitize``.
    """

    epochs: int = 100
    batch_size: int = 32768
    learning_rate: float = 4e-4
    margin: float = 0.5
    optimizer: str = "adam"
    normalize_every: int = 1
    regenerate_negatives: bool = False
    shuffle: bool = True
    seed: Optional[int] = 0
    log_every: int = 0
    sparse_grads: bool = False
    num_workers: int = 1
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.margin < 0:
            raise ValueError(f"margin must be non-negative, got {self.margin}")
        if self.optimizer not in ("adam", "sgd", "adagrad"):
            raise ValueError(
                f"optimizer must be 'adam', 'sgd', or 'adagrad', got {self.optimizer!r}"
            )
        if self.normalize_every < 0:
            raise ValueError(f"normalize_every must be non-negative, got {self.normalize_every}")
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for logging and EXPERIMENTS.md records."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TrainingConfig":
        """Inverse of :meth:`to_dict` with schema validation.

        ``TrainingConfig(**payload)`` raises a raw ``TypeError`` naming no
        field when the payload carries a stale or misspelled key; this
        constructor instead rejects unknown keys with the offending names and
        a closest-match suggestion.  Used by experiment-spec loading and
        checkpoint restore, where payloads come from JSON written by other
        (possibly older or newer) versions of the library.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"training config must be a mapping, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            hints = []
            for key in unknown:
                close = difflib.get_close_matches(key, known, n=1)
                hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
            raise ValueError(
                f"unknown training config key(s): {', '.join(hints)}; "
                f"valid keys: {sorted(known)}"
            )
        return cls(**{key: payload[key] for key in payload})

    def replace(self, **kwargs) -> "TrainingConfig":
        """Return a copy with the given fields overridden."""
        data = self.to_dict()
        data.update(kwargs)
        return TrainingConfig(**data)
