"""Simulated data-parallel (DDP-style) training.

The paper's Appendix F wraps the sparse TransE model in PyTorch DDP and scales
to 64 A100 GPUs on the COVID-19 knowledge graph.  Multi-GPU hardware is not
available here, so this module provides the closest synthetic equivalent that
exercises the same code path:

* **functional equivalence** — each global batch is sharded across ``W``
  logical workers, every worker computes gradients on its shard against a
  shared parameter copy, gradients are averaged (the all-reduce), and one
  update is applied.  The resulting parameter trajectory is identical to
  large-batch single-worker training, which is exactly what DDP guarantees.
* **performance model** — per-step wall-clock is estimated as the slowest
  worker's measured compute time plus a ring-all-reduce cost
  ``2·(W−1)/W · bytes / bandwidth + 2·(W−1) · latency``, the standard α–β
  model.  The Table-9 benchmark reports these estimates for 4-64 workers.

For *measured* data parallelism — real OS processes exchanging row-sparse
gradients — see :mod:`repro.training.multiprocess`; this module stays as the
modeled baseline ``benchmarks/bench_distributed.py`` compares against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.batching import BatchIterator, TripletBatch
from repro.data.dataset import KGDataset
from repro.data.negative_sampling import UniformNegativeSampler
from repro.losses.margin import MarginRankingLoss
from repro.models.base import KGEModel
from repro.training.config import TrainingConfig
from repro.training.trainer import build_optimizer
from repro.utils.seeding import new_rng


@dataclass(frozen=True)
class CommunicationModel:
    """α–β cost model of a ring all-reduce across ``W`` workers.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Per-link bandwidth (defaults to a NVLink/IB-class 25 GB/s).
    latency_s:
        Per-message latency.
    """

    bandwidth_bytes_per_s: float = 25e9
    latency_s: float = 15e-6

    def allreduce_time(self, n_workers: int, nbytes: int) -> float:
        """Estimated seconds to all-reduce ``nbytes`` across ``n_workers``."""
        if n_workers <= 1:
            return 0.0
        volume = 2.0 * (n_workers - 1) / n_workers * nbytes
        return volume / self.bandwidth_bytes_per_s + 2.0 * (n_workers - 1) * self.latency_s


@dataclass
class ScalingResult:
    """Outcome of one simulated multi-worker run."""

    n_workers: int
    epochs: int
    measured_compute_time: float
    estimated_communication_time: float
    losses: List[float] = field(default_factory=list)

    @property
    def estimated_total_time(self) -> float:
        """Simulated wall-clock: parallel compute plus all-reduce overhead."""
        return self.measured_compute_time + self.estimated_communication_time

    def to_dict(self) -> Dict[str, float]:
        return {
            "n_workers": float(self.n_workers),
            "epochs": float(self.epochs),
            "compute_time_s": self.measured_compute_time,
            "communication_time_s": self.estimated_communication_time,
            "total_time_s": self.estimated_total_time,
        }


class DataParallelTrainer:
    """Shard batches over logical workers, average gradients, apply one update.

    Parameters
    ----------
    model:
        The (shared) model replica.
    dataset:
        Training data; each global batch is split evenly across workers.
    n_workers:
        Number of logical workers (GPUs in the paper's experiment).
    config:
        Training hyperparameters; ``batch_size`` is the *global* batch size.
    comm_model:
        Communication cost model for the wall-clock estimate.
    """

    def __init__(self, model: KGEModel, dataset: KGDataset, n_workers: int,
                 config: Optional[TrainingConfig] = None,
                 comm_model: Optional[CommunicationModel] = None) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.model = model
        self.dataset = dataset
        self.n_workers = int(n_workers)
        self.config = config if config is not None else TrainingConfig()
        if hasattr(model, "set_sparse_grads"):
            model.set_sparse_grads(self.config.sparse_grads)
        self.comm_model = comm_model if comm_model is not None else CommunicationModel()
        self.optimizer = build_optimizer(self.config.optimizer, model,
                                         self.config.learning_rate)
        self.criterion = MarginRankingLoss(margin=self.config.margin)
        rng = new_rng(self.config.seed)
        self.batches = BatchIterator(
            dataset,
            batch_size=self.config.batch_size,
            sampler=UniformNegativeSampler(dataset.n_entities, rng=rng),
            shuffle=self.config.shuffle,
            regenerate_negatives=self.config.regenerate_negatives,
            rng=rng,
        )
        #: Dense-path all-reduce volume (full parameter bytes).  An upper
        #: bound only: each step charges the communication model for the
        #: bytes actually exchanged, which shrink under ``sparse_grads``.
        self.gradient_nbytes = sum(p.nbytes for p in model.parameters())

    # ------------------------------------------------------------------ #
    def _shard(self, batch: TripletBatch) -> List[TripletBatch]:
        """Split a global batch into per-worker shards (some may be empty)."""
        shards: List[TripletBatch] = []
        pos_parts = np.array_split(batch.positives, self.n_workers)
        neg_parts = np.array_split(batch.negatives, self.n_workers)
        for pos, neg in zip(pos_parts, neg_parts):
            if pos.shape[0] == 0:
                continue
            shards.append(TripletBatch(positives=pos, negatives=neg))
        return shards

    def train_step(self, batch: TripletBatch) -> tuple[float, float, float]:
        """One data-parallel step.

        Returns
        -------
        (loss, slowest_worker_compute_seconds, allreduce_seconds_estimate)
        """
        shards = self._shard(batch)
        params = list(self.model.parameters())
        worker_times: List[float] = []
        losses: List[float] = []
        # Shard gradients accumulate directly on the parameters through
        # ``Tensor.accumulate_grad``, which keeps them row-sparse as long as
        # every shard contributes a row-sparse gradient; reading ``.grad``
        # eagerly here would densify each shard and forfeit the sparse path.
        # Simulation caveat: the cross-shard merge rides inside the timed
        # region of later shards, and the sparse all-reduce below is charged
        # for the merged rows (a lower bound on per-worker messages) — both
        # approximations of a real DDP exchange, like the dense-bucket model
        # before it.
        self.model.zero_grad()
        for shard in shards:
            start = time.perf_counter()
            loss = self.model.loss(shard, self.criterion)
            loss.backward()
            worker_times.append(time.perf_counter() - start)
            losses.append(float(loss.item()))
        # All-reduce: average the accumulated gradients, install, step once.
        n_shards = max(len(shards), 1)
        grad_nbytes = 0
        for param in params:
            sparse = param.sparse_grad
            if sparse is not None:
                param.grad = sparse.scale(1.0 / n_shards)
                grad_nbytes += sparse.nbytes
            elif param.grad is not None:
                param.grad /= n_shards
                grad_nbytes += param.grad.nbytes
            else:
                param.grad = np.zeros_like(param.data)
                grad_nbytes += param.nbytes
        self.optimizer.step()
        compute = max(worker_times) if worker_times else 0.0
        # Charge the all-reduce for the bytes actually exchanged: full dense
        # buffers, or just the packed rows when the gradients stayed sparse.
        comm = self.comm_model.allreduce_time(self.n_workers, grad_nbytes)
        return float(np.mean(losses)) if losses else float("nan"), compute, comm

    def train(self, epochs: Optional[int] = None) -> ScalingResult:
        """Run the simulated data-parallel training loop."""
        epochs = epochs if epochs is not None else self.config.epochs
        total_compute = 0.0
        total_comm = 0.0
        losses: List[float] = []
        for epoch in range(epochs):
            epoch_losses: List[float] = []
            for batch in self.batches:
                loss, compute, comm = self.train_step(batch)
                total_compute += compute
                total_comm += comm
                epoch_losses.append(loss)
            if self.config.normalize_every and (epoch + 1) % self.config.normalize_every == 0:
                self.model.normalize_parameters()
            losses.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        return ScalingResult(
            n_workers=self.n_workers,
            epochs=epochs,
            measured_compute_time=total_compute,
            estimated_communication_time=total_comm,
            losses=losses,
        )


def scaling_sweep(model_factory, dataset: KGDataset, worker_counts,
                  config: Optional[TrainingConfig] = None,
                  comm_model: Optional[CommunicationModel] = None) -> List[ScalingResult]:
    """Run the Appendix-F style sweep over worker counts.

    ``model_factory`` must return a freshly initialised model so every run
    starts from the same point (pass a seeded constructor).
    """
    results = []
    for n_workers in worker_counts:
        model = model_factory()
        trainer = DataParallelTrainer(model, dataset, n_workers,
                                      config=config, comm_model=comm_model)
        results.append(trainer.train())
    return results
