"""Single-process training loop with per-phase timing.

The paper's headline numbers are wall-clock breakdowns of forward, backward,
and optimiser-step time (Table 1, Figure 8) plus total training time
(Figure 7); :class:`Trainer` measures exactly those phases with
``time.perf_counter`` so the benchmark harness can regenerate the tables for
any model / backend combination.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd.sanitizer import sanitize
from repro.data.batching import BatchIterator, TripletBatch
from repro.data.dataset import KGDataset
from repro.data.negative_sampling import NegativeSampler, UniformNegativeSampler
from repro.losses.margin import MarginRankingLoss
from repro.models.base import KGEModel
from repro.optim import SGD, Adagrad, Adam, Optimizer
from repro.training.config import TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.seeding import new_rng

logger = get_logger("training")


@dataclass
class EpochStats:
    """Timing and loss statistics of one epoch."""

    epoch: int
    loss: float
    forward_time: float
    backward_time: float
    step_time: float
    data_time: float

    @property
    def total_time(self) -> float:
        """Wall-clock of the epoch (sum of the tracked phases)."""
        return self.forward_time + self.backward_time + self.step_time + self.data_time


@dataclass
class TrainingResult:
    """Aggregate outcome of a training run."""

    epochs: List[EpochStats] = field(default_factory=list)

    @property
    def losses(self) -> List[float]:
        """Per-epoch training losses (the Figure-9 loss curve)."""
        return [e.loss for e in self.epochs]

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("nan")

    @property
    def forward_time(self) -> float:
        return sum(e.forward_time for e in self.epochs)

    @property
    def backward_time(self) -> float:
        return sum(e.backward_time for e in self.epochs)

    @property
    def step_time(self) -> float:
        return sum(e.step_time for e in self.epochs)

    @property
    def data_time(self) -> float:
        return sum(e.data_time for e in self.epochs)

    @property
    def total_time(self) -> float:
        return sum(e.total_time for e in self.epochs)

    def breakdown(self) -> Dict[str, float]:
        """Forward/backward/step/data split in seconds (Table 1 / Figure 8 rows)."""
        return {
            "forward": self.forward_time,
            "backward": self.backward_time,
            "step": self.step_time,
            "data": self.data_time,
            "total": self.total_time,
        }


def replay_epochs(batches, n: int) -> None:
    """Consume ``n`` epochs of a batch source without training on them.

    Replays exactly the random draws those epochs would have made — epoch
    permutations and negative corruption — which is the resume fast-forward
    contract shared by :class:`Trainer` and every multiprocess replica: any
    change to how an epoch's randomness is consumed must keep this single
    replay path equivalent to real iteration.
    """
    for _ in range(max(int(n), 0)):
        for _ in batches:
            pass


def build_optimizer(name: str, model: KGEModel, lr: float) -> Optimizer:
    """Instantiate the optimiser named in a :class:`TrainingConfig`."""
    params = list(model.parameters())
    if name == "adam":
        return Adam(params, lr=lr)
    if name == "sgd":
        return SGD(params, lr=lr)
    if name == "adagrad":
        return Adagrad(params, lr=lr)
    raise ValueError(f"unknown optimizer {name!r}")


class Trainer:
    """Train one model on one dataset with the paper's protocol.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.KGEModel` (sparse or dense family).
    dataset:
        Training data.
    config:
        Hyperparameters; defaults reproduce the paper's setting.
    optimizer:
        Optional pre-built optimiser (overrides ``config.optimizer``).
    criterion:
        Loss module; defaults to margin-ranking with ``config.margin``.
    sampler:
        Negative sampler; defaults to uniform corruption.
    callbacks:
        Sequence of :class:`~repro.training.callbacks.Callback` objects.
    batches:
        Optional pre-built batch source: any re-iterable yielding
        :class:`~repro.data.batching.TripletBatch` per epoch (an in-memory
        :class:`~repro.data.batching.BatchIterator`, a
        :class:`~repro.data.streaming.StreamingBatchIterator` over an SQLite
        store, or anything custom).  When given, ``dataset`` may be ``None``
        — the trainer then never touches a materialised triple array, which
        is what makes out-of-core training possible.
    """

    def __init__(
        self,
        model: KGEModel,
        dataset: Optional[KGDataset] = None,
        config: Optional[TrainingConfig] = None,
        optimizer: Optional[Optimizer] = None,
        criterion=None,
        sampler: Optional[NegativeSampler] = None,
        callbacks: Optional[Sequence] = None,
        batches=None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config if config is not None else TrainingConfig()
        # The config owns the gradient-path choice: apply it both ways so a
        # model reused across trainers does not keep a stale sparse setting.
        if hasattr(model, "set_sparse_grads"):
            model.set_sparse_grads(self.config.sparse_grads)
        if self.config.sanitize:
            sanitize(True)
        self.optimizer = optimizer if optimizer is not None else build_optimizer(
            self.config.optimizer, model, self.config.learning_rate
        )
        # Partition-backed models attach the optimiser to their embedding
        # table so per-bucket optimiser state pages in and out with its
        # bucket; a no-op for everything else.
        if hasattr(model, "bind_optimizer"):
            model.bind_optimizer(self.optimizer)
        self.criterion = criterion if criterion is not None else MarginRankingLoss(
            margin=self.config.margin
        )
        if batches is not None:
            self.batches = batches
            self.sampler = sampler if sampler is not None else getattr(
                batches, "sampler", None)
        else:
            if dataset is None:
                raise ValueError(
                    "Trainer needs either a dataset or a pre-built `batches` source"
                )
            rng = new_rng(self.config.seed)
            self.sampler = sampler if sampler is not None else UniformNegativeSampler(
                dataset.n_entities, rng=rng
            )
            self.batches = BatchIterator(
                dataset,
                batch_size=self.config.batch_size,
                sampler=self.sampler,
                shuffle=self.config.shuffle,
                regenerate_negatives=self.config.regenerate_negatives,
                rng=rng,
            )
        self.callbacks = list(callbacks) if callbacks else []
        self.stop_requested = False

    # ------------------------------------------------------------------ #
    def train_step(self, batch: TripletBatch) -> EpochStats:
        """One forward/backward/step cycle on a single batch (timed)."""
        t0 = time.perf_counter()
        loss = self.model.loss(batch, self.criterion)
        t1 = time.perf_counter()
        self.optimizer.zero_grad()
        loss.backward()
        t2 = time.perf_counter()
        self.optimizer.step()
        t3 = time.perf_counter()
        return EpochStats(
            epoch=-1,
            loss=float(loss.item()),
            forward_time=t1 - t0,
            backward_time=t2 - t1,
            step_time=t3 - t2,
            data_time=0.0,
        )

    def train_epoch(self, epoch: int) -> EpochStats:
        """One pass over the training split."""
        forward = backward = step = data = 0.0
        losses: List[float] = []
        batch_start = time.perf_counter()
        for batch in self.batches:
            data += time.perf_counter() - batch_start
            stats = self.train_step(batch)
            losses.append(stats.loss)
            forward += stats.forward_time
            backward += stats.backward_time
            step += stats.step_time
            batch_start = time.perf_counter()
        if self.config.normalize_every and (epoch + 1) % self.config.normalize_every == 0:
            self.model.normalize_parameters()
        return EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            forward_time=forward,
            backward_time=backward,
            step_time=step,
            data_time=data,
        )

    def skip_epochs(self, n: int) -> None:
        """Fast-forward the data pipeline past ``n`` epochs without training.

        This is what makes a resumed run continue the *same* trajectory as an
        uninterrupted one: restoring model and optimiser state alone still
        leaves the batch and negative streams rewound to epoch zero.
        """
        replay_epochs(self.batches, n)

    def train(self, epochs: Optional[int] = None,
              start_epoch: int = 0) -> TrainingResult:
        """Run the full training loop and return per-epoch statistics.

        ``start_epoch`` offsets the epoch numbering (and the
        ``normalize_every`` phase) when resuming from a checkpoint; call
        :meth:`skip_epochs` first to fast-forward the data pipeline.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        result = TrainingResult()
        self.model.train()
        for callback in self.callbacks:
            callback.on_train_begin(self)
        for epoch in range(start_epoch, start_epoch + epochs):
            stats = self.train_epoch(epoch)
            result.epochs.append(stats)
            if self.config.log_every and (epoch + 1) % self.config.log_every == 0:
                logger.info("epoch %d: loss=%.6f time=%.3fs", epoch, stats.loss,
                            stats.total_time)
            for callback in self.callbacks:
                callback.on_epoch_end(self, epoch, stats)
            if self.stop_requested:
                break
        for callback in self.callbacks:
            callback.on_train_end(self, result)
        return result

    def request_stop(self) -> None:
        """Ask the loop to stop after the current epoch (used by early stopping)."""
        self.stop_requested = True
