"""True multiprocess data-parallel training with row-sparse all-reduce.

The paper's Appendix F wraps sparse TransE in PyTorch DDP across 64 GPUs.
:class:`~repro.training.distributed.DataParallelTrainer` *simulates* that run
(sequential shard execution, α–β-modeled communication); this module executes
it: ``N`` OS processes each hold a full model replica, every global batch is
sharded across them, and the shard gradients — kept row-sparse so the
exchanged volume is proportional to the rows the batch touched, not the
vocabulary — are reduced at rank 0 and broadcast back.  Every replica then
applies the identical optimiser step, so the replicas stay bit-for-bit in
sync without ever exchanging parameters, exactly the DDP invariant.

Batch lockstep needs no coordination: each replica builds its own batch
pipeline from the same picklable description (seeded shuffles, seeded
samplers), so all of them materialise the same global batch at every step and
deterministically take their own ``np.array_split`` shard of it.

The α–β :class:`~repro.training.distributed.CommunicationModel` is retained
as the *modeled* baseline: results report measured exchange wall-clock next
to what the cost model predicts for the same byte volume
(``benchmarks/bench_distributed.py`` prints the comparison).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.sanitizer import sanitize
from repro.data.batching import TripletBatch
from repro.losses.margin import MarginRankingLoss
from repro.models.base import KGEModel
from repro.sparse.rowsparse import RowSparseGrad
from repro.training.config import TrainingConfig
from repro.training.distributed import CommunicationModel
from repro.training.trainer import (
    EpochStats,
    TrainingResult,
    build_optimizer,
    replay_epochs,
)
from repro.utils.logging import get_logger

logger = get_logger("training.multiprocess")

#: A zero-argument callable returning a *fresh* re-iterable batch source.
#: Called once per process, after fork, so SQLite connections and other
#: unshareable handles are never inherited across processes.
BatchFactory = Callable[[], object]


@dataclass
class MultiprocessResult(TrainingResult):
    """Outcome of a multiprocess data-parallel run.

    Extends :class:`~repro.training.trainer.TrainingResult` (so artifact /
    history writing works unchanged) with the distributed measurements the
    scaling benchmark reports.
    """

    n_workers: int = 1
    steps: int = 0
    #: Measured wall-clock rank 0 spent exchanging gradients (recv + merge +
    #: broadcast) — the quantity the α–β model tries to predict.
    comm_time: float = 0.0
    #: α–β estimate for the same exchanged byte volume.
    modeled_comm_time: float = 0.0
    #: Total bytes of merged gradient broadcast per run.
    allreduce_nbytes: int = 0
    #: Sum over steps of the slowest replica's compute time (the quantity
    #: comparable to ``ScalingResult.measured_compute_time``).
    slowest_compute_time: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "n_workers": float(self.n_workers),
            "steps": float(self.steps),
            "compute_time_s": self.slowest_compute_time,
            "measured_comm_time_s": self.comm_time,
            "modeled_comm_time_s": self.modeled_comm_time,
            "allreduce_mb": self.allreduce_nbytes / 1e6,
            "total_time_s": self.total_time,
            "final_loss": self.final_loss,
        }


# --------------------------------------------------------------------- #
# Gradient wire format: per parameter either None, ("rs", indices, values)
# or ("dense", array).  Scaling by shard_rows/global_rows happens before
# sending, so the reduction is a plain sum (an exact weighted average).
# --------------------------------------------------------------------- #
def _collect_grads(model: KGEModel, scale: float) -> List[Optional[Tuple]]:
    out: List[Optional[Tuple]] = []
    for param in model.parameters():
        sparse = param.sparse_grad
        if sparse is not None:
            out.append(("rs", sparse.indices, sparse.values * scale))
        elif param.has_grad and param.grad is not None:
            out.append(("dense", param.grad * scale))
        else:
            out.append(None)
    return out


def _merge_grads(contributions: Sequence[List[Optional[Tuple]]],
                 shapes: Sequence[Tuple[int, ...]]) -> Tuple[List[Optional[Tuple]], int]:
    """Sum per-parameter contributions; returns (merged, merged_nbytes)."""
    merged: List[Optional[Tuple]] = []
    nbytes = 0
    for slot, shape in zip(zip(*contributions), shapes):
        entries = [entry for entry in slot if entry is not None]
        if not entries:
            merged.append(None)
            continue
        if all(entry[0] == "rs" for entry in entries):
            acc = RowSparseGrad(entries[0][1], entries[0][2], shape)
            for _, indices, values in entries[1:]:
                acc = acc.merge(RowSparseGrad(indices, values, shape))
            merged.append(("rs", acc.indices, acc.values))
            nbytes += acc.nbytes
        else:
            dense = np.zeros(shape, dtype=entries[0][2].dtype
                             if entries[0][0] == "rs" else entries[0][1].dtype)
            for entry in entries:
                if entry[0] == "rs":
                    RowSparseGrad(entry[1], entry[2], shape).add_to_dense(dense)
                else:
                    dense += entry[1]
            merged.append(("dense", dense))
            nbytes += dense.nbytes
    return merged, nbytes


def _install_grads(model: KGEModel, merged: Sequence[Optional[Tuple]]) -> None:
    model.zero_grad()
    for param, slot in zip(model.parameters(), merged):
        if slot is None:
            continue
        if slot[0] == "rs":
            param.grad = RowSparseGrad(slot[1], slot[2], param.data.shape)
        else:
            param.grad = slot[1]


def _shard(batch: TripletBatch, rank: int, world: int) -> Optional[TripletBatch]:
    """Deterministic shard ``rank`` of a global batch (may be ``None``)."""
    pos = np.array_split(batch.positives, world)[rank]
    neg = np.array_split(batch.negatives, world)[rank]
    if pos.shape[0] == 0:
        return None
    return TripletBatch(positives=pos, negatives=neg)


def _state_digest(model: KGEModel) -> str:
    """Order-stable digest of every parameter's exact bytes."""
    digest = hashlib.sha256()
    for name, param in sorted(model.named_parameters()):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(param.data).tobytes())
    return digest.hexdigest()


def _shard_step(model: KGEModel, criterion, batch: TripletBatch,
                rank: int, world: int) -> Tuple[List[Optional[Tuple]], float, float]:
    """Forward/backward on this replica's shard.

    Returns ``(wire_grads, weighted_loss, compute_seconds)`` where the loss
    and gradients are pre-scaled by ``shard_rows / global_rows`` so a plain
    sum across replicas reproduces the full-batch mean exactly.
    """
    start = time.perf_counter()
    model.zero_grad()
    shard = _shard(batch, rank, world)
    if shard is None:
        return [None] * sum(1 for _ in model.parameters()), 0.0, \
            time.perf_counter() - start
    scale = shard.size / batch.size
    loss = model.loss(shard, criterion)
    loss.backward()
    grads = _collect_grads(model, scale)
    return grads, float(loss.item()) * scale, time.perf_counter() - start


def _worker_main(rank: int, world: int, model: KGEModel,
                 batch_factory: BatchFactory, config: TrainingConfig,
                 epochs: int, start_epoch: int, conn) -> None:
    """Worker replica: lockstep shard compute + merged-gradient updates."""
    from repro.nn.partitioned import partitioned_tables

    tables = partitioned_tables(model)
    try:
        # A forked replica shares the parent's bucket *files*; give each
        # partitioned table private storage so concurrent replicas never
        # write back into each other's buckets.
        for table in tables:
            table.rehome()
        if config.sanitize:
            # Sanitizer state is thread-local; re-arm it explicitly in each
            # forked replica rather than relying on fork inheritance.
            sanitize(True)
        criterion = MarginRankingLoss(margin=config.margin)
        optimizer = build_optimizer(config.optimizer, model, config.learning_rate)
        if hasattr(model, "bind_optimizer"):
            model.bind_optimizer(optimizer)
        batches = batch_factory()
        replay_epochs(batches, start_epoch)
        for epoch in range(start_epoch, start_epoch + epochs):
            for batch in batches:
                grads, weighted_loss, compute = _shard_step(
                    model, criterion, batch, rank, world)
                conn.send(("step", compute, weighted_loss, grads))
                message = conn.recv()
                if message[0] != "grads":  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unexpected message {message[0]!r}")
                _install_grads(model, message[1])
                optimizer.step()
            if config.normalize_every and (epoch + 1) % config.normalize_every == 0:
                model.normalize_parameters()
        conn.send(("sync", _state_digest(model)))
    except Exception as exc:  # noqa: BLE001 — reported to rank 0
        import traceback

        conn.send(("error", f"{exc}\n{traceback.format_exc()}"))
    finally:
        for table in tables:
            table.close()  # removes the replica's private bucket storage
        conn.close()


class MultiprocessTrainer:
    """Data-parallel training across real OS processes (rank 0 inline).

    Parameters
    ----------
    model:
        The rank-0 replica; after :meth:`train` it holds the trained
        parameters.  Worker replicas are forked copies, so any registered
        model works without being picklable.
    batch_factory:
        Zero-argument callable returning a fresh re-iterable batch source
        (:class:`~repro.data.batching.BatchIterator` or
        :class:`~repro.data.streaming.StreamingBatchIterator`).  It is called
        once per process *after* fork; every invocation must yield the
        identical deterministic batch stream — that is the whole lockstep
        contract.
    n_workers:
        Number of replicas (processes); ``1`` degenerates to single-process
        training through the same code path.
    config:
        Hyperparameters; ``batch_size`` is the *global* batch size.
    comm_model:
        α–β cost model used to report the modeled communication time next to
        the measured one.
    verify_sync:
        Assert at the end of training that every replica's parameters hash
        to the same bytes as rank 0's (the DDP invariant, checked for real).
    """

    def __init__(self, model: KGEModel, batch_factory: BatchFactory,
                 n_workers: int, config: Optional[TrainingConfig] = None,
                 comm_model: Optional[CommunicationModel] = None,
                 verify_sync: bool = True) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.model = model
        self.batch_factory = batch_factory
        self.n_workers = int(n_workers)
        self.config = config if config is not None else TrainingConfig()
        if self.config.sanitize:
            # The parent applies merged gradients itself, so it runs under
            # the sanitizer too; workers re-arm it in _worker_main.
            sanitize(True)
        if hasattr(model, "set_sparse_grads"):
            model.set_sparse_grads(self.config.sparse_grads)
        self.comm_model = comm_model if comm_model is not None else CommunicationModel()
        self.verify_sync = bool(verify_sync)
        #: Rank 0's optimiser, exposed after :meth:`train` so callers can
        #: checkpoint the stepped state (every replica's state is identical).
        self.optimizer: Optional[object] = None
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "MultiprocessTrainer requires the 'fork' start method; "
                "on this platform use DataParallelTrainer (simulated) instead"
            ) from exc

    # ------------------------------------------------------------------ #
    def train(self, epochs: Optional[int] = None,
              start_epoch: int = 0) -> MultiprocessResult:
        """Run data-parallel training; returns per-epoch + exchange stats."""
        epochs = epochs if epochs is not None else self.config.epochs
        world = self.n_workers
        criterion = MarginRankingLoss(margin=self.config.margin)
        optimizer = build_optimizer(self.config.optimizer, self.model,
                                    self.config.learning_rate)
        if hasattr(self.model, "bind_optimizer"):
            self.model.bind_optimizer(optimizer)
        self.optimizer = optimizer
        # ``p.shape`` rather than ``p.data.shape``: bucket parameters of a
        # partitioned table answer shape metadata without faulting their slab.
        shapes = [tuple(p.shape) for p in self.model.parameters()]

        # Fork the worker replicas *before* rank 0 opens its own batch
        # pipeline, so no SQLite handle or sampler state crosses a fork.
        procs, conns = [], []
        for rank in range(1, world):
            parent_conn, child_conn = self._mp.Pipe(duplex=True)
            proc = self._mp.Process(
                target=_worker_main,
                args=(rank, world, self.model, self.batch_factory, self.config,
                      epochs, start_epoch, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)

        result = MultiprocessResult(n_workers=world)
        try:
            batches = self.batch_factory()
            replay_epochs(batches, start_epoch)
            for epoch in range(start_epoch, start_epoch + epochs):
                stats = self._train_epoch(epoch, batches, criterion, optimizer,
                                          conns, shapes, result)
                result.epochs.append(stats)
                if self.config.log_every and (epoch + 1) % self.config.log_every == 0:
                    logger.info("epoch %d: loss=%.6f time=%.3fs", epoch,
                                stats.loss, stats.total_time)
            self._finish(conns)
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=30.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
        return result

    # ------------------------------------------------------------------ #
    def _train_epoch(self, epoch: int, batches, criterion, optimizer,
                     conns, shapes, result: MultiprocessResult) -> EpochStats:
        losses: List[float] = []
        forward_backward = step_time = comm_time = data_time = 0.0
        batch_start = time.perf_counter()
        for batch in batches:
            data_time += time.perf_counter() - batch_start
            grads, weighted_loss, compute = _shard_step(
                self.model, criterion, batch, 0, self.n_workers)
            forward_backward += compute

            t0 = time.perf_counter()
            contributions = [grads]
            slowest = compute
            total_loss = weighted_loss
            for conn in conns:
                message = conn.recv()
                if message[0] == "error":
                    raise RuntimeError(f"worker failed:\n{message[1]}")
                _, worker_compute, worker_loss, worker_grads = message
                slowest = max(slowest, worker_compute)
                total_loss += worker_loss
                contributions.append(worker_grads)
            merged, nbytes = _merge_grads(contributions, shapes)
            if conns:
                # Serialize the broadcast once; Connection.recv unpickles
                # send_bytes payloads, so per-worker re-pickling is pure waste
                # that would inflate the measured comm time.
                payload = pickle.dumps(("grads", merged),
                                       protocol=pickle.HIGHEST_PROTOCOL)
                for conn in conns:
                    conn.send_bytes(payload)
            comm_time += time.perf_counter() - t0

            t1 = time.perf_counter()
            _install_grads(self.model, merged)
            optimizer.step()
            step_time += time.perf_counter() - t1

            result.steps += 1
            result.slowest_compute_time += slowest
            result.allreduce_nbytes += nbytes
            result.modeled_comm_time += self.comm_model.allreduce_time(
                self.n_workers, nbytes)
            losses.append(total_loss)
            batch_start = time.perf_counter()
        result.comm_time += comm_time
        if self.config.normalize_every and (epoch + 1) % self.config.normalize_every == 0:
            self.model.normalize_parameters()
        return EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            forward_time=forward_backward,
            backward_time=0.0,
            step_time=step_time + comm_time,
            data_time=data_time,
        )

    def _finish(self, conns) -> None:
        """Collect the end-of-training sync digests (DDP invariant check)."""
        if not conns:
            return
        reference = _state_digest(self.model) if self.verify_sync else None
        for rank, conn in enumerate(conns, start=1):
            message = conn.recv()
            if message[0] == "error":
                raise RuntimeError(f"worker failed:\n{message[1]}")
            if self.verify_sync and message[1] != reference:
                raise RuntimeError(
                    f"replica {rank} diverged from rank 0: parameter digests "
                    f"differ after training (lockstep contract broken — check "
                    f"that the batch factory is deterministic)"
                )
