"""ANN-indexed serving: per-bucket IVF indexes with exact rescoring.

The layer between weight artifacts and the serving engine: seeded k-means
clustering of each entity bucket at export time (:func:`build_index_files`),
versioned ``index/`` artifact files, and an :class:`IVFIndex` query path that
probes ``nprobe`` clusters and rescores candidates exactly from the fp64
originals.  See :mod:`repro.ann.ivf` for the layout and guarantees.
"""

from repro.ann.kmeans import assign_clusters, default_n_clusters, kmeans
from repro.ann.ivf import (
    ARTIFACT_INDEX,
    INDEX_MANIFEST,
    INDEX_MANIFEST_VERSION,
    IVFIndex,
    assign_filename,
    build_index_files,
    centroids_filename,
    get_index_class,
    index_kinds,
    load_index,
    register_index,
)

__all__ = [
    "ARTIFACT_INDEX",
    "INDEX_MANIFEST",
    "INDEX_MANIFEST_VERSION",
    "IVFIndex",
    "assign_clusters",
    "assign_filename",
    "build_index_files",
    "centroids_filename",
    "default_n_clusters",
    "get_index_class",
    "index_kinds",
    "kmeans",
    "load_index",
    "register_index",
]
