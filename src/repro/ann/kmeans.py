"""Seeded Lloyd's k-means over embedding rows (pure numpy).

The IVF serving index clusters each entity bucket independently; this module
is the trainer.  Design constraints, in order:

* **Determinism** — a fixed ``seed`` must reproduce centroids and assignments
  bit for bit across runs (index builds are part of the artifact contract and
  CI diffs them).  Initialisation draws from ``np.random.default_rng(seed)``
  and every tie-break below is a stable sort.
* **Bounded memory** — assignment never materialises the full
  ``(rows, clusters)`` distance matrix; rows are processed in tiles bounded
  by :data:`repro.ranking.RANK_TILE_ELEMENTS`, the same budget the exact
  ranking kernel uses.
* **No empty clusters** — Lloyd's update can starve a centroid; starved
  clusters are re-seeded from the rows currently farthest from their own
  centroid (one donor per empty cluster, farthest first), so every cluster
  in the returned assignment owns at least one row whenever
  ``n_clusters <= rows``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.ranking import RANK_TILE_ELEMENTS, l2_distance_matrix


def default_n_clusters(n_rows: int) -> int:
    """The ``sqrt(rows)`` heuristic used when a bucket's cluster count is unset."""
    return max(1, min(int(n_rows), int(round(math.sqrt(max(1, n_rows))))))


def assign_clusters(rows: np.ndarray, centroids: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment, tiled over rows.

    Returns ``(assign, dist)``: per-row cluster id (int32) and the distance
    to that centroid (the inputs' promoted floating dtype).  Tile size keeps
    each ``(block, n_clusters)`` distance tile within
    :data:`~repro.ranking.RANK_TILE_ELEMENTS` elements.
    """
    n = rows.shape[0]
    c = centroids.shape[0]
    dist_dtype = np.result_type(rows.dtype, centroids.dtype)
    if not np.issubdtype(dist_dtype, np.floating):
        dist_dtype = np.dtype(np.float64)
    assign = np.empty(n, dtype=np.int32)
    dist = np.empty(n, dtype=dist_dtype)
    block = max(1, RANK_TILE_ELEMENTS // max(1, c))
    for start in range(0, n, block):
        stop = min(n, start + block)
        tile = l2_distance_matrix(rows[start:stop], centroids)
        nearest = np.argmin(tile, axis=1)
        assign[start:stop] = nearest.astype(np.int32)
        dist[start:stop] = tile[np.arange(stop - start, dtype=np.int64), nearest]
    return assign, dist


def _reseed_empty_clusters(assign: np.ndarray, dist: np.ndarray,
                           n_clusters: int) -> None:
    """Give every starved cluster a donor row, in place.

    Donors are the rows farthest from their assigned centroid (stable order on
    ``-dist``), skipping rows whose departure would starve *their* cluster.
    Repeats until no cluster is empty; terminates because each round strictly
    reduces the empty count while ``n_clusters <= rows``.
    """
    for _ in range(n_clusters):
        counts = np.bincount(assign, minlength=n_clusters)
        empty = np.flatnonzero(counts == 0)
        if empty.size == 0:
            return
        order = np.argsort(-dist, kind="stable")
        taken = 0
        for row in order:
            if taken >= empty.size:
                break
            src = int(assign[row])
            if counts[src] <= 1:
                continue  # donating would starve the source cluster
            counts[src] -= 1
            assign[row] = np.int32(empty[taken])
            counts[empty[taken]] += 1
            dist[row] = 0.0  # freshly seeded: it *is* its centroid now
            taken += 1


def kmeans(rows: np.ndarray, n_clusters: int, n_iters: int = 10,
           seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means: ``(centroids, assign)`` for ``rows``.

    ``centroids`` has shape ``(n_clusters, d)`` in the rows' floating dtype;
    ``assign`` is the per-row cluster id (int32).  ``n_clusters`` is clamped
    to the row count (tiny buckets), and every returned cluster is non-empty.
    Iteration stops early once assignments stop changing.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
    if rows.shape[0] == 0:
        raise ValueError("cannot cluster an empty row set")
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    if not np.issubdtype(rows.dtype, np.floating):
        rows = rows.astype(np.float64)
    n, d = rows.shape
    n_clusters = min(int(n_clusters), n)

    rng = np.random.default_rng(seed)
    centroids = rows[rng.permutation(n)[:n_clusters]].copy()

    assign = np.empty(0, dtype=np.int32)
    prev = None
    for _ in range(max(1, int(n_iters))):
        assign, dist = assign_clusters(rows, centroids)
        _reseed_empty_clusters(assign, dist, n_clusters)
        if prev is not None and np.array_equal(assign, prev):
            break
        prev = assign.copy()
        # Per-cluster means via one stable sort + segmented reduction: cheaper
        # than n_clusters boolean masks and exact for the means (sums in
        # float64 regardless of the slab dtype).
        perm = np.argsort(assign, kind="stable")
        counts = np.bincount(assign, minlength=n_clusters)
        starts = np.zeros(n_clusters, dtype=np.int64)
        starts[1:] = np.cumsum(counts[:-1])
        sums = np.add.reduceat(rows[perm].astype(np.float64, copy=False),
                               starts, axis=0)
        means = sums / counts[:, None].astype(np.float64)
        centroids = means.astype(rows.dtype, copy=False)
    return centroids, assign
