"""IVF (inverted-file) ANN index over partitioned entity tables.

The serving-latency ceiling after quantization is exact blocked L2 ranking:
O(N·d) per query over every bucket.  This module trades a bounded recall loss
for sub-linear scans, Helmsman-style: cluster each ``entities.bucket<k>.npy``
with seeded k-means at artifact-export time, store the centroids and the
cluster-sorted row permutation beside the weights, and at query time probe
only the ``nprobe`` globally-nearest clusters — then **rescore the gathered
candidates exactly from the fp64 originals** (``exact_rows`` + the shared
:func:`repro.ranking.top_k`), so final ranks are identical to exact search
whenever the true top-k lies inside the probed clusters.  With
``nprobe == n_clusters`` the candidate set is every entity in ascending id
order and the result is bit-identical to the exact path, ties included.

On-disk layout (``<artifact>/index/`` beside ``<artifact>/weights/``)::

    index.json                         # versioned manifest, like partition.json
    entities.bucket<k>.centroids.npy   # (clusters_k, d) float64
    entities.bucket<k>.assign.npy      # (rows_k,) int32 cluster id per local row

Centroids are small (≈ sqrt(rows) per bucket) and stay resident; the per-row
assignment blocks are faulted lazily and bounded by their own LRU, the same
discipline :class:`~repro.nn.partitioned.PartitionedEmbedding` applies to
bucket slabs.  The index never holds embedding rows itself — candidates are
rescored from the weight files (transient mmap) or from whatever
``exact_rows`` callable the serving engine supplies.

Thread safety: the index mutates LRU/counter state without internal locking;
the serving engine serialises access under its scoring lock, and standalone
use (builds, CI recall gates, benches) is single-threaded.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Type

import numpy as np

from repro.ann.kmeans import default_n_clusters, kmeans
from repro.nn.partitioned import PARTITION_MANIFEST, bucket_filename
from repro.ranking import l2_distance_matrix, nearest_rows, top_k

#: Manifest filename written next to the index files.
INDEX_MANIFEST = "index.json"

#: Current index manifest schema version (bumped on layout changes; loads of
#: any other version are rejected, mirroring ``partition.json``).
INDEX_MANIFEST_VERSION = 1

#: Artifact subdirectory holding the index files (sibling of ``weights/``).
ARTIFACT_INDEX = "index"

#: Artifact subdirectory holding the weight files.  Mirrors
#: ``repro.training.checkpoint.ARTIFACT_WEIGHTS`` (duplicated here so the
#: index layer has no import edge into the checkpoint layer).
ARTIFACT_WEIGHTS = "weights"

_INDEX_REGISTRY: Dict[str, Type["IVFIndex"]] = {}


def register_index(kind: str):
    """Class decorator registering an ANN index implementation under ``kind``.

    Every registered class must be named by a recall/parity test under
    ``tests/ann/`` — enforced statically by the ``ann-recall`` rule in
    :mod:`repro.analysis`.
    """
    def decorate(cls):
        cls.kind = kind
        _INDEX_REGISTRY[kind] = cls
        return cls
    return decorate


def index_kinds() -> Tuple[str, ...]:
    """Registered index kinds, sorted."""
    return tuple(sorted(_INDEX_REGISTRY))


def get_index_class(kind: str) -> Type["IVFIndex"]:
    try:
        return _INDEX_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown ANN index kind {kind!r}; registered kinds: "
            f"{', '.join(index_kinds()) or '(none)'}"
        ) from None


def centroids_filename(bucket: int) -> str:
    """On-disk name of bucket ``bucket``'s centroid table."""
    return f"entities.bucket{int(bucket)}.centroids.npy"


def assign_filename(bucket: int) -> str:
    """On-disk name of bucket ``bucket``'s per-row cluster assignment."""
    return f"entities.bucket{int(bucket)}.assign.npy"


def _read_index_manifest(index_dir: str) -> Dict[str, object]:
    path = os.path.join(index_dir, INDEX_MANIFEST)
    if not os.path.exists(path):
        raise FileNotFoundError(f"no {INDEX_MANIFEST} in {index_dir}; not an ANN index directory")
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = int(manifest.get("version", -1))
    if version != INDEX_MANIFEST_VERSION:
        raise ValueError(
            f"unsupported index manifest version {version} in {path}; this "
            f"build reads version {INDEX_MANIFEST_VERSION} — rebuild the "
            "index with build_index_files()"
        )
    return manifest


def load_index(index_dir: str, max_resident: Optional[int] = None,
               weights_dir: Optional[str] = None) -> "IVFIndex":
    """Load the index under ``index_dir``, dispatching on the manifest kind."""
    manifest = _read_index_manifest(index_dir)
    cls = get_index_class(str(manifest.get("kind", "ivf")))
    return cls(index_dir, manifest, max_resident=max_resident,
               weights_dir=weights_dir)


def build_index_files(directory: str, kind: str = "ivf", **kwargs) -> Dict[str, object]:
    """Build ANN index files for the artifact at ``directory``.

    ``directory`` must hold partitioned weight files under
    ``<directory>/weights/`` (the :func:`save_weight_files` layout); the index
    is written to ``<directory>/index/``.  Returns the written manifest.
    """
    return get_index_class(kind).build(directory, **kwargs)


@register_index("ivf")
class IVFIndex:
    """Per-bucket IVF index: resident centroids, LRU-paged assignment blocks.

    Parameters
    ----------
    index_dir:
        Directory holding ``index.json`` and the per-bucket index files.
    manifest:
        Parsed (and version-checked) ``index.json`` payload.
    max_resident:
        LRU bound on simultaneously resident per-bucket assignment blocks
        (``None`` keeps every faulted block resident — they are int64
        permutations, ~16 bytes/row total).
    weights_dir:
        Directory with the exact ``entities.bucket<k>.npy`` files used for
        rescoring and recall probes; defaults to the ``weights`` sibling of
        ``index_dir``.
    """

    kind = "ivf"

    def __init__(self, index_dir: str, manifest: Dict[str, object],
                 max_resident: Optional[int] = None,
                 weights_dir: Optional[str] = None) -> None:
        self.directory = str(index_dir)
        self.manifest = manifest
        self.n_entities = int(manifest["n_entities"])
        self.embedding_dim = int(manifest["embedding_dim"])
        self.metric = str(manifest.get("metric", "l2"))
        self.nprobe_default = int(manifest.get("nprobe", 1))
        buckets = list(manifest["buckets"])
        self.n_buckets = len(buckets)
        if max_resident is not None and max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self.max_resident = max_resident
        if weights_dir is None:
            weights_dir = os.path.join(os.path.dirname(os.path.abspath(index_dir)),
                                       ARTIFACT_WEIGHTS)
        self.weights_dir = weights_dir

        # Per-bucket geometry: global row range and global cluster-id range.
        self._bucket_row_start = np.empty(self.n_buckets + 1, dtype=np.int64)
        self._bucket_cluster_start = np.empty(self.n_buckets + 1, dtype=np.int64)
        self._bucket_entries: List[Dict[str, object]] = buckets
        row_cursor = 0
        cluster_cursor = 0
        centroid_parts: List[np.ndarray] = []
        for k, entry in enumerate(buckets):
            if int(entry["start"]) != row_cursor:
                raise ValueError(
                    f"index manifest bucket {k} starts at {entry['start']}, "
                    f"expected contiguous start {row_cursor}"
                )
            self._bucket_row_start[k] = row_cursor
            self._bucket_cluster_start[k] = cluster_cursor
            row_cursor += int(entry["rows"])
            cluster_cursor += int(entry["clusters"])
            part = np.load(os.path.join(index_dir, str(entry["centroids"])))
            centroid_parts.append(np.asarray(part, dtype=np.float64))
        self._bucket_row_start[self.n_buckets] = row_cursor
        self._bucket_cluster_start[self.n_buckets] = cluster_cursor
        if row_cursor != self.n_entities:
            raise ValueError(
                f"index manifest covers {row_cursor} rows, expected "
                f"{self.n_entities} entities"
            )
        # Global centroid table: small (≈ sqrt(rows) per bucket), always
        # resident so the coarse probe is a single tiled distance sweep.
        self._centroids = (np.concatenate(centroid_parts, axis=0)
                           if centroid_parts
                           else np.empty((0, self.embedding_dim), dtype=np.float64))
        self.n_clusters = int(self._centroids.shape[0])
        # Global cluster id -> owning bucket, for candidate gathering.
        self._cluster_bucket = np.repeat(
            np.arange(self.n_buckets, dtype=np.int64),
            np.diff(self._bucket_cluster_start))

        # Cluster-sorted row permutations fault lazily, one bucket at a time,
        # bounded by their own LRU — the same residency discipline the bucket
        # slabs get in PartitionedEmbedding.
        self._blocks: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        self.counters: Dict[str, float] = {
            "index_faults": 0, "index_evictions": 0, "index_bytes_loaded": 0,
        }

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, directory: str, n_clusters: Optional[int] = None,
              n_iters: int = 10, seed: int = 0, nprobe: Optional[int] = None,
              target_recall: float = 0.95, recall_sample: int = 32,
              recall_k: int = 10) -> Dict[str, object]:
        """Cluster every weight bucket and write ``<directory>/index/``.

        ``n_clusters`` defaults to ``sqrt(rows)`` per bucket.  When ``nprobe``
        is omitted, the default probe width is **auto-chosen for a target
        recall**: a deterministic sample of entity rows is queried through the
        fresh index and ``nprobe`` is doubled until measured recall@``recall_k``
        reaches ``target_recall`` (see :meth:`choose_nprobe`); the chosen value
        is recorded in the manifest as the serving default.
        """
        weights_dir = os.path.join(directory, ARTIFACT_WEIGHTS)
        partition_path = os.path.join(weights_dir, PARTITION_MANIFEST)
        if not os.path.exists(partition_path):
            raise ValueError(
                f"no {PARTITION_MANIFEST} under {weights_dir}; ANN indexes "
                "are built over partitioned weight artifacts (train with "
                "partitions or re-export with save_weight_files)"
            )
        with open(partition_path, "r", encoding="utf-8") as handle:
            partition = json.load(handle)
        index_dir = os.path.join(directory, ARTIFACT_INDEX)
        os.makedirs(index_dir, exist_ok=True)

        bucket_entries: List[Dict[str, object]] = []
        total_clusters = 0
        for k, entry in enumerate(partition["buckets"]):
            slab = np.load(os.path.join(weights_dir, str(entry["file"])))
            clusters = (default_n_clusters(slab.shape[0])
                        if n_clusters is None else int(n_clusters))
            # Per-bucket seed offset keeps bucket builds independent (and
            # reproducible) regardless of partition count.
            centroids, assign = kmeans(slab, clusters, n_iters=n_iters,
                                       seed=int(seed) + k)
            np.save(os.path.join(index_dir, centroids_filename(k)), centroids)
            np.save(os.path.join(index_dir, assign_filename(k)),
                    assign.astype(np.int32, copy=False))
            bucket_entries.append({
                "centroids": centroids_filename(k),
                "assign": assign_filename(k),
                "start": int(entry["start"]),
                "rows": int(entry["rows"]),
                "clusters": int(centroids.shape[0]),
            })
            total_clusters += int(centroids.shape[0])

        manifest: Dict[str, object] = {
            "version": INDEX_MANIFEST_VERSION,
            "kind": cls.kind,
            "metric": "l2",
            "n_entities": int(partition["n_entities"]),
            "embedding_dim": int(partition["embedding_dim"]),
            "partitions": int(partition["partitions"]),
            "total_clusters": total_clusters,
            "kmeans_iters": int(n_iters),
            "seed": int(seed),
            "nprobe": 1,
            "buckets": bucket_entries,
        }
        index = cls(index_dir, manifest, weights_dir=weights_dir)
        if nprobe is None:
            queries = index._sample_queries(recall_sample, seed=int(seed))
            nprobe = index.choose_nprobe(queries, k=recall_k,
                                         target_recall=target_recall)
        manifest["nprobe"] = int(max(1, min(int(nprobe), max(1, total_clusters))))
        with open(os.path.join(index_dir, INDEX_MANIFEST), "w",
                  encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return manifest

    # ------------------------------------------------------------------ #
    # Residency (assignment blocks page like buckets)
    # ------------------------------------------------------------------ #
    def _block(self, bucket: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fault bucket ``bucket``'s ``(perm, offsets)`` block (LRU-bounded).

        ``perm`` lists the bucket's local rows sorted by cluster id (stable,
        so within a cluster rows stay in ascending id order); ``offsets`` is
        the CSR-style boundary array — cluster ``c``'s rows are
        ``perm[offsets[c]:offsets[c + 1]]``.
        """
        if bucket in self._blocks:
            self._blocks.move_to_end(bucket)
            return self._blocks[bucket]
        if self.max_resident is not None:
            while len(self._blocks) >= self.max_resident:
                self._blocks.popitem(last=False)
                self.counters["index_evictions"] += 1
        entry = self._bucket_entries[bucket]
        assign = np.load(os.path.join(self.directory, str(entry["assign"])))
        clusters = int(entry["clusters"])
        perm = np.argsort(assign, kind="stable").astype(np.int64, copy=False)
        counts = np.bincount(assign, minlength=clusters)
        offsets = np.zeros(clusters + 1, dtype=np.int64)
        offsets[1:] = np.cumsum(counts)
        self._blocks[bucket] = (perm, offsets)
        self.counters["index_faults"] += 1
        self.counters["index_bytes_loaded"] += int(assign.nbytes)
        return perm, offsets

    # ------------------------------------------------------------------ #
    # Query path
    # ------------------------------------------------------------------ #
    def _clamp_nprobe(self, nprobe: Optional[int]) -> int:
        if nprobe is None:
            nprobe = self.nprobe_default
        return max(1, min(int(nprobe), max(1, self.n_clusters)))

    def candidate_ids(self, query: np.ndarray,
                      nprobe: Optional[int] = None) -> np.ndarray:
        """Global entity ids inside the ``nprobe`` nearest clusters, ascending.

        The probe ranks every centroid globally (not per bucket), so dense
        regions naturally draw more probes.  Clusters partition the rows, so
        the concatenated candidate lists are duplicate-free; sorting them
        ascending makes the full-probe candidate set literally
        ``arange(n_entities)`` — the bit-identical-to-exact guarantee.
        """
        nprobe = self._clamp_nprobe(nprobe)
        q = np.asarray(query, dtype=np.float64).reshape(1, -1)
        coarse = l2_distance_matrix(q, self._centroids)[0]
        probe = top_k(coarse, nprobe)
        parts: List[np.ndarray] = []
        for cluster in probe:
            bucket = int(self._cluster_bucket[cluster])
            local_cluster = int(cluster - self._bucket_cluster_start[bucket])
            perm, offsets = self._block(bucket)
            rows = perm[offsets[local_cluster]:offsets[local_cluster + 1]]
            parts.append(rows + self._bucket_row_start[bucket])
        if not parts:
            return np.empty(0, dtype=np.int64)
        candidates = np.concatenate(parts)
        candidates.sort(kind="stable")
        return candidates

    def search(self, query: np.ndarray, k: int, nprobe: Optional[int] = None,
               exclude: Optional[int] = None,
               exact_rows: Optional[Callable[[np.ndarray], np.ndarray]] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` entities for ``query``: probe, gather, rescore exactly.

        Returns ``(indices, distances)`` ascending by distance.  ``exclude``
        drops one entity id (the query's own row for kNN); ``exact_rows``
        overrides the fp64 row source (the serving engine passes the model's
        ``exact_entity_rows`` so its read counters stay truthful).
        """
        candidates = self.candidate_ids(query, nprobe)
        if exclude is not None and candidates.size:
            pos = np.searchsorted(candidates, int(exclude))
            if pos < candidates.size and candidates[pos] == int(exclude):
                candidates = np.delete(candidates, pos)
        if candidates.size == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        rows = (exact_rows or self.exact_rows)(candidates)
        q = np.asarray(query, dtype=np.float64).reshape(1, -1)
        dist = l2_distance_matrix(q, rows)[0]
        keep = top_k(dist, k)
        return candidates[keep], dist[keep]

    # ------------------------------------------------------------------ #
    # Exact row access (fp64 originals, transient mmap — no residency)
    # ------------------------------------------------------------------ #
    def exact_rows(self, indices: np.ndarray) -> np.ndarray:
        """Gather fp64 rows from the weight files through a transient mmap."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_entities):
            raise IndexError("entity index out of range")
        out = np.empty((idx.size, self.embedding_dim), dtype=np.float64)
        order = np.argsort(idx, kind="stable")
        sorted_ids = idx[order]
        bucket_of = np.searchsorted(self._bucket_row_start, sorted_ids,
                                    side="right") - 1
        boundaries = np.flatnonzero(
            np.concatenate((np.array([True]), bucket_of[1:] != bucket_of[:-1])))
        for i, start in enumerate(boundaries):
            stop = (boundaries[i + 1] if i + 1 < boundaries.size
                    else sorted_ids.size)
            bucket = int(bucket_of[start])
            lo = int(self._bucket_row_start[bucket])
            slab = np.load(os.path.join(self.weights_dir,
                                        bucket_filename(bucket)), mmap_mode="r")
            out[order[start:stop]] = slab[sorted_ids[start:stop] - lo]
            del slab  # drop the mmap (and its fd) as soon as rows are copied
        return out

    def _iter_exact_blocks(self, block_rows: int = 16384
                           ) -> Iterator[Tuple[int, np.ndarray]]:
        """Stream ``(start, fp64 block)`` over the whole table via mmap."""
        for bucket in range(self.n_buckets):
            lo = int(self._bucket_row_start[bucket])
            hi = int(self._bucket_row_start[bucket + 1])
            slab = np.load(os.path.join(self.weights_dir,
                                        bucket_filename(bucket)), mmap_mode="r")
            for start in range(0, hi - lo, block_rows):
                stop = min(hi - lo, start + block_rows)
                yield lo + start, np.asarray(slab[start:stop], dtype=np.float64)
            del slab  # one bucket mmap live at a time, not n_buckets fds

    def _sample_queries(self, n: int, seed: int = 0) -> np.ndarray:
        """Deterministic sample of entity rows used as recall-probe queries."""
        rng = np.random.default_rng(seed)
        take = max(1, min(int(n), self.n_entities))
        ids = np.sort(rng.choice(self.n_entities, size=take, replace=False))
        return self.exact_rows(ids)

    # ------------------------------------------------------------------ #
    # Recall measurement / probe auto-tuning
    # ------------------------------------------------------------------ #
    def _exact_topk(self, queries: np.ndarray, k: int) -> List[np.ndarray]:
        return [nearest_rows(q, self._iter_exact_blocks(), k)[0]
                for q in np.asarray(queries, dtype=np.float64)]

    def recall_probe(self, queries: np.ndarray, k: int = 10,
                     nprobe: Optional[int] = None) -> float:
        """Measured recall@``k`` of IVF search against exact search.

        ``queries`` is a ``(Q, d)`` sample (e.g. held-out or entity rows);
        recall is the mean fraction of each query's exact top-``k`` recovered
        by :meth:`search` at ``nprobe``.
        """
        queries = np.asarray(queries, dtype=np.float64)
        truth = self._exact_topk(queries, k)
        return self._recall_against(queries, truth, k, self._clamp_nprobe(nprobe))

    def _recall_against(self, queries: np.ndarray, truth: List[np.ndarray],
                        k: int, nprobe: int) -> float:
        hits = 0.0
        for q, exact_ids in zip(queries, truth):
            if exact_ids.size == 0:
                hits += 1.0
                continue
            got, _ = self.search(q, k, nprobe=nprobe)
            hits += (np.intersect1d(got, exact_ids).size
                     / float(exact_ids.size))
        return hits / max(1, queries.shape[0])

    def choose_nprobe(self, queries: np.ndarray, k: int = 10,
                      target_recall: float = 0.95) -> int:
        """Smallest power-of-two ``nprobe`` meeting ``target_recall`` on ``queries``.

        Ground truth is computed once; ``nprobe`` doubles from 1 until the
        measured recall@``k`` reaches the target (worst case: every cluster,
        where search degenerates to exact and recall is 1.0 by construction).
        """
        queries = np.asarray(queries, dtype=np.float64)
        truth = self._exact_topk(queries, k)
        nprobe = 1
        while nprobe < max(1, self.n_clusters):
            if self._recall_against(queries, truth, k, nprobe) >= target_recall:
                return nprobe
            nprobe *= 2
        return max(1, self.n_clusters)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Fault/eviction counters plus geometry, for ``engine.stats()``."""
        out: Dict[str, object] = dict(self.counters)
        out["kind"] = self.kind
        out["n_clusters"] = self.n_clusters
        out["n_buckets"] = self.n_buckets
        out["nprobe_default"] = self.nprobe_default
        out["resident_blocks"] = len(self._blocks)
        out["max_resident"] = self.max_resident
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IVFIndex(entities={self.n_entities}, dim={self.embedding_dim}, "
                f"buckets={self.n_buckets}, clusters={self.n_clusters}, "
                f"nprobe={self.nprobe_default})")
