"""Loss functions for knowledge-graph embedding training.

The paper trains every framework with ``MarginRankingLoss``; the other losses
here are the standard alternatives offered by the compared frameworks
(logistic, binary cross-entropy, and RotatE's self-adversarial loss) so the
library covers the same configuration space.
"""

from repro.losses.margin import MarginRankingLoss, margin_ranking_loss
from repro.losses.logistic import LogisticLoss, logistic_loss
from repro.losses.bce import BCEWithLogitsLoss, bce_with_logits_loss
from repro.losses.adversarial import SelfAdversarialLoss, self_adversarial_loss

__all__ = [
    "MarginRankingLoss",
    "margin_ranking_loss",
    "LogisticLoss",
    "logistic_loss",
    "BCEWithLogitsLoss",
    "bce_with_logits_loss",
    "SelfAdversarialLoss",
    "self_adversarial_loss",
]
