"""Self-adversarial negative-sampling loss (RotatE-style).

Included because the paper's Appendix D extends the sparse formulation to
RotatE; the canonical RotatE recipe weights negative samples by a softmax over
their own scores.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


def self_adversarial_loss(positive_scores: Tensor, negative_scores: Tensor,
                          margin: float = 6.0, temperature: float = 1.0) -> Tensor:
    """Self-adversarial loss over dissimilarity scores.

    ``L = −log σ(γ − d_pos) − Σ_i w_i · log σ(d_neg_i − γ)`` where the weights
    ``w_i`` are a softmax of ``−d_neg_i / T`` treated as constants (gradients
    do not flow through the weighting, matching the original RotatE recipe).

    Parameters
    ----------
    positive_scores:
        Dissimilarities of positive triplets, shape ``(B,)``.
    negative_scores:
        Dissimilarities of negatives, shape ``(B,)`` or ``(B, K)``.
    margin:
        The γ offset.
    temperature:
        Softmax temperature for the adversarial weights.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    pos_term = -ops.logsigmoid(Tensor(np.array(margin)) - positive_scores)

    neg = negative_scores
    if neg.ndim == 1:
        neg = neg.reshape(neg.shape[0], 1)
    # Adversarial weights are computed on detached scores.
    logits = -neg.data / temperature
    logits = logits - logits.max(axis=1, keepdims=True)
    weights = np.exp(logits)
    weights /= weights.sum(axis=1, keepdims=True)
    neg_term = -(Tensor(weights) * ops.logsigmoid(neg - margin)).sum(axis=1)
    return (pos_term + neg_term).mean()


class SelfAdversarialLoss(Module):
    """Module wrapper around :func:`self_adversarial_loss`."""

    def __init__(self, margin: float = 6.0, temperature: float = 1.0) -> None:
        super().__init__()
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.margin = float(margin)
        self.temperature = float(temperature)

    def forward(self, positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
        return self_adversarial_loss(positive_scores, negative_scores,
                                     margin=self.margin, temperature=self.temperature)
