"""Binary cross-entropy with logits over triplet plausibility scores."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


def bce_with_logits_loss(logits: Tensor, targets: np.ndarray,
                         reduction: str = "mean") -> Tensor:
    """Numerically-stable BCE: ``softplus(x) − x·y`` per element.

    ``logits`` are *plausibility* scores (larger = more plausible); callers
    using dissimilarity scores should negate them first.
    """
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != logits.shape:
        raise ValueError(f"targets shape {targets.shape} != logits shape {logits.shape}")
    raw = ops.softplus(logits) - logits * Tensor(targets)
    if reduction == "mean":
        return raw.mean()
    if reduction == "sum":
        return raw.sum()
    if reduction == "none":
        return raw
    raise ValueError(f"reduction must be 'mean', 'sum', or 'none', got {reduction!r}")


class BCEWithLogitsLoss(Module):
    """Module wrapper around :func:`bce_with_logits_loss`."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"invalid reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return bce_with_logits_loss(logits, targets, reduction=self.reduction)
