"""Logistic (softplus) loss over labelled triplet scores."""

from __future__ import annotations

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


def logistic_loss(positive_scores: Tensor, negative_scores: Tensor,
                  reduction: str = "mean") -> Tensor:
    """``softplus(pos) + softplus(−neg)`` for dissimilarity-style scores.

    Positive triplets should have small dissimilarity, negatives large; the
    logistic loss is the smooth alternative to the margin loss offered by
    OpenKE/PyKEEN-style frameworks.
    """
    raw = ops.softplus(positive_scores) + ops.softplus(-negative_scores)
    if reduction == "mean":
        return raw.mean()
    if reduction == "sum":
        return raw.sum()
    if reduction == "none":
        return raw
    raise ValueError(f"reduction must be 'mean', 'sum', or 'none', got {reduction!r}")


class LogisticLoss(Module):
    """Module wrapper around :func:`logistic_loss`."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"invalid reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
        return logistic_loss(positive_scores, negative_scores, reduction=self.reduction)
