"""Margin ranking loss — the training objective used throughout the paper."""

from __future__ import annotations

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


def margin_ranking_loss(positive_scores: Tensor, negative_scores: Tensor,
                        margin: float = 0.5, reduction: str = "mean") -> Tensor:
    """``max(0, margin + score(pos) − score(neg))`` averaged over the batch.

    Translational scores are *dissimilarities* (smaller is better), so the
    loss pushes positive scores at least ``margin`` below negative ones —
    identical to TorchKGE's ``MarginLoss`` convention used in the experiments.

    Parameters
    ----------
    positive_scores, negative_scores:
        Tensors of shape ``(B,)`` with matching lengths.
    margin:
        Separation margin (the paper uses 0.5).
    reduction:
        ``"mean"``, ``"sum"``, or ``"none"``.
    """
    if positive_scores.shape != negative_scores.shape:
        raise ValueError(
            f"positive and negative score shapes differ: "
            f"{positive_scores.shape} vs {negative_scores.shape}"
        )
    raw = ops.relu(positive_scores - negative_scores + margin)
    if reduction == "mean":
        return raw.mean()
    if reduction == "sum":
        return raw.sum()
    if reduction == "none":
        return raw
    raise ValueError(f"reduction must be 'mean', 'sum', or 'none', got {reduction!r}")


class MarginRankingLoss(Module):
    """Module wrapper around :func:`margin_ranking_loss`.

    Parameters
    ----------
    margin:
        Separation margin.
    reduction:
        Batch reduction mode.
    """

    def __init__(self, margin: float = 0.5, reduction: str = "mean") -> None:
        super().__init__()
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"invalid reduction {reduction!r}")
        self.margin = float(margin)
        self.reduction = reduction

    def forward(self, positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
        return margin_ranking_loss(positive_scores, negative_scores,
                                   margin=self.margin, reduction=self.reduction)
