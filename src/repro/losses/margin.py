"""Margin ranking loss — the training objective used throughout the paper.

Two implementations share one contract:

* the **reference** path composes autograd primitives (``sub`` → ``add`` →
  ``relu`` → ``mean``): four tape nodes and four batch-sized temporaries;
* the **fused** path (default) evaluates the hinge and its backward mask in a
  single pass over the batch (:mod:`repro.sparse.kernels`), recording one tape
  node.  Its numpy forward and backward reproduce the reference
  **bit-identically** (same elementwise operations in the same order — the
  parity suite asserts exact equality); with numba installed the whole
  forward collapses into one compiled loop (parity within 1e-6).
"""

from __future__ import annotations

import time

import numpy as np

from repro.autograd import ops
from repro.autograd.function import count_flops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.sparse import kernels


def _reference_margin_loss(positive_scores: Tensor, negative_scores: Tensor,
                           margin: float, reduction: str) -> Tensor:
    raw = ops.relu(positive_scores - negative_scores + margin)
    if reduction == "mean":
        return raw.mean()
    if reduction == "sum":
        return raw.sum()
    return raw


def _fused_margin_loss(positive_scores: Tensor, negative_scores: Tensor,
                       margin: float, reduction: str) -> Tensor:
    """One tape node: hinge forward + backward mask in a single batch pass."""
    pos, neg = positive_scores, negative_scores
    n = max(1, pos.data.size)
    t0 = time.perf_counter()
    if reduction == "none":
        out_data, mask = kernels.margin_loss_forward(pos.data, neg.data, margin)
    else:
        total, mask = kernels.margin_loss_sum(pos.data, neg.data, margin)
        out_data = np.asarray(total if reduction == "sum" else total * (1.0 / n))
    count_flops("margin_loss[fused]", kernels.margin_loss_flops(n),
                bytes_streamed=pos.data.nbytes + neg.data.nbytes,
                bytes_unique=pos.data.nbytes + neg.data.nbytes,
                seconds=time.perf_counter() - t0)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if reduction == "mean":
            g = g * (1.0 / n)
        if reduction != "none":
            # Match the reference ``sum`` backward exactly: broadcast the
            # scalar upstream gradient over the batch at the input dtype.
            g = np.broadcast_to(g, pos.data.shape).astype(pos.data.dtype)
        local = g * mask
        if pos.requires_grad:
            pos.accumulate_grad(local)
        if neg.requires_grad:
            neg.accumulate_grad(-local)

    return Tensor._make(out_data, (pos, neg), backward, "margin_loss[fused]")


def margin_ranking_loss(positive_scores: Tensor, negative_scores: Tensor,
                        margin: float = 0.5, reduction: str = "mean",
                        fused: bool = True) -> Tensor:
    """``max(0, margin + score(pos) − score(neg))`` averaged over the batch.

    Translational scores are *dissimilarities* (smaller is better), so the
    loss pushes positive scores at least ``margin`` below negative ones —
    identical to TorchKGE's ``MarginLoss`` convention used in the experiments.

    Parameters
    ----------
    positive_scores, negative_scores:
        Tensors of shape ``(B,)`` with matching lengths.
    margin:
        Separation margin (the paper uses 0.5).
    reduction:
        ``"mean"``, ``"sum"``, or ``"none"``.
    fused:
        Evaluate forward and backward in one pass over the batch (default).
        ``False`` runs the op-by-op reference path; both produce bit-identical
        values and gradients on the pure-numpy build.
    """
    if positive_scores.shape != negative_scores.shape:
        raise ValueError(
            f"positive and negative score shapes differ: "
            f"{positive_scores.shape} vs {negative_scores.shape}"
        )
    if reduction not in ("mean", "sum", "none"):
        raise ValueError(f"reduction must be 'mean', 'sum', or 'none', got {reduction!r}")
    if fused:
        return _fused_margin_loss(positive_scores, negative_scores, margin, reduction)
    return _reference_margin_loss(positive_scores, negative_scores, margin, reduction)


class MarginRankingLoss(Module):
    """Module wrapper around :func:`margin_ranking_loss`.

    Parameters
    ----------
    margin:
        Separation margin.
    reduction:
        Batch reduction mode.
    fused:
        Use the one-pass fused kernel (default) or the op-by-op reference.
    """

    def __init__(self, margin: float = 0.5, reduction: str = "mean",
                 fused: bool = True) -> None:
        super().__init__()
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"invalid reduction {reduction!r}")
        self.margin = float(margin)
        self.reduction = reduction
        self.fused = bool(fused)

    def forward(self, positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
        return margin_ranking_loss(positive_scores, negative_scores,
                                   margin=self.margin, reduction=self.reduction,
                                   fused=self.fused)
