"""A minimal, NumPy-backed reverse-mode automatic differentiation engine.

The paper's framework is built on PyTorch autograd; this subpackage provides
the equivalent substrate so the sparse (SpMM) and dense (gather/scatter)
training paths can be expressed and compared on identical machinery.

Public surface
--------------
:class:`Tensor`
    Dense N-dimensional array node participating in a dynamically-built tape.
:func:`no_grad` / :func:`is_grad_enabled`
    Context manager disabling tape construction (inference / evaluation).
:mod:`repro.autograd.ops`
    Functional operators (norms, gathers, batched matmul, torus distances, ...)
    used by the models and losses.
:func:`gradcheck`
    Finite-difference verification used heavily in the test-suite, including
    the Appendix-G property that the SpMM backward is another SpMM.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled, enable_grad
from repro.autograd.function import flop_counter, reset_flops, get_flops, count_flops
from repro.autograd.sanitizer import SanitizerError, sanitize, sanitize_enabled
from repro.autograd import ops
from repro.autograd.grad_check import gradcheck, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "ops",
    "gradcheck",
    "numerical_gradient",
    "flop_counter",
    "reset_flops",
    "get_flops",
    "count_flops",
    "SanitizerError",
    "sanitize",
    "sanitize_enabled",
]
