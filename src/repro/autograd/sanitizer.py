"""Runtime tape sanitizer: NaN/Inf, dtype-widening, and shape guards.

``sptransx check`` enforces the dtype and safety invariants statically; this
module enforces the *runtime* half.  With :func:`sanitize` enabled, every
tape node built through ``Tensor._make`` is audited as it is created and
again when its backward closure runs:

* **no NaN/Inf** in any forward output or any gradient — the failing op is
  named, so a NaN injected deep inside a fused kernel surfaces as
  ``margin_loss[fused]`` rather than as a garbage metric three layers up;
* **no silent dtype widening** — a floating output (or gradient) must not
  be wider than the widest floating input it was computed from, the
  runtime twin of the ``dtype-ctor``/``dtype-promotion`` static rules;
* **gradient/output shape agreement** — the upstream gradient entering a
  backward closure must match the output's shape, and each parent's
  accumulated dense gradient must match that parent's data shape.

The checks are O(output size) per op and only run while enabled, so the CI
smoke jobs turn them on wholesale (``sptransx run --sanitize``,
``TrainingConfig(sanitize=True)``) while production training pays nothing.

State is thread-local (mirroring the ``no_grad`` machinery) and inherited
across ``os.fork`` by the multiprocess trainer's workers.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Tuple

import numpy as np

__all__ = ["SanitizerError", "sanitize", "sanitize_enabled"]


class SanitizerError(RuntimeError):
    """An invariant violation caught by the autograd sanitizer."""


class _SanitizeMode(threading.local):
    def __init__(self) -> None:
        self.enabled = False


_MODE = _SanitizeMode()


def sanitize_enabled() -> bool:
    """True when tape sanitation is active on this thread."""
    return _MODE.enabled


class _SanitizeToggle:
    """Return value of :func:`sanitize`: usable as a context manager."""

    def __init__(self, previous: bool):
        self._previous = previous

    def __enter__(self) -> "_SanitizeToggle":
        return self

    def __exit__(self, *exc) -> None:
        _MODE.enabled = self._previous


def sanitize(enabled: bool = True) -> _SanitizeToggle:
    """Switch tape sanitation on (or off).

    Takes effect immediately for the calling thread and stays set; the
    returned object may also be used as a context manager to restore the
    previous state on exit::

        repro.autograd.sanitize(enabled=True)      # sticky
        with repro.autograd.sanitize():            # scoped
            loss.backward()
    """
    toggle = _SanitizeToggle(_MODE.enabled)
    _MODE.enabled = bool(enabled)
    return toggle


def _describe(op: str, parents: Iterable) -> str:
    names = [p.name or "?" for p in parents]
    return f"op '{op}' (inputs: {', '.join(names) if names else 'none'})"


def _widest_float(arrays: Iterable[np.ndarray]) -> Optional[np.dtype]:
    widest: Optional[np.dtype] = None
    for arr in arrays:
        if np.issubdtype(arr.dtype, np.floating):
            if widest is None or arr.dtype.itemsize > widest.itemsize:
                widest = arr.dtype
    return widest


def _assert_finite(arr: np.ndarray, what: str, context: str) -> None:
    if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
        bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
        raise SanitizerError(
            f"sanitize: {bad} non-finite value{'s' if bad != 1 else ''} in "
            f"{what} of {context}"
        )


def check_forward(data: np.ndarray, parents: Tuple, op: str) -> None:
    """Audit a freshly computed forward output."""
    context = _describe(op, parents)
    _assert_finite(data, "forward output", context)
    if np.issubdtype(data.dtype, np.floating):
        widest = _widest_float(p.data for p in parents)
        if widest is not None and data.dtype.itemsize > widest.itemsize:
            raise SanitizerError(
                f"sanitize: silent dtype widening in {context}: inputs are "
                f"{widest} but the output is {data.dtype}"
            )


def wrap_backward(backward, parents: Tuple, op: str,
                  out_shape: Tuple[int, ...], out_dtype: np.dtype):
    """Wrap a backward closure with upstream- and parent-gradient audits."""

    def sanitized_backward(upstream: np.ndarray) -> None:
        context = _describe(op, parents)
        if upstream.shape != out_shape:
            raise SanitizerError(
                f"sanitize: upstream gradient shape {upstream.shape} does "
                f"not match output shape {out_shape} in backward of {context}"
            )
        _assert_finite(upstream, "upstream gradient", context)
        if (
            np.issubdtype(upstream.dtype, np.floating)
            and np.issubdtype(out_dtype, np.floating)
            and upstream.dtype.itemsize > out_dtype.itemsize
        ):
            raise SanitizerError(
                f"sanitize: gradient dtype {upstream.dtype} is wider than "
                f"the {out_dtype} forward output in backward of {context}"
            )
        backward(upstream)
        for parent in parents:
            if not parent.requires_grad:
                continue
            grad = parent._grad
            if grad is not None:
                if grad.shape != parent.data.shape:
                    raise SanitizerError(
                        f"sanitize: gradient shape {grad.shape} does not "
                        f"match parameter shape {parent.data.shape} after "
                        f"backward of {context}"
                    )
                _assert_finite(grad, "accumulated gradient", context)
                if (
                    np.issubdtype(grad.dtype, np.floating)
                    and np.issubdtype(parent.data.dtype, np.floating)
                    and grad.dtype.itemsize > parent.data.dtype.itemsize
                ):
                    raise SanitizerError(
                        f"sanitize: gradient dtype {grad.dtype} widens the "
                        f"{parent.data.dtype} parameter after backward of "
                        f"{context}"
                    )
            sparse = parent._sparse_grad
            if sparse is not None:
                values = getattr(sparse, "values", None)
                if isinstance(values, np.ndarray):
                    _assert_finite(values, "row-sparse gradient", context)

    return sanitized_backward
