"""Functional differentiable operators built on :class:`~repro.autograd.tensor.Tensor`.

These are the building blocks used by the embedding layers, the translational
score functions, and the losses.  Each op computes its forward value with
vectorized NumPy, registers an analytic FLOP count, and installs a backward
closure that pushes gradients to its inputs.

The two operators central to the paper are here:

* :func:`gather_rows` — the fine-grained embedding lookup whose backward is a
  scatter-add; this is the *dense baseline* path (TorchKGE-style).
* batched projections (:func:`bmm_vec`, :func:`row_dot`) and the distance
  functions shared by both the sparse and dense paths.

The SpMM operator itself lives in :mod:`repro.sparse.spmm` because it needs
the sparse-matrix containers; it produces ordinary :class:`Tensor` nodes that
interoperate with everything below.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.autograd.function import count_flops
from repro.autograd.tensor import Tensor, _unbroadcast

ArrayLike = Union[np.ndarray, Sequence, float, int]


def _to_tensor(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(np.asarray(x))


# --------------------------------------------------------------------------- #
# Elementwise ops
# --------------------------------------------------------------------------- #
def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    x = _to_tensor(x)
    out_data = np.exp(x.data)
    count_flops("exp", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * out_data)

    return Tensor._make(out_data, (x,), backward, "exp")


def log(x: Tensor, eps: float = 0.0) -> Tensor:
    """Elementwise natural logarithm of ``x + eps``."""
    x = _to_tensor(x)
    out_data = np.log(x.data + eps)
    count_flops("log", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad / (x.data + eps))

    return Tensor._make(out_data, (x,), backward, "log")


def sqrt(x: Tensor, eps: float = 0.0) -> Tensor:
    """Elementwise square root of ``x + eps`` (``eps`` guards the grad at 0)."""
    x = _to_tensor(x)
    out_data = np.sqrt(x.data + eps)
    count_flops("sqrt", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            safe = np.where(out_data > 0, out_data, 1.0)
            x.accumulate_grad(grad * 0.5 / safe)

    return Tensor._make(out_data, (x,), backward, "sqrt")


def absolute(x: Tensor) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the kink)."""
    x = _to_tensor(x)
    out_data = np.abs(x.data)
    count_flops("abs", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * np.sign(x.data))

    return Tensor._make(out_data, (x,), backward, "abs")


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    x = _to_tensor(x)
    mask = x.data > 0
    out_data = x.data * mask
    count_flops("relu", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * mask)

    return Tensor._make(out_data, (x,), backward, "relu")


def clamp_min(x: Tensor, minimum: float) -> Tensor:
    """Elementwise ``max(x, minimum)``."""
    x = _to_tensor(x)
    mask = x.data > minimum
    out_data = np.where(mask, x.data, minimum)
    count_flops("clamp_min", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * mask)

    return Tensor._make(out_data, (x,), backward, "clamp_min")


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum with broadcasting; ties route the gradient to ``a``."""
    a, b = _to_tensor(a), _to_tensor(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)
    count_flops("maximum", out_data.size)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * take_a, a.data.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * (~take_a), b.data.shape))

    return Tensor._make(out_data, (a, b), backward, "maximum")


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum with broadcasting; ties route the gradient to ``a``."""
    a, b = _to_tensor(a), _to_tensor(b)
    take_a = a.data <= b.data
    out_data = np.where(take_a, a.data, b.data)
    count_flops("minimum", out_data.size)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * take_a, a.data.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * (~take_a), b.data.shape))

    return Tensor._make(out_data, (a, b), backward, "minimum")


def sigmoid(x: Tensor) -> Tensor:
    """Numerically-stable logistic sigmoid."""
    x = _to_tensor(x)
    out_data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60))),
        np.exp(np.clip(x.data, -60, 60)) / (1.0 + np.exp(np.clip(x.data, -60, 60))),
    )
    count_flops("sigmoid", 4 * x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward, "sigmoid")


def softplus(x: Tensor) -> Tensor:
    """Numerically-stable ``log(1 + exp(x))``."""
    x = _to_tensor(x)
    out_data = np.logaddexp(0.0, x.data)
    count_flops("softplus", 4 * x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60)))
            x.accumulate_grad(grad * sig)

    return Tensor._make(out_data, (x,), backward, "softplus")


def logsigmoid(x: Tensor) -> Tensor:
    """Numerically-stable ``log(sigmoid(x)) = -softplus(-x)``."""
    return -softplus(-_to_tensor(x))


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = _to_tensor(x)
    out_data = np.tanh(x.data)
    count_flops("tanh", 4 * x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * (1.0 - out_data ** 2))

    return Tensor._make(out_data, (x,), backward, "tanh")


def sin(x: Tensor) -> Tensor:
    """Elementwise sine (used by the RotatE phase parameterisation)."""
    x = _to_tensor(x)
    out_data = np.sin(x.data)
    count_flops("sin", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * np.cos(x.data))

    return Tensor._make(out_data, (x,), backward, "sin")


def cos(x: Tensor) -> Tensor:
    """Elementwise cosine (used by the RotatE phase parameterisation)."""
    x = _to_tensor(x)
    out_data = np.cos(x.data)
    count_flops("cos", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * -np.sin(x.data))

    return Tensor._make(out_data, (x,), backward, "cos")


def frac(x: Tensor) -> Tensor:
    """Fractional part ``x - floor(x)``.

    The floor is piecewise constant, so the gradient passes straight through —
    exactly the behaviour TorusE relies on when training on the torus.
    """
    x = _to_tensor(x)
    out_data = x.data - np.floor(x.data)
    count_flops("frac", 2 * x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad)

    return Tensor._make(out_data, (x,), backward, "frac")


# --------------------------------------------------------------------------- #
# Gathers, batched products, reductions
# --------------------------------------------------------------------------- #
def gather_rows(weight: Tensor, indices: np.ndarray,
                sparse_grad: bool = False) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add backward.

    This is the fine-grained embedding extraction the paper identifies as the
    training bottleneck (Figure 2): the forward copies one row per index and
    the backward scatters one gradient row per index (``EmbeddingBackward``).
    Byte-traffic counters feed the cache-behaviour model.

    With ``sparse_grad=True`` (and a leaf ``weight``) the backward skips the
    full-table densification and emits a
    :class:`~repro.sparse.rowsparse.RowSparseGrad` over just the gathered
    rows, so the gradient cost scales with ``len(indices)`` instead of the
    table height.
    """
    weight = _to_tensor(weight)
    idx = np.asarray(indices, dtype=np.int64)
    if idx.ndim != 1:
        raise ValueError(f"indices must be 1-D, got shape {idx.shape}")
    if idx.size and (idx.min() < 0 or idx.max() >= weight.shape[0]):
        raise IndexError(
            f"index out of range: min={idx.min()}, max={idx.max()}, rows={weight.shape[0]}"
        )
    out_data = weight.data[idx]
    row_bytes = weight.data.itemsize * int(np.prod(weight.data.shape[1:]))
    unique_rows = len(np.unique(idx)) if idx.size else 0
    # The gathered copy is freshly written memory (write-allocate traffic), so it
    # counts towards the compulsory-miss volume alongside the rows read.
    count_flops("gather", 0, bytes_streamed=out_data.nbytes,
                bytes_unique=unique_rows * row_bytes + out_data.nbytes)

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        if sparse_grad and weight.is_leaf:
            from repro.sparse.rowsparse import RowSparseGrad

            rsg = RowSparseGrad.from_rows(idx, grad, weight.data.shape)
            count_flops("scatter_add[rowsparse]", grad.size,
                        bytes_streamed=grad.nbytes + rsg.values.nbytes,
                        bytes_unique=unique_rows * row_bytes + rsg.values.nbytes)
            weight.accumulate_grad(rsg)
            return
        full = np.zeros_like(weight.data)
        np.add.at(full, idx, grad)
        # EmbeddingBackward materialises a full-table gradient: its write is
        # compulsory traffic, which is exactly why the scatter path is costly.
        count_flops("scatter_add", grad.size,
                    bytes_streamed=grad.nbytes + full.nbytes,
                    bytes_unique=unique_rows * row_bytes + full.nbytes)
        weight.accumulate_grad(full)

    return Tensor._make(np.array(out_data, copy=True), (weight,), backward, "gather")


def bmm_vec(mats: Tensor, vecs: Tensor) -> Tensor:
    """Batched matrix-vector product: ``(B, k, d) x (B, d) -> (B, k)``.

    Used by TransR's per-relation projection ``M_r (h - t)`` and by TransD's
    dynamic mapping.
    """
    mats, vecs = _to_tensor(mats), _to_tensor(vecs)
    if mats.ndim != 3 or vecs.ndim != 2:
        raise ValueError(
            f"bmm_vec expects (B,k,d) and (B,d), got {mats.shape} and {vecs.shape}"
        )
    if mats.shape[0] != vecs.shape[0] or mats.shape[2] != vecs.shape[1]:
        raise ValueError(f"incompatible shapes {mats.shape} and {vecs.shape}")
    out_data = np.einsum("bkd,bd->bk", mats.data, vecs.data, optimize=True)
    count_flops("bmm_vec", 2 * out_data.size * mats.shape[2],
                bytes_streamed=mats.nbytes + vecs.nbytes + out_data.nbytes)

    def backward(grad: np.ndarray) -> None:
        if mats.requires_grad:
            mats.accumulate_grad(np.einsum("bk,bd->bkd", grad, vecs.data, optimize=True))
        if vecs.requires_grad:
            vecs.accumulate_grad(np.einsum("bk,bkd->bd", grad, mats.data, optimize=True))

    return Tensor._make(out_data, (mats, vecs), backward, "bmm_vec")


def row_dot(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot product: ``(B, d) x (B, d) -> (B,)``.

    Used by TransH's hyperplane projection ``(w_r . x) w_r``.
    """
    a, b = _to_tensor(a), _to_tensor(b)
    if a.shape != b.shape or a.ndim != 2:
        raise ValueError(f"row_dot expects matching (B,d) inputs, got {a.shape} and {b.shape}")
    out_data = np.einsum("bd,bd->b", a.data, b.data, optimize=True)
    count_flops("row_dot", 2 * a.size)

    def backward(grad: np.ndarray) -> None:
        g = grad[:, None]
        if a.requires_grad:
            a.accumulate_grad(g * b.data)
        if b.requires_grad:
            b.accumulate_grad(g * a.data)

    return Tensor._make(out_data, (a, b), backward, "row_dot")


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``; the gradient splits back."""
    tensors = [_to_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concatenate requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t.accumulate_grad(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward, "concatenate")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis; the gradient unstacks."""
    tensors = [_to_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t.accumulate_grad(np.take(grad, i, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward, "stack")


# --------------------------------------------------------------------------- #
# Distances / norms used by the translational score functions
# --------------------------------------------------------------------------- #
def lp_norm(x: Tensor, p: int = 2, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Row-wise L1 or L2 norm along ``axis``.

    ``p=2`` uses a small ``eps`` under the square root so the gradient stays
    finite at exactly-zero rows (the same guard PyTorch's ``vector_norm``
    applies to subgradients).
    """
    x = _to_tensor(x)
    if p == 1:
        out_data = np.abs(x.data).sum(axis=axis)
        count_flops("l1_norm", 2 * x.size)

        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                g = np.expand_dims(grad, axis=axis)
                x.accumulate_grad(g * np.sign(x.data))

        return Tensor._make(out_data, (x,), backward, "l1_norm")
    if p == 2:
        sq = (x.data ** 2).sum(axis=axis)
        out_data = np.sqrt(sq + eps)
        count_flops("l2_norm", 3 * x.size)

        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                g = np.expand_dims(grad / out_data, axis=axis)
                x.accumulate_grad(g * x.data)

        return Tensor._make(out_data, (x,), backward, "l2_norm")
    raise ValueError(f"p must be 1 or 2, got {p}")


def squared_l2(x: Tensor, axis: int = -1) -> Tensor:
    """Row-wise squared L2 norm (no square root), used by TransC-style scores."""
    x = _to_tensor(x)
    out_data = (x.data ** 2).sum(axis=axis)
    count_flops("squared_l2", 2 * x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = np.expand_dims(grad, axis=axis)
            x.accumulate_grad(2.0 * g * x.data)

    return Tensor._make(out_data, (x,), backward, "squared_l2")


def torus_distance(x: Tensor, p: int = 2, axis: int = -1) -> Tensor:
    """Toroidal (wraparound) L1/L2 dissimilarity used by TorusE.

    Each component is first wrapped to the unit torus with ``frac`` and the
    per-component distance is ``min(y, 1 - y)``; components are then reduced
    with an L1 sum (``p=1``) or a squared-L2 sum (``p=2``), matching the
    ``l2_torus_dissimilarity`` kernel highlighted in the paper's Figure 2.
    """
    x = _to_tensor(x)
    y = x.data - np.floor(x.data)
    take_y = y <= 0.5
    d = np.where(take_y, y, 1.0 - y)
    if p == 1:
        out_data = d.sum(axis=axis)
    elif p == 2:
        out_data = (d ** 2).sum(axis=axis)
    else:
        raise ValueError(f"p must be 1 or 2, got {p}")
    count_flops("torus_distance", 5 * x.size)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = np.expand_dims(grad, axis=axis)
        # d/dy min(y, 1-y) is +1 below the fold and -1 above; frac passes
        # the gradient through unchanged.
        local = np.where(take_y, 1.0, -1.0)
        if p == 1:
            x.accumulate_grad(g * local)
        else:
            x.accumulate_grad(g * 2.0 * d * local)

    return Tensor._make(out_data, (x,), backward, "torus_distance")


def normalize_rows(x: Tensor, p: int = 2, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Differentiable row normalisation ``x / ||x||_p`` (used by TransH's normals)."""
    x = _to_tensor(x)
    norms = lp_norm(x, p=p, axis=axis, eps=eps)
    # Reshape norms for broadcasting against x.
    expand_shape = list(x.shape)
    expand_shape[axis] = 1
    return x * (norms.reshape(expand_shape) ** -1.0)


def dropout(x: Tensor, rate: float, rng: Optional[np.random.Generator] = None,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``rate`` is 0."""
    x = _to_tensor(x)
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    out_data = x.data * mask
    count_flops("dropout", x.size)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate_grad(grad * mask)

    return Tensor._make(out_data, (x,), backward, "dropout")
