"""Tape bookkeeping shared by every differentiable operation.

Two concerns live here:

* **FLOP accounting** — each primitive op reports an analytic floating-point
  operation count.  The profiling layer (``repro.profiling.flops``) and the
  Table-6 benchmark read these counters; models themselves never need to.
* **Memory-traffic accounting** — each op may additionally report how many
  bytes it streamed and how many *unique* parameter bytes it touched.  The
  cache-behaviour model (Table 7) is built on these numbers.

Counters are intentionally global and cheap: a handful of integer additions
per op, negligible next to the NumPy kernels they describe.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass(eq=False)
class OpCounters:
    """Aggregated per-op-name counters collected during a region of execution."""

    flops: int = 0
    bytes_streamed: int = 0
    bytes_unique: int = 0
    calls: int = 0
    #: Wall-clock seconds attributed to instrumented kernels (only kernels
    #: that time themselves contribute; pure bookkeeping ops report 0).
    seconds: float = 0.0
    per_op: Dict[str, int] = field(default_factory=dict)
    #: Streamed bytes attributed per op name.  Lets the cache-model and
    #: profiling benchmarks separate the row-sparse gradient path (op names
    #: tagged ``[rowsparse]``) from the dense path it replaces.
    per_op_bytes: Dict[str, int] = field(default_factory=dict)
    #: Measured wall-time attributed per op name.  Timed kernels (the SpMM
    #: backends, the fused loss, the tiled ranking kernel) report here so the
    #: benchmarks — and a future cost-model planner — can pair each kernel's
    #: analytic FLOP/byte figures with its observed seconds.
    per_op_seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, op_name: str, flops: int, bytes_streamed: int = 0, bytes_unique: int = 0,
            seconds: float = 0.0) -> None:
        self.flops += int(flops)
        self.bytes_streamed += int(bytes_streamed)
        self.bytes_unique += int(bytes_unique)
        self.calls += 1
        self.per_op[op_name] = self.per_op.get(op_name, 0) + int(flops)
        if bytes_streamed:
            self.per_op_bytes[op_name] = (
                self.per_op_bytes.get(op_name, 0) + int(bytes_streamed)
            )
        if seconds:
            self.seconds += float(seconds)
            self.per_op_seconds[op_name] = (
                self.per_op_seconds.get(op_name, 0.0) + float(seconds)
            )

    def merge(self, other: "OpCounters") -> None:
        self.flops += other.flops
        self.bytes_streamed += other.bytes_streamed
        self.bytes_unique += other.bytes_unique
        self.calls += other.calls
        self.seconds += other.seconds
        for k, v in other.per_op.items():
            self.per_op[k] = self.per_op.get(k, 0) + v
        for k, v in other.per_op_bytes.items():
            self.per_op_bytes[k] = self.per_op_bytes.get(k, 0) + v
        for k, v in other.per_op_seconds.items():
            self.per_op_seconds[k] = self.per_op_seconds.get(k, 0.0) + v


class _CounterState(threading.local):
    def __init__(self) -> None:
        self.active: list[OpCounters] = []
        self.global_counters = OpCounters()


_state = _CounterState()


def count_flops(op_name: str, flops: int, bytes_streamed: int = 0, bytes_unique: int = 0,
                seconds: float = 0.0) -> None:
    """Record ``flops`` (and optional byte traffic / wall-time) against every
    active counter.

    Called by the primitive ops in :mod:`repro.autograd.tensor` /
    :mod:`repro.autograd.ops` and by the sparse kernels.  ``seconds`` is the
    kernel's own measured wall-clock time; only instrumented kernels pass it.
    """
    _state.global_counters.add(op_name, flops, bytes_streamed, bytes_unique, seconds)
    for counters in _state.active:
        counters.add(op_name, flops, bytes_streamed, bytes_unique, seconds)


@contextlib.contextmanager
def flop_counter() -> Iterator[OpCounters]:
    """Context manager collecting op counters for the enclosed region.

    Example
    -------
    >>> from repro.autograd import flop_counter
    >>> with flop_counter() as counters:
    ...     _ = model.loss(batch)          # doctest: +SKIP
    >>> counters.flops                      # doctest: +SKIP
    """
    counters = OpCounters()
    _state.active.append(counters)
    try:
        yield counters
    finally:
        _state.active.remove(counters)


def reset_flops() -> None:
    """Reset the process-global counters (does not affect active contexts)."""
    _state.global_counters = OpCounters()


def get_flops() -> int:
    """Return the process-global FLOP count accumulated since the last reset."""
    return _state.global_counters.flops


def get_global_counters() -> OpCounters:
    """Return the process-global :class:`OpCounters` object (live view)."""
    return _state.global_counters
