"""Dense tensor with tape-based reverse-mode automatic differentiation.

Design
------
Each :class:`Tensor` wraps a ``numpy.ndarray`` and, when gradients are
enabled, remembers the tensors it was computed from plus a closure that
propagates an upstream gradient to them.  :meth:`Tensor.backward` performs a
topological sort of that tape and runs the closures in reverse order — the
same define-by-run model PyTorch uses, restricted to what translational KGE
training needs.

Broadcasting is fully supported: gradients flowing into a broadcast operand
are reduced back to the operand's shape with :func:`_unbroadcast`.

The engine is deliberately small (a few dozen primitives).  Everything the
models need that is not a method here lives as a functional op in
:mod:`repro.autograd.ops`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd import sanitizer as _sanitizer
from repro.autograd.function import count_flops

Number = Union[int, float, np.integer, np.floating]
TensorLike = Union["Tensor", np.ndarray, Number, Sequence]


class _GradMode(threading.local):
    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _grad_mode.enabled


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables tape construction (like ``torch.no_grad``)."""
    prev = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = prev


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables tape construction inside a ``no_grad`` block."""
    prev = _grad_mode.enabled
    _grad_mode.enabled = True
    try:
        yield
    finally:
        _grad_mode.enabled = prev


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting.

    The gradient of a broadcast operand is the upstream gradient summed over
    every axis that was expanded.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: TensorLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype == object:
        raise TypeError(f"cannot build a Tensor from object array: {value!r}")
    return arr


class Tensor:
    """A dense array node in the autograd tape.

    Parameters
    ----------
    data:
        Array-like payload.  Integer inputs are kept as integers (useful for
        index tensors); floating-point inputs keep their dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional identifier used in error messages and profiling reports.
    """

    __slots__ = ("data", "_grad", "_sparse_grad", "requires_grad", "name",
                 "_parents", "_backward", "_op")

    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor.__radd__

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        arr = _as_array(data)
        if requires_grad and not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self._grad: Optional[np.ndarray] = None
        self._sparse_grad = None  # Optional[RowSparseGrad]
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.name = name
        self._parents: Tuple[Tensor, ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._op: str = "leaf"

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Create a non-leaf tensor recording its provenance when grads are on."""
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        if _sanitizer.sanitize_enabled():
            # Every op funnels through _make, so this one hook audits the
            # whole tape: forward finiteness/dtype now, gradients when the
            # wrapped closure fires.
            _sanitizer.check_forward(out.data, parents, op)
            if requires:
                backward = _sanitizer.wrap_backward(
                    backward, parents, op, out.data.shape, out.data.dtype
                )
        if requires:
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
            out._op = op
        return out

    @classmethod
    def zeros(cls, shape, requires_grad: bool = False, dtype=np.float64) -> "Tensor":
        """All-zeros tensor of ``shape``."""
        return cls(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @classmethod
    def ones(cls, shape, requires_grad: bool = False, dtype=np.float64) -> "Tensor":
        """All-ones tensor of ``shape``."""
        return cls(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @classmethod
    def randn(cls, shape, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        """Standard-normal tensor (optionally scaled) of ``shape``."""
        rng = rng if rng is not None else np.random.default_rng()
        return cls(rng.standard_normal(shape) * scale, requires_grad=requires_grad)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def is_leaf(self) -> bool:
        return self._backward is None

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python scalar."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self):
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing the same data, cut off from the tape."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def copy(self) -> "Tensor":
        """Return a leaf tensor with a copied payload."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        name = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, op={self._op}{grad_flag}{name})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Gradient plumbing
    # ------------------------------------------------------------------ #
    @property
    def grad(self) -> Optional[np.ndarray]:
        """The accumulated gradient as a dense array.

        Row-sparse gradients (see :class:`~repro.sparse.rowsparse.RowSparseGrad`)
        are densified transparently on first access, so code written against the
        dense contract keeps working unchanged.  Sparse-aware consumers (the
        optimizers) should read :attr:`sparse_grad` *before* touching this
        property — the densification is one-way.
        """
        if self._grad is None and self._sparse_grad is not None:
            self._grad = self._sparse_grad.to_dense(dtype=self.data.dtype)
            self._sparse_grad = None
        return self._grad

    @grad.setter
    def grad(self, value) -> None:
        if value is None:
            self._grad = None
            self._sparse_grad = None
        elif getattr(value, "is_row_sparse", False):
            if tuple(value.shape) != self.data.shape:
                raise ValueError(
                    f"row-sparse gradient shape {tuple(value.shape)} does not "
                    f"match tensor shape {self.data.shape}"
                )
            self._sparse_grad = value
            self._grad = None
        else:
            self._grad = np.asarray(value)
            self._sparse_grad = None

    @property
    def sparse_grad(self):
        """The accumulated gradient in row-sparse form, or ``None``.

        Returns a :class:`~repro.sparse.rowsparse.RowSparseGrad` only when
        *every* gradient contribution this backward pass was row-sparse;
        any dense contribution collapses the accumulation to dense.
        """
        return self._sparse_grad

    @property
    def has_grad(self) -> bool:
        """Whether any gradient (dense or row-sparse) has been accumulated.

        Cheaper than ``tensor.grad is not None``, which densifies a pending
        row-sparse gradient as a side effect.
        """
        return self._grad is not None or self._sparse_grad is not None

    def zero_grad(self) -> None:
        """Clear the accumulated gradient (dense and row-sparse)."""
        self._grad = None
        self._sparse_grad = None

    def accumulate_grad(self, grad) -> None:
        """Add ``grad`` into :attr:`grad`, allocating on first use.

        Accepts a dense ``ndarray`` or a row-sparse gradient (any object with
        ``is_row_sparse = True`` following the
        :class:`~repro.sparse.rowsparse.RowSparseGrad` contract).  Sparse
        contributions stay sparse until a dense contribution arrives, at which
        point the accumulation collapses to a dense array.
        """
        if getattr(grad, "is_row_sparse", False):
            if tuple(grad.shape) != self.data.shape:
                raise ValueError(
                    f"row-sparse gradient shape {tuple(grad.shape)} does not match "
                    f"tensor shape {self.data.shape}"
                )
            if self._grad is not None:
                grad.add_to_dense(self._grad)
            elif self._sparse_grad is not None:
                self._sparse_grad = self._sparse_grad.merge(grad)
            else:
                self._sparse_grad = grad
            return
        if grad.shape != self.data.shape:
            grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if self._sparse_grad is not None:
            # Mixed accumulation: densify the pending sparse part first.
            self._grad = self._sparse_grad.to_dense(dtype=self.data.dtype)
            self._sparse_grad = None
        if self._grad is None:
            self._grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self._grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1.0`` for scalar tensors; it is
            required for non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only valid for scalar "
                    f"outputs, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack.append((parent, False))

        build(self)

        # Seed and propagate.  ``accumulate_grad`` on intermediates stores the
        # running upstream gradient; backward closures read it from there.
        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is None:
                continue
            upstream = node.grad
            if upstream is None:
                continue
            node._backward(upstream)
            if not node.is_leaf and node is not self:
                # Free intermediate gradients eagerly; leaves keep theirs.
                node.grad = None
        if not self.is_leaf:
            self.grad = None

    # ------------------------------------------------------------------ #
    # Arithmetic primitives
    # ------------------------------------------------------------------ #
    def _coerce(self, other: TensorLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, dtype=self.data.dtype))

    def __add__(self, other: TensorLike) -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data + other_t.data
        count_flops("add", out_data.size)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad, self.data.shape))
            if other_t.requires_grad:
                other_t.accumulate_grad(_unbroadcast(grad, other_t.data.shape))

        return Tensor._make(out_data, (self, other_t), backward, "add")

    def __radd__(self, other: TensorLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: TensorLike) -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data - other_t.data
        count_flops("sub", out_data.size)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad, self.data.shape))
            if other_t.requires_grad:
                other_t.accumulate_grad(_unbroadcast(-grad, other_t.data.shape))

        return Tensor._make(out_data, (self, other_t), backward, "sub")

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data * other_t.data
        count_flops("mul", out_data.size)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad * other_t.data, self.data.shape))
            if other_t.requires_grad:
                other_t.accumulate_grad(_unbroadcast(grad * self.data, other_t.data.shape))

        return Tensor._make(out_data, (self, other_t), backward, "mul")

    def __rmul__(self, other: TensorLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data / other_t.data
        count_flops("div", out_data.size)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad / other_t.data, self.data.shape))
            if other_t.requires_grad:
                other_t.accumulate_grad(
                    _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.data.shape)
                )

        return Tensor._make(out_data, (self, other_t), backward, "div")

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        count_flops("neg", out_data.size)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(-grad)

        return Tensor._make(out_data, (self,), backward, "neg")

    def __pow__(self, exponent: Number) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("Tensor exponents are not supported; use a Python scalar")
        out_data = self.data ** exponent
        count_flops("pow", out_data.size * 2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data @ other_t.data
        # 2*m*n*k flops for (m,k) @ (k,n)
        if self.data.ndim >= 2 and other_t.data.ndim >= 2:
            k = self.data.shape[-1]
            count_flops("matmul", 2 * out_data.size * k,
                        bytes_streamed=self.data.nbytes + other_t.data.nbytes + out_data.nbytes)
        else:
            count_flops("matmul", 2 * max(self.data.size, other_t.data.size))

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if self.requires_grad:
                if a.ndim == 1 and b.ndim == 2:
                    self.accumulate_grad(grad @ b.T)
                elif a.ndim == 2 and b.ndim == 1:
                    self.accumulate_grad(np.outer(grad, b))
                else:
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                    self.accumulate_grad(_unbroadcast(grad_a, a.shape))
            if other_t.requires_grad:
                if a.ndim == 1 and b.ndim == 2:
                    other_t.accumulate_grad(np.outer(a, grad))
                elif a.ndim == 2 and b.ndim == 1:
                    other_t.accumulate_grad(a.T @ grad)
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ grad
                    other_t.accumulate_grad(_unbroadcast(grad_b, b.shape))

        return Tensor._make(out_data, (self, other_t), backward, "matmul")

    # ------------------------------------------------------------------ #
    # Reductions and shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when ``axis is None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        count_flops("sum", self.data.size)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self.accumulate_grad(np.broadcast_to(g, self.data.shape).astype(self.data.dtype))

        return Tensor._make(np.asarray(out_data), (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        if axis is None:
            denom = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            denom = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def reshape(self, *shape) -> "Tensor":
        """Reshape without copying; gradient reshapes back."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad.reshape(self.data.shape))

        return Tensor._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        """Permute dimensions (reverse order when no axes given)."""
        if len(axes) == 0:
            axes_tuple = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_tuple = tuple(axes[0])
        else:
            axes_tuple = tuple(axes)
        out_data = np.transpose(self.data, axes_tuple)
        inverse = tuple(np.argsort(axes_tuple))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        """Basic/advanced indexing; the backward scatters into the source shape."""
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self.accumulate_grad(full)

        return Tensor._make(np.array(out_data, copy=True), (self,), backward, "getitem")

    # ------------------------------------------------------------------ #
    # Comparison helpers (non-differentiable, return plain arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: TensorLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: TensorLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: TensorLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: TensorLike) -> np.ndarray:
        return self.data <= _as_array(other)
