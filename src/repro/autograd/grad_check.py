"""Finite-difference gradient verification.

Used throughout the test-suite to certify that every analytic backward rule —
including the SpMM backward of Appendix G (``dL/dX = A^T dL/dC``) — matches a
central-difference estimate.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int = 0,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[wrt]``.

    Parameters
    ----------
    fn:
        Function mapping tensors to a tensor; its output is reduced with a sum
        so the Jacobian collapses to a gradient.
    inputs:
        Input tensors; only ``inputs[wrt]`` is perturbed.
    eps:
        Perturbation half-width.
    """
    target = inputs[wrt]
    base = target.data.astype(np.float64).copy()
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    grad_flat = grad.reshape(-1)

    def evaluate() -> float:
        out = fn(*inputs)
        return float(np.asarray(out.data, dtype=np.float64).sum())

    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        target.data = flat.reshape(base.shape)
        plus = evaluate()
        flat[i] = original - eps
        target.data = flat.reshape(base.shape)
        minus = evaluate()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    target.data = base
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-5,
    rtol: float = 1e-3,
) -> Tuple[bool, float]:
    """Compare analytic and numerical gradients for every grad-requiring input.

    Returns
    -------
    ok, max_error:
        ``ok`` is True when every gradient matches within tolerance;
        ``max_error`` is the largest absolute deviation observed.
    """
    inputs = list(inputs)
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()

    max_err = 0.0
    ok = True
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, wrt=i, eps=eps)
        err = np.max(np.abs(analytic - numeric)) if analytic.size else 0.0
        max_err = max(max_err, float(err))
        tol = atol + rtol * np.max(np.abs(numeric)) if numeric.size else atol
        if err > tol:
            ok = False
    return ok, max_err
