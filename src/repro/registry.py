"""Spec-driven model registry: one source of truth for model construction.

Historically the library kept two module-level dicts (``SPARSE_MODELS`` in
:mod:`repro.models` and ``DENSE_MODELS`` in :mod:`repro.baselines`) and every
consumer — the CLI, the checkpoint restorer, the benchmarks — reimplemented
its own kwargs plumbing on top of them.  Checkpoint reconstruction even went
through a name-mangled ``{"sp" + name} / {"dense" + name}`` lookup that
silently dropped hyperparameters such as the SpMM backend and the
dissimilarity.

This module replaces all of that with three pieces:

* :func:`register_model` — a class decorator applied at model definition
  sites.  Each registration carries **capability metadata**
  (:class:`ModelCapabilities`): which optional constructor keywords the model
  accepts (``relation_dim``, ``backend``, ``dissimilarity``), whether it
  supports the row-sparse gradient pipeline, and its formulation tag.
* :class:`ModelSpec` — a plain dataclass naming a registered model plus its
  hyperparameters.  ``to_dict()``/``from_dict()`` round-trip losslessly
  through JSON, so a spec can live inside checkpoint metadata or travel over
  the serving API.
* :func:`build_model` — constructs a model from a spec, passing exactly the
  keywords the capability metadata declares.  :func:`spec_from_model` is the
  inverse: it recovers the spec from a live model instance.

The legacy ``SPARSE_MODELS``/``DENSE_MODELS`` dicts are now *views* derived
from this registry (see :func:`models_by_formulation`), kept for callers that
only need a name → class mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple, Type

#: The two computational formulations the paper compares.
FORMULATIONS = ("sparse", "dense")


class UnknownModelError(LookupError):
    """Raised when a spec names a (model, formulation) pair never registered.

    Subclasses ``LookupError`` rather than ``KeyError`` so ``str(exc)`` is the
    plain message (``KeyError.__str__`` wraps it in quotes, which leaks into
    CLI error output).
    """


@dataclass(frozen=True)
class ModelCapabilities:
    """What a registered model class can be configured with.

    Attributes
    ----------
    accepts_relation_dim:
        Constructor takes ``relation_dim`` (projection models: TransR).
    accepts_backend:
        Constructor takes a ``backend`` keyword selecting the SpMM backend.
    accepts_dissimilarity:
        Constructor takes a ``dissimilarity`` keyword.
    supports_sparse_grads:
        The model routes ``set_sparse_grads(True)`` into row-sparse SpMM /
        gather backwards (rather than silently ignoring the flag).
    formulation_tag:
        Free-form computational-formulation label (``"hrt-spmm"``,
        ``"dense-gather"``, ...) surfaced by ``sptransx info``.
    default_dissimilarity:
        The dissimilarity the constructor uses when none is specified
        (``None`` for non-translational models).
    """

    accepts_relation_dim: bool = False
    accepts_backend: bool = False
    accepts_dissimilarity: bool = False
    supports_sparse_grads: bool = False
    accepts_partitions: bool = False
    formulation_tag: str = ""
    default_dissimilarity: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "accepts_relation_dim": self.accepts_relation_dim,
            "accepts_backend": self.accepts_backend,
            "accepts_dissimilarity": self.accepts_dissimilarity,
            "supports_sparse_grads": self.supports_sparse_grads,
            "accepts_partitions": self.accepts_partitions,
            "formulation_tag": self.formulation_tag,
            "default_dissimilarity": self.default_dissimilarity,
        }


@dataclass(frozen=True)
class RegistryEntry:
    """One registered (name, formulation) → class binding."""

    name: str
    formulation: str
    cls: Type
    capabilities: ModelCapabilities


#: ``(name, formulation) -> RegistryEntry``; populated by :func:`register_model`
#: decorators at import time of :mod:`repro.models` / :mod:`repro.baselines`.
_REGISTRY: Dict[Tuple[str, str], RegistryEntry] = {}
#: Reverse map for :func:`spec_from_model`.
_ENTRY_BY_CLASS: Dict[Type, RegistryEntry] = {}


def register_model(name: str, formulation: str, *,
                   accepts_relation_dim: bool = False,
                   accepts_backend: bool = False,
                   accepts_dissimilarity: bool = False,
                   supports_sparse_grads: bool = False,
                   accepts_partitions: bool = False,
                   formulation_tag: str = "",
                   default_dissimilarity: Optional[str] = None) -> Callable[[Type], Type]:
    """Class decorator registering a KGE model under ``(name, formulation)``.

    .. code-block:: python

        @register_model("transe", "sparse", accepts_backend=True,
                        accepts_dissimilarity=True, supports_sparse_grads=True,
                        formulation_tag="hrt-spmm", default_dissimilarity="L2")
        class SpTransE(TranslationalModel):
            ...

    Re-registering the same key raises — duplicate names would make
    checkpoint reconstruction ambiguous.
    """
    if formulation not in FORMULATIONS:
        raise ValueError(f"formulation must be one of {FORMULATIONS}, got {formulation!r}")
    # Lookups (get_entry, ModelSpec) lowercase the name; normalise at
    # registration too so no spelling can create an unreachable entry.
    name = str(name).lower()

    capabilities = ModelCapabilities(
        accepts_relation_dim=accepts_relation_dim,
        accepts_backend=accepts_backend,
        accepts_dissimilarity=accepts_dissimilarity,
        supports_sparse_grads=supports_sparse_grads,
        accepts_partitions=accepts_partitions,
        formulation_tag=formulation_tag,
        default_dissimilarity=default_dissimilarity,
    )

    def decorator(cls: Type) -> Type:
        key = (name, formulation)
        existing = _REGISTRY.get(key)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"model {name!r} ({formulation}) already registered to "
                f"{existing.cls.__name__}; cannot rebind to {cls.__name__}"
            )
        entry = RegistryEntry(name=name, formulation=formulation, cls=cls,
                              capabilities=capabilities)
        _REGISTRY[key] = entry
        _ENTRY_BY_CLASS[cls] = entry
        return cls

    return decorator


def _ensure_models_imported() -> None:
    """Import the model packages so their decorators have run.

    The registry module itself must not import :mod:`repro.models` at top
    level (the model modules import *us* for the decorator); instead the
    lookup functions trigger the imports lazily.
    """
    import repro.baselines  # noqa: F401  (registration side effect)
    import repro.models  # noqa: F401


def get_entry(name: str, formulation: str) -> RegistryEntry:
    """Look up a registration; raises :class:`UnknownModelError` with context."""
    _ensure_models_imported()
    entry = _REGISTRY.get((str(name).lower(), formulation))
    if entry is None:
        available = sorted(n for n, f in _REGISTRY if f == formulation)
        raise UnknownModelError(
            f"no {formulation!r} implementation registered for model {name!r}; "
            f"available: {available}"
        )
    return entry


def iter_entries() -> Iterator[RegistryEntry]:
    """All registrations, ordered by (name, formulation)."""
    _ensure_models_imported()
    for key in sorted(_REGISTRY):
        yield _REGISTRY[key]


def models_by_formulation(formulation: str) -> Dict[str, Type]:
    """Plain ``name -> class`` view (the legacy SPARSE_MODELS/DENSE_MODELS shape)."""
    _ensure_models_imported()
    return {name: entry.cls for (name, f), entry in sorted(_REGISTRY.items())
            if f == formulation}


def registry_summary() -> Dict[str, Dict[str, object]]:
    """JSON-friendly capability table keyed ``"name/formulation"`` (for ``info``)."""
    return {
        f"{entry.name}/{entry.formulation}": {
            "class": entry.cls.__name__,
            **entry.capabilities.to_dict(),
        }
        for entry in iter_entries()
    }


@dataclass
class ModelSpec:
    """A complete, serialisable recipe for constructing a model.

    ``relation_dim``, ``backend``, and ``dissimilarity`` are optional: ``None``
    means "use the constructor default".  ``to_dict`` omits ``None`` fields so
    round-tripped specs stay minimal; ``from_dict`` ignores unknown keys so
    future spec versions remain loadable.
    """

    model: str
    formulation: str
    n_entities: int
    n_relations: int
    embedding_dim: int
    relation_dim: Optional[int] = None
    backend: Optional[str] = None
    dissimilarity: Optional[str] = None
    sparse_grads: bool = False
    partitions: Optional[int] = None
    #: Serving-time ANN index kind (``"ivf"``) built at artifact-export time;
    #: not a constructor argument — :func:`build_model` ignores it and the
    #: export/serve layers consume it (see :mod:`repro.ann`).
    ann: Optional[str] = None
    #: Default probe width for ANN serving (``None`` = auto-chosen at build
    #: time for a target recall and recorded in the index manifest).
    nprobe: Optional[int] = None
    version: int = field(default=1, compare=False)

    def __post_init__(self) -> None:
        self.model = str(self.model).lower()
        self.formulation = str(self.formulation)
        if self.formulation not in FORMULATIONS:
            raise ValueError(
                f"formulation must be one of {FORMULATIONS}, got {self.formulation!r}"
            )
        for attr in ("n_entities", "n_relations", "embedding_dim"):
            value = int(getattr(self, attr))
            if value <= 0:
                raise ValueError(f"{attr} must be positive, got {value}")
            setattr(self, attr, value)
        if self.relation_dim is not None:
            self.relation_dim = int(self.relation_dim)
        if self.partitions is not None:
            self.partitions = int(self.partitions)
            if self.partitions < 1:
                raise ValueError(f"partitions must be >= 1, got {self.partitions}")
            if self.partitions == 1:
                # P=1 is the unpartitioned layout; normalise so specs compare
                # and round-trip canonically.
                self.partitions = None
        if self.ann is not None:
            self.ann = str(self.ann).lower()
        if self.nprobe is not None:
            self.nprobe = int(self.nprobe)
            if self.nprobe < 1:
                raise ValueError(f"nprobe must be >= 1, got {self.nprobe}")
        if self.nprobe is not None and self.ann is None:
            raise ValueError("nprobe requires an ann index kind (set ann='ivf')")

    def capabilities(self) -> ModelCapabilities:
        """Capability metadata of the registered class this spec names."""
        return get_entry(self.model, self.formulation).capabilities

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "spec_version": self.version,
            "model": self.model,
            "formulation": self.formulation,
            "n_entities": self.n_entities,
            "n_relations": self.n_relations,
            "embedding_dim": self.embedding_dim,
        }
        if self.relation_dim is not None:
            out["relation_dim"] = self.relation_dim
        if self.backend is not None:
            out["backend"] = self.backend
        if self.dissimilarity is not None:
            out["dissimilarity"] = self.dissimilarity
        if self.sparse_grads:
            out["sparse_grads"] = True
        if self.partitions is not None:
            out["partitions"] = self.partitions
        if self.ann is not None:
            out["ann"] = self.ann
        if self.nprobe is not None:
            out["nprobe"] = self.nprobe
        return out

    def replace(self, **kwargs) -> "ModelSpec":
        """Copy with the given fields overridden (re-validated).

        The experiment layer uses this to fill vocabulary sizes in from the
        materialised dataset: ``spec.replace(n_entities=kg.n_entities, ...)``.
        """
        import dataclasses

        return dataclasses.replace(self, **kwargs)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ModelSpec":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on malformed input."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"model spec must be a mapping, got {type(payload).__name__}")
        missing = [key for key in ("model", "formulation", "n_entities",
                                   "n_relations", "embedding_dim")
                   if key not in payload]
        if missing:
            raise ValueError(f"model spec is missing required keys: {missing}")
        relation_dim = payload.get("relation_dim")
        partitions = payload.get("partitions")
        nprobe = payload.get("nprobe")
        return cls(
            model=str(payload["model"]),
            formulation=str(payload["formulation"]),
            n_entities=int(payload["n_entities"]),  # type: ignore[arg-type]
            n_relations=int(payload["n_relations"]),  # type: ignore[arg-type]
            embedding_dim=int(payload["embedding_dim"]),  # type: ignore[arg-type]
            relation_dim=int(relation_dim) if relation_dim is not None else None,  # type: ignore[arg-type]
            backend=str(payload["backend"]) if payload.get("backend") is not None else None,
            dissimilarity=(str(payload["dissimilarity"])
                           if payload.get("dissimilarity") is not None else None),
            sparse_grads=bool(payload.get("sparse_grads", False)),
            partitions=int(partitions) if partitions is not None else None,  # type: ignore[arg-type]
            ann=str(payload["ann"]) if payload.get("ann") is not None else None,
            nprobe=int(nprobe) if nprobe is not None else None,  # type: ignore[arg-type]
            version=int(payload.get("spec_version", 1)),  # type: ignore[arg-type]
        )


def build_model(spec: ModelSpec, rng=None):
    """Construct the model a spec describes.

    Only keywords the registered capabilities declare are passed through; a
    spec field that the model cannot honour (e.g. ``relation_dim`` for
    TransE, or a non-default ``dissimilarity`` for a semiring model) raises a
    ``ValueError`` instead of being silently dropped — that silent drop is
    exactly the checkpoint bug this registry replaces.
    """
    entry = get_entry(spec.model, spec.formulation)
    caps = entry.capabilities

    kwargs: Dict[str, object] = {}
    if spec.relation_dim is not None:
        if not caps.accepts_relation_dim:
            raise ValueError(
                f"model {spec.model!r} ({spec.formulation}) does not accept "
                f"relation_dim, but the spec sets relation_dim={spec.relation_dim}"
            )
        kwargs["relation_dim"] = spec.relation_dim
    if spec.backend is not None:
        if not caps.accepts_backend:
            raise ValueError(
                f"model {spec.model!r} ({spec.formulation}) does not accept a "
                f"backend, but the spec sets backend={spec.backend!r}"
            )
        kwargs["backend"] = spec.backend
    if spec.dissimilarity is not None:
        if not caps.accepts_dissimilarity:
            raise ValueError(
                f"model {spec.model!r} ({spec.formulation}) does not accept a "
                f"dissimilarity, but the spec sets dissimilarity={spec.dissimilarity!r}"
            )
        kwargs["dissimilarity"] = spec.dissimilarity

    if spec.partitions is not None:
        if not caps.accepts_partitions:
            raise ValueError(
                f"model {spec.model!r} ({spec.formulation}) does not support "
                f"partitioned entity tables, but the spec sets "
                f"partitions={spec.partitions}"
            )
        kwargs["partitions"] = spec.partitions

    if spec.sparse_grads and not caps.supports_sparse_grads:
        raise ValueError(
            f"model {spec.model!r} ({spec.formulation}) does not support "
            "row-sparse gradients, but the spec sets sparse_grads=True"
        )

    model = entry.cls(spec.n_entities, spec.n_relations, spec.embedding_dim,
                      rng=rng, **kwargs)
    if spec.sparse_grads:
        model.set_sparse_grads(True)
    return model


def spec_from_model(model) -> ModelSpec:
    """Recover the :class:`ModelSpec` describing a live model instance.

    The inverse of :func:`build_model`: ``build_model(spec_from_model(m))``
    reconstructs a model with identical architecture and hyperparameters
    (fresh weights — pair with ``restore_into`` for the parameters).
    """
    _ensure_models_imported()
    entry = _ENTRY_BY_CLASS.get(type(model))
    if entry is None:
        raise UnknownModelError(
            f"{type(model).__name__} is not a registered model class; "
            "decorate it with @register_model to make it checkpointable"
        )
    caps = entry.capabilities
    return ModelSpec(
        model=entry.name,
        formulation=entry.formulation,
        n_entities=model.n_entities,
        n_relations=model.n_relations,
        embedding_dim=model.embedding_dim,
        relation_dim=(int(model.relation_dim) if caps.accepts_relation_dim else None),
        backend=(str(model.backend) if caps.accepts_backend else None),
        dissimilarity=(str(model.dissimilarity_name)
                       if caps.accepts_dissimilarity else None),
        sparse_grads=bool(getattr(model, "sparse_grads", False)
                          and caps.supports_sparse_grads),
        partitions=(int(model.n_partitions)
                    if caps.accepts_partitions and model.n_partitions > 1
                    else None),
    )
