"""SparseTransX reproduction — sparse-matrix training of translational KG embeddings.

This library reproduces *SparseTransX: Efficient Training of Translation-Based
Knowledge Graph Embeddings Using Sparse Matrix Operations* (MLSys 2025) as a
self-contained Python package:

* a NumPy reverse-mode autograd engine (:mod:`repro.autograd`),
* sparse containers, SpMM backends, incidence builders, and semiring SpMM
  (:mod:`repro.sparse`),
* the SpTransX models (:mod:`repro.models`) and the dense gather/scatter
  baselines they are compared against (:mod:`repro.baselines`),
* data loading, synthetic benchmark-scale KGs, and negative sampling
  (:mod:`repro.data`),
* training loops including a simulated data-parallel mode
  (:mod:`repro.training`), link-prediction evaluation
  (:mod:`repro.evaluation`), and the profiling substrate used by the
  benchmark harness (:mod:`repro.profiling`).

Quickstart
----------
>>> from repro.data import generate_synthetic_kg
>>> from repro.models import SpTransE
>>> from repro.training import Trainer, TrainingConfig
>>> kg = generate_synthetic_kg(200, 10, 1000, rng=0)
>>> model = SpTransE(kg.n_entities, kg.n_relations, embedding_dim=32, rng=0)
>>> result = Trainer(model, kg, TrainingConfig(epochs=5, batch_size=256)).train()
>>> result.final_loss < result.losses[0]
True
"""

from repro import autograd, baselines, data, evaluation, experiment, losses, models, nn, optim
from repro import profiling, sparse, training, utils
from repro.data import KGDataset, generate_synthetic_kg, make_dataset_like
from repro.models import SpTransE, SpTransH, SpTransR, SpTorusE
from repro.baselines import DenseTransE, DenseTransH, DenseTransR, DenseTorusE
from repro.training import Trainer, TrainingConfig
from repro.evaluation import evaluate_link_prediction

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "sparse",
    "nn",
    "optim",
    "losses",
    "models",
    "baselines",
    "data",
    "training",
    "evaluation",
    "experiment",
    "profiling",
    "utils",
    "KGDataset",
    "generate_synthetic_kg",
    "make_dataset_like",
    "SpTransE",
    "SpTransR",
    "SpTransH",
    "SpTorusE",
    "DenseTransE",
    "DenseTransR",
    "DenseTransH",
    "DenseTorusE",
    "Trainer",
    "TrainingConfig",
    "evaluate_link_prediction",
    "__version__",
]
