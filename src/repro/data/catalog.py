"""Catalog of the paper's benchmark datasets (Table 3 and Appendix F).

The real dumps cannot be downloaded in this environment, so the catalog stores
the published statistics and the synthetic generator emits graphs with the
same entity / relation / triple counts (optionally scaled down for fast runs).
Training-time and memory behaviour depend only on these counts, not on the
semantic content of the triples, so the catalog is what keeps the reproduction
faithful to the paper's workload sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one benchmark dataset.

    Attributes
    ----------
    name:
        Dataset identifier as used in the paper.
    n_entities, n_relations, n_training_triples:
        Values from Table 3 (and Table 9 for COVID-19).
    """

    name: str
    n_entities: int
    n_relations: int
    n_training_triples: int

    def scaled(self, scale: float) -> "DatasetSpec":
        """Return a proportionally smaller spec (``0 < scale <= 1``).

        Entity/relation counts shrink with the square root of the scale so the
        incidence-matrix aspect ratio (triples per entity) stays roughly
        constant, which is what the training-time behaviour depends on.
        """
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        import math

        sqrt_scale = math.sqrt(scale)
        return DatasetSpec(
            name=f"{self.name}-x{scale:g}",
            n_entities=max(16, int(round(self.n_entities * sqrt_scale))),
            n_relations=max(2, int(round(self.n_relations * sqrt_scale))),
            n_training_triples=max(64, int(round(self.n_training_triples * scale))),
        )


#: Table 3 of the paper plus the Appendix-F COVID-19 dataset.
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "FB15K": DatasetSpec("FB15K", 14951, 1345, 483142),
    "FB15K237": DatasetSpec("FB15K237", 14541, 237, 272115),
    "WN18": DatasetSpec("WN18", 40943, 18, 141442),
    "WN18RR": DatasetSpec("WN18RR", 40943, 11, 86835),
    "FB13": DatasetSpec("FB13", 67399, 15342, 316232),
    "YAGO3-10": DatasetSpec("YAGO3-10", 123182, 37, 1079040),
    "BIOKG": DatasetSpec("BIOKG", 93773, 51, 4762678),
    "COVID19": DatasetSpec("COVID19", 60820, 62, 1032939),
}

#: The seven datasets the headline experiments (Figures 7-8, Tables 5-7) average over.
BENCHMARK_DATASETS = (
    "FB15K",
    "FB15K237",
    "WN18",
    "WN18RR",
    "FB13",
    "YAGO3-10",
    "BIOKG",
)


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    key = name.upper().replace("-", "").replace("_", "")
    for spec_name, spec in PAPER_DATASETS.items():
        if spec_name.upper().replace("-", "").replace("_", "") == key:
            return spec
    raise KeyError(f"unknown dataset {name!r}; available: {sorted(PAPER_DATASETS)}")
