"""File loaders for the standard knowledge-graph interchange formats.

The paper's dataloader module ingests CSV, TTL, and RDF files (and Neo4j
exports); these loaders cover the same file formats and return a
:class:`~repro.data.dataset.KGDataset` with label vocabularies attached.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.data.dataset import KGDataset

LabeledTriple = Tuple[str, str, str]


def _read_delimited(path: str, delimiter: str,
                    columns: Tuple[int, int, int],
                    skip_header: bool) -> Iterator[LabeledTriple]:
    h_col, r_col, t_col = columns
    max_col = max(columns)
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for line_no, row in enumerate(reader):
            if skip_header and line_no == 0:
                continue
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) <= max_col:
                raise ValueError(
                    f"{path}:{line_no + 1}: expected at least {max_col + 1} columns, "
                    f"got {len(row)}"
                )
            yield (row[h_col].strip(), row[r_col].strip(), row[t_col].strip())


def load_csv(path: str, delimiter: str = ",",
             columns: Tuple[int, int, int] = (0, 1, 2),
             skip_header: bool = False,
             name: Optional[str] = None) -> KGDataset:
    """Load ``head, relation, tail`` triples from a delimited text file.

    Parameters
    ----------
    path:
        File to read.
    delimiter:
        Field separator (``","`` for CSV, ``"\\t"`` for TSV).
    columns:
        Zero-based column indices of head, relation, and tail.
    skip_header:
        Skip the first line when it is a header row.
    name:
        Dataset name; defaults to the file's base name.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    triples = list(_read_delimited(path, delimiter, columns, skip_header))
    if not triples:
        raise ValueError(f"no triples found in {path}")
    return KGDataset.from_labeled_triples(
        triples, name=name or os.path.splitext(os.path.basename(path))[0]
    )


def load_tsv(path: str, columns: Tuple[int, int, int] = (0, 1, 2),
             skip_header: bool = False, name: Optional[str] = None) -> KGDataset:
    """Load a tab-separated triple file (the format FB15K/WN18 dumps use)."""
    return load_csv(path, delimiter="\t", columns=columns,
                    skip_header=skip_header, name=name)


def _strip_term(term: str) -> str:
    term = term.strip()
    if term.startswith("<") and term.endswith(">"):
        return term[1:-1]
    if term.startswith('"'):
        # Drop the closing quote and any datatype/language tag.
        closing = term.rfind('"')
        return term[1:closing]
    return term


def parse_ttl_lines(lines: Iterable[str]) -> Iterator[LabeledTriple]:
    """Parse simple N-Triples / Turtle statements of the form ``s p o .``.

    Supports ``@prefix`` declarations, comments, and the ``;`` / ``,``
    same-subject shorthand.  Blank nodes and multi-line literals are out of
    scope (the benchmark KG dumps do not use them).
    """
    prefixes = {}
    pending_subject: Optional[str] = None
    pending_predicate: Optional[str] = None

    def expand(term: str) -> str:
        term = _strip_term(term)
        if ":" in term and not term.startswith("http"):
            prefix, _, local = term.partition(":")
            if prefix in prefixes:
                return prefixes[prefix] + local
        return term

    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower().startswith("@prefix"):
            parts = line.rstrip(" .").split()
            if len(parts) >= 3:
                prefixes[parts[1].rstrip(":")] = _strip_term(parts[2])
            continue
        terminator = None
        if line.endswith("."):
            terminator = "."
        elif line.endswith(";"):
            terminator = ";"
        elif line.endswith(","):
            terminator = ","
        body = line.rstrip(".;,").strip()
        tokens = body.split(None, 2) if pending_subject is None else body.split(None, 1)
        if pending_subject is None:
            if len(tokens) < 3:
                raise ValueError(f"malformed TTL statement: {raw!r}")
            subject, predicate, obj = tokens
        elif pending_predicate is not None and len(tokens) == 1:
            subject, predicate, obj = pending_subject, pending_predicate, tokens[0]
        else:
            if len(tokens) < 2:
                raise ValueError(f"malformed TTL continuation: {raw!r}")
            subject, (predicate, obj) = pending_subject, tokens
        yield (expand(subject), expand(predicate), expand(obj))
        if terminator == ";":
            pending_subject, pending_predicate = subject, None
        elif terminator == ",":
            pending_subject, pending_predicate = subject, predicate
        else:
            pending_subject, pending_predicate = None, None


def load_ttl(path: str, name: Optional[str] = None) -> KGDataset:
    """Load triples from a Turtle / N-Triples file."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with open(path, "r", encoding="utf-8") as handle:
        triples: List[LabeledTriple] = list(parse_ttl_lines(handle))
    if not triples:
        raise ValueError(f"no triples found in {path}")
    return KGDataset.from_labeled_triples(
        triples, name=name or os.path.splitext(os.path.basename(path))[0]
    )


def load_triples_file(path: str, name: Optional[str] = None) -> KGDataset:
    """Dispatch on file extension: ``.csv``, ``.tsv``/``.txt``, ``.ttl``/``.nt``."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".csv":
        return load_csv(path, name=name)
    if ext in (".tsv", ".txt"):
        return load_tsv(path, name=name)
    if ext in (".ttl", ".nt", ".rdf"):
        return load_ttl(path, name=name)
    raise ValueError(f"unsupported file extension {ext!r} for {path}")
