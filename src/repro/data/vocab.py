"""Label <-> index vocabulary for entities and relations."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Vocabulary:
    """A bidirectional mapping between string labels and contiguous indices.

    Parameters
    ----------
    labels:
        Optional initial labels, assigned indices in iteration order.
    frozen:
        When True, :meth:`add` raises instead of growing the vocabulary.
    """

    def __init__(self, labels: Optional[Iterable[str]] = None, frozen: bool = False) -> None:
        self._label_to_index: Dict[str, int] = {}
        self._index_to_label: List[str] = []
        self.frozen = False
        if labels is not None:
            for label in labels:
                self.add(label)
        self.frozen = bool(frozen)

    def add(self, label: str) -> int:
        """Insert ``label`` (if new) and return its index."""
        if not isinstance(label, str):
            label = str(label)
        existing = self._label_to_index.get(label)
        if existing is not None:
            return existing
        if self.frozen:
            raise KeyError(f"vocabulary is frozen; unknown label {label!r}")
        index = len(self._index_to_label)
        self._label_to_index[label] = index
        self._index_to_label.append(label)
        return index

    def index(self, label: str) -> int:
        """Return the index of ``label`` (raises ``KeyError`` if absent)."""
        return self._label_to_index[str(label)]

    def label(self, index: int) -> str:
        """Return the label stored at ``index``."""
        return self._index_to_label[index]

    def freeze(self) -> "Vocabulary":
        """Prevent further growth (useful after building the training vocab)."""
        self.frozen = True
        return self

    def __contains__(self, label: str) -> bool:
        return str(label) in self._label_to_index

    def __len__(self) -> int:
        return len(self._index_to_label)

    def __iter__(self) -> Iterator[str]:
        return iter(self._index_to_label)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._index_to_label == other._index_to_label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vocabulary(size={len(self)}, frozen={self.frozen})"

    def to_dict(self) -> Dict[str, int]:
        """Return a copy of the label -> index mapping."""
        return dict(self._label_to_index)

    @classmethod
    def from_dict(cls, mapping: Dict[str, int]) -> "Vocabulary":
        """Rebuild from a label -> index mapping (indices must be 0..n-1)."""
        items = sorted(mapping.items(), key=lambda kv: kv[1])
        indices = [idx for _, idx in items]
        if indices != list(range(len(indices))):
            raise ValueError("indices must be contiguous and start at 0")
        return cls(label for label, _ in items)
