"""Negative sampling strategies.

Translational KGE training contrasts each positive triplet with a corrupted
one.  The paper pre-generates one negative per positive outside the training
loop; both samplers here support that mode (:meth:`NegativeSampler.corrupt`)
plus on-the-fly multi-negative sampling.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from repro.data.dataset import KGDataset
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


class NegativeSampler:
    """Base class: corrupt the head or tail of positive triplets.

    Parameters
    ----------
    n_entities:
        Entity vocabulary size to draw replacements from.
    rng:
        Seed or generator.
    filtered:
        When True, corrupted triplets that collide with known positives are
        re-sampled (best effort, bounded retries) so "negatives" are true
        negatives — the protocol used for filtered evaluation setups.
    known_triples:
        Set of known ``(h, r, t)`` tuples used by the filter.
    """

    #: Upper bound on re-sampling rounds in filtered mode.
    MAX_RETRIES = 16

    def __init__(self, n_entities: int, rng=None, filtered: bool = False,
                 known_triples: Optional[Set[Tuple[int, int, int]]] = None) -> None:
        if n_entities < 2:
            raise ValueError(f"need at least 2 entities to corrupt, got {n_entities}")
        self.n_entities = int(n_entities)
        self.rng = new_rng(rng)
        self.filtered = bool(filtered)
        self.known_triples = known_triples if known_triples is not None else set()
        if self.filtered and not self.known_triples:
            raise ValueError("filtered sampling requires known_triples")

    # ------------------------------------------------------------------ #
    def _head_corruption_probability(self, relations: np.ndarray) -> np.ndarray:
        """Probability of corrupting the head (vs the tail) per triplet."""
        return np.full(relations.shape[0], 0.5)

    def corrupt(self, triples: np.ndarray) -> np.ndarray:
        """Return one corrupted triple per positive triple (same shape)."""
        triples = check_triples(triples, n_entities=self.n_entities)
        m = triples.shape[0]
        if m == 0:
            return triples.copy()
        corrupted = triples.copy()
        corrupt_head = self.rng.random(m) < self._head_corruption_probability(triples[:, 1])
        replacements = self.rng.integers(0, self.n_entities, size=m)
        corrupted[corrupt_head, 0] = replacements[corrupt_head]
        corrupted[~corrupt_head, 2] = replacements[~corrupt_head]
        self._avoid_identity(corrupted, triples, corrupt_head)
        if self.filtered:
            self._filter_known(corrupted, corrupt_head)
        return corrupted

    def corrupt_many(self, triples: np.ndarray, num_negatives: int) -> np.ndarray:
        """Return ``(M, K, 3)`` corrupted triples (K negatives per positive)."""
        if num_negatives <= 0:
            raise ValueError(f"num_negatives must be positive, got {num_negatives}")
        stacks = [self.corrupt(triples) for _ in range(num_negatives)]
        return np.stack(stacks, axis=1)

    # ------------------------------------------------------------------ #
    def _avoid_identity(self, corrupted: np.ndarray, originals: np.ndarray,
                        corrupt_head: np.ndarray) -> None:
        """Re-draw replacements that accidentally reproduced the original entity."""
        for _ in range(self.MAX_RETRIES):
            same = np.all(corrupted == originals, axis=1)
            if not same.any():
                return
            redraw = self.rng.integers(0, self.n_entities, size=int(same.sum()))
            rows = np.flatnonzero(same)
            heads = corrupt_head[rows]
            corrupted[rows[heads], 0] = redraw[heads]
            corrupted[rows[~heads], 2] = redraw[~heads]

    def _filter_known(self, corrupted: np.ndarray, corrupt_head: np.ndarray) -> None:
        """Re-sample corrupted triples that are actually known positives."""
        for _ in range(self.MAX_RETRIES):
            collisions = np.array(
                [tuple(row) in self.known_triples for row in corrupted.tolist()], dtype=bool
            )
            if not collisions.any():
                return
            rows = np.flatnonzero(collisions)
            redraw = self.rng.integers(0, self.n_entities, size=rows.size)
            heads = corrupt_head[rows]
            corrupted[rows[heads], 0] = redraw[heads]
            corrupted[rows[~heads], 2] = redraw[~heads]


class UniformNegativeSampler(NegativeSampler):
    """Corrupt head or tail with equal probability (TransE's original recipe)."""


class BernoulliNegativeSampler(NegativeSampler):
    """Relation-aware corruption probabilities (Wang et al., 2014).

    For each relation the head-corruption probability is
    ``tph / (tph + hpt)`` where ``tph`` is the average number of tails per
    head and ``hpt`` the average number of heads per tail.  This reduces
    false negatives for 1-to-N / N-to-1 relations and is the sampler TransH's
    original paper (and TorchKGE) uses.

    Parameters
    ----------
    dataset:
        Training data used to estimate the per-relation statistics.
    """

    def __init__(self, dataset: KGDataset, rng=None, filtered: bool = False,
                 known_triples: Optional[Set[Tuple[int, int, int]]] = None) -> None:
        super().__init__(dataset.n_entities, rng=rng, filtered=filtered,
                         known_triples=known_triples)
        self.head_probabilities = self._estimate(dataset)

    @staticmethod
    def _estimate(dataset: KGDataset) -> np.ndarray:
        triples = dataset.split.train
        n_relations = dataset.n_relations
        probs = np.full(n_relations, 0.5)
        for r in range(n_relations):
            rel_triples = triples[triples[:, 1] == r]
            if rel_triples.shape[0] == 0:
                continue
            heads = rel_triples[:, 0]
            tails = rel_triples[:, 2]
            tails_per_head = rel_triples.shape[0] / max(len(np.unique(heads)), 1)
            heads_per_tail = rel_triples.shape[0] / max(len(np.unique(tails)), 1)
            denom = tails_per_head + heads_per_tail
            if denom > 0:
                probs[r] = tails_per_head / denom
        return probs

    def _head_corruption_probability(self, relations: np.ndarray) -> np.ndarray:
        return self.head_probabilities[relations]


#: Sampler strategy names accepted by :func:`make_negative_sampler` (and by a
#: :class:`~repro.experiment.DataSpec`'s ``negative_sampler`` field).
SAMPLER_STRATEGIES = ("uniform", "bernoulli")


def make_negative_sampler(
    strategy: str,
    dataset: KGDataset,
    rng=None,
    filtered: bool = False,
    known_triples: Optional[Set[Tuple[int, int, int]]] = None,
) -> NegativeSampler:
    """Instantiate the sampler named by ``strategy`` for ``dataset``.

    The single constructor the declarative layers (experiment specs, CLI)
    go through, so sampler wiring lives in one place.  ``"uniform"`` corrupts
    head or tail with equal probability; ``"bernoulli"`` uses the
    relation-aware probabilities of Wang et al. (2014), estimated from the
    dataset's training split.
    """
    strategy = str(strategy).lower()
    if strategy == "uniform":
        return UniformNegativeSampler(dataset.n_entities, rng=rng,
                                      filtered=filtered, known_triples=known_triples)
    if strategy == "bernoulli":
        return BernoulliNegativeSampler(dataset, rng=rng,
                                        filtered=filtered, known_triples=known_triples)
    raise ValueError(
        f"unknown negative-sampler strategy {strategy!r}; "
        f"available: {list(SAMPLER_STRATEGIES)}"
    )
