"""SQLite-backed knowledge-graph store.

The paper's streaming dataloader converts large KG files into an SQLite
database holding the entity/relation index mapping plus the triplets, then
streams minibatches out of it.  This class provides that store: ingest a
:class:`~repro.data.dataset.KGDataset` (or labelled triples), query counts,
and iterate triples in fixed-size batches without materialising the whole
table in memory.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.vocab import Vocabulary

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entities (
    id INTEGER PRIMARY KEY,
    label TEXT UNIQUE NOT NULL
);
CREATE TABLE IF NOT EXISTS relations (
    id INTEGER PRIMARY KEY,
    label TEXT UNIQUE NOT NULL
);
CREATE TABLE IF NOT EXISTS triples (
    rowid INTEGER PRIMARY KEY AUTOINCREMENT,
    head INTEGER NOT NULL,
    relation INTEGER NOT NULL,
    tail INTEGER NOT NULL,
    split TEXT NOT NULL DEFAULT 'train'
);
CREATE INDEX IF NOT EXISTS idx_triples_split ON triples(split);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class SQLiteKGStore:
    """Persistent triple store with streaming batch iteration.

    Parameters
    ----------
    path:
        Database file; ``":memory:"`` keeps everything in RAM (tests).
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest_dataset(self, dataset: KGDataset) -> None:
        """Store every split of ``dataset`` (labels fall back to index strings)."""
        ent_labels = (
            list(dataset.entity_vocab)
            if dataset.entity_vocab is not None
            else [f"entity_{i}" for i in range(dataset.n_entities)]
        )
        rel_labels = (
            list(dataset.relation_vocab)
            if dataset.relation_vocab is not None
            else [f"relation_{i}" for i in range(dataset.n_relations)]
        )
        with self._conn:
            self._conn.executemany(
                "INSERT OR IGNORE INTO entities (id, label) VALUES (?, ?)",
                list(enumerate(ent_labels)),
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO relations (id, label) VALUES (?, ?)",
                list(enumerate(rel_labels)),
            )
            for split_name, triples in (
                ("train", dataset.split.train),
                ("valid", dataset.split.valid),
                ("test", dataset.split.test),
            ):
                if triples.size == 0:
                    continue
                self._insert_triples(triples, split_name)

    def _insert_triples(self, triples: np.ndarray, split: str,
                        chunk: int = 65536) -> None:
        """Insert an ``(M, 3)`` array in bounded chunks (no full python list)."""
        for start in range(0, triples.shape[0], chunk):
            block = triples[start:start + chunk]
            self._conn.executemany(
                "INSERT INTO triples (head, relation, tail, split) VALUES (?, ?, ?, ?)",
                ((int(h), int(r), int(t), split) for h, r, t in block),
            )

    def ingest_triple_batches(self, batches: Iterable[np.ndarray],
                              split: str = "train") -> int:
        """Stream ``(M, 3)`` integer arrays into the store; returns rows written.

        The out-of-core ingestion path: a generator of triple blocks (e.g. a
        chunked synthetic generator or a file reader) is committed batch by
        batch so peak memory is one block, never the whole graph.  Entity and
        relation tables are not touched — register vocabularies separately
        with :meth:`register_vocab_sizes` or :meth:`ingest_dataset`.
        """
        total = 0
        with self._conn:
            for block in batches:
                block = np.asarray(block)
                if block.size == 0:
                    continue
                self._insert_triples(block.reshape(-1, 3), split)
                total += int(block.reshape(-1, 3).shape[0])
        return total

    def register_vocab_sizes(self, n_entities: int, n_relations: int) -> None:
        """Create index-label rows for integer-only graphs (no label source)."""
        with self._conn:
            self._conn.executemany(
                "INSERT OR IGNORE INTO entities (id, label) VALUES (?, ?)",
                ((i, f"entity_{i}") for i in range(int(n_entities))),
            )
            self._conn.executemany(
                "INSERT OR IGNORE INTO relations (id, label) VALUES (?, ?)",
                ((i, f"relation_{i}") for i in range(int(n_relations))),
            )

    def ingest_labeled_triples(self, labeled: Iterable[Tuple[str, str, str]],
                               split: str = "train") -> None:
        """Insert labelled triples, growing the entity/relation tables as needed."""
        with self._conn:
            for head, relation, tail in labeled:
                h = self._get_or_create("entities", head)
                r = self._get_or_create("relations", relation)
                t = self._get_or_create("entities", tail)
                self._conn.execute(
                    "INSERT INTO triples (head, relation, tail, split) VALUES (?, ?, ?, ?)",
                    (h, r, t, split),
                )

    def _get_or_create(self, table: str, label: str) -> int:
        row = self._conn.execute(
            f"SELECT id FROM {table} WHERE label = ?", (label,)
        ).fetchone()
        if row is not None:
            return int(row[0])
        count = self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
        self._conn.execute(f"INSERT INTO {table} (id, label) VALUES (?, ?)", (count, label))
        return int(count)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def n_entities(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM entities").fetchone()[0])

    @property
    def n_relations(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM relations").fetchone()[0])

    def n_triples(self, split: Optional[str] = "train") -> int:
        if split is None:
            return int(self._conn.execute("SELECT COUNT(*) FROM triples").fetchone()[0])
        return int(
            self._conn.execute(
                "SELECT COUNT(*) FROM triples WHERE split = ?", (split,)
            ).fetchone()[0]
        )

    def entity_vocabulary(self) -> Vocabulary:
        rows = self._conn.execute("SELECT label FROM entities ORDER BY id").fetchall()
        return Vocabulary(label for (label,) in rows)

    def relation_vocabulary(self) -> Vocabulary:
        rows = self._conn.execute("SELECT label FROM relations ORDER BY id").fetchall()
        return Vocabulary(label for (label,) in rows)

    def iter_batches(self, batch_size: int, split: str = "train") -> Iterator[np.ndarray]:
        """Stream ``(batch, 3)`` triple arrays without loading the whole table."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        cursor = self._conn.execute(
            "SELECT head, relation, tail FROM triples WHERE split = ? ORDER BY rowid",
            (split,),
        )
        while True:
            rows = cursor.fetchmany(batch_size)
            if not rows:
                break
            yield np.asarray(rows, dtype=np.int64)

    def set_meta(self, key: str, value: str) -> None:
        """Store a small key/value annotation (dataset fingerprints etc.)."""
        with self._conn:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (str(key), str(value)),
            )

    def get_meta(self, key: str) -> Optional[str]:
        """Read an annotation written by :meth:`set_meta` (``None`` if absent)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (str(key),)
        ).fetchone()
        return str(row[0]) if row is not None else None

    def block_bounds(self, block_size: int, split: str = "train") -> List[Tuple[int, int]]:
        """Split a split's rows into contiguous rowid ranges of ``block_size``.

        One sequential index walk computes ``[(lo, hi), ...]`` inclusive rowid
        bounds covering every row of the split, each holding ``block_size``
        rows (the final range may be smaller).  Random-access epoch shuffles
        then fetch blocks in any order with cheap ``rowid BETWEEN`` scans
        instead of O(offset) ``LIMIT/OFFSET`` walks — memory stays
        O(n_blocks), not O(n_triples).
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        bounds: List[Tuple[int, int]] = []
        cursor = self._conn.execute(
            "SELECT rowid FROM triples WHERE split = ? ORDER BY rowid", (split,)
        )
        lo: Optional[int] = None
        count = 0
        last = -1
        while True:
            rows = cursor.fetchmany(65536)
            if not rows:
                break
            for (rowid,) in rows:
                if lo is None:
                    lo = rowid
                count += 1
                last = rowid
                if count == block_size:
                    bounds.append((lo, last))
                    lo, count = None, 0
        if lo is not None:
            bounds.append((lo, last))
        return bounds

    def cluster_by_partition(self, bucket_size: int) -> None:
        """Rewrite the triples table ordered by ``(head bucket, tail bucket)``.

        The PBG-style bucket-pair schedule wants each ``(head_bucket,
        tail_bucket)`` episode to be a handful of contiguous rowid runs so it
        can stream an episode with cheap ``rowid BETWEEN`` scans.  This
        one-time clustering pass reorders the rows with SQLite's external
        sort (disk-backed — the triples never materialise in Python), after
        which :meth:`pair_runs` returns exactly one run per populated pair.

        Idempotent per ``bucket_size``: the applied size is recorded in the
        meta table and re-clustering with the same size is a no-op.
        """
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        if self.get_meta("clustered_bucket_size") == str(int(bucket_size)):
            return
        with self._conn:
            # Plain execute()s so everything stays inside one transaction
            # (executescript would commit early); the DROP clears any debris
            # a previously interrupted clustering attempt left behind.
            self._conn.execute("DROP TABLE IF EXISTS triples_clustered")
            self._conn.execute("""
                CREATE TABLE triples_clustered (
                    rowid INTEGER PRIMARY KEY AUTOINCREMENT,
                    head INTEGER NOT NULL,
                    relation INTEGER NOT NULL,
                    tail INTEGER NOT NULL,
                    split TEXT NOT NULL DEFAULT 'train'
                )
            """)
            # SQLite's / on integers is integer division, so head/bs is the
            # head's bucket id.
            self._conn.execute(
                "INSERT INTO triples_clustered (head, relation, tail, split) "
                "SELECT head, relation, tail, split FROM triples "
                "ORDER BY split, head / ?, tail / ?, rowid",
                (int(bucket_size), int(bucket_size)),
            )
            self._conn.execute("DROP TABLE triples")
            self._conn.execute("ALTER TABLE triples_clustered RENAME TO triples")
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_triples_split ON triples(split)")
        self.set_meta("clustered_bucket_size", str(int(bucket_size)))

    def pair_runs(self, bucket_size: int, split: str = "train"
                  ) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """Contiguous rowid runs per ``(head_bucket, tail_bucket)`` pair.

        One sequential scan computes, for every populated bucket pair, the
        list of inclusive ``(lo, hi)`` rowid runs holding its triples.  On a
        store clustered with :meth:`cluster_by_partition` each pair collapses
        to a single run, so memory stays O(pairs); on an unclustered store the
        runs simply fragment (correct, just more per-episode scans).
        """
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        runs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        cursor = self._conn.execute(
            "SELECT rowid, head / ?, tail / ? FROM triples WHERE split = ? "
            "ORDER BY rowid",
            (int(bucket_size), int(bucket_size), split),
        )
        while True:
            rows = cursor.fetchmany(65536)
            if not rows:
                break
            for rowid, bh, bt in rows:
                pair_runs = runs.setdefault((int(bh), int(bt)), [])
                if pair_runs and pair_runs[-1][1] == rowid - 1:
                    pair_runs[-1] = (pair_runs[-1][0], rowid)
                else:
                    pair_runs.append((rowid, rowid))
        return runs

    def fetch_block(self, lo: int, hi: int, split: str = "train") -> np.ndarray:
        """All ``(head, relation, tail)`` rows with ``lo <= rowid <= hi``."""
        rows = self._conn.execute(
            "SELECT head, relation, tail FROM triples "
            "WHERE split = ? AND rowid BETWEEN ? AND ? ORDER BY rowid",
            (split, int(lo), int(hi)),
        ).fetchall()
        return (np.asarray(rows, dtype=np.int64).reshape(-1, 3)
                if rows else np.empty((0, 3), dtype=np.int64))

    def to_dataset(self, name: Optional[str] = None) -> KGDataset:
        """Materialise the store back into an in-memory :class:`KGDataset`."""
        from repro.data.dataset import TripleSplit

        def fetch(split: str) -> np.ndarray:
            rows = self._conn.execute(
                "SELECT head, relation, tail FROM triples WHERE split = ? ORDER BY rowid",
                (split,),
            ).fetchall()
            return (np.asarray(rows, dtype=np.int64).reshape(-1, 3)
                    if rows else np.empty((0, 3), dtype=np.int64))

        return KGDataset(
            n_entities=self.n_entities,
            n_relations=self.n_relations,
            entity_vocab=self.entity_vocabulary().freeze(),
            relation_vocab=self.relation_vocabulary().freeze(),
            name=name or (os.path.basename(self.path) if self.path != ":memory:" else "sqlite"),
            split=TripleSplit(train=fetch("train"), valid=fetch("valid"), test=fetch("test")),
        )

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "SQLiteKGStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
