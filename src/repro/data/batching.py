"""Minibatch iteration over triples.

The paper pre-generates negatives once per positive outside the training loop
and then iterates positive/negative pairs in large batches; the
:class:`BatchIterator` reproduces that protocol (with an option to resample
negatives every epoch for accuracy-focused runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.data.dataset import KGDataset
from repro.data.negative_sampling import NegativeSampler, UniformNegativeSampler
from repro.utils.seeding import new_rng


@dataclass
class TripletBatch:
    """One training minibatch: aligned positive and negative triples."""

    positives: np.ndarray
    negatives: np.ndarray

    def __post_init__(self) -> None:
        if self.positives.shape != self.negatives.shape:
            raise ValueError(
                f"positive and negative batches must align, got "
                f"{self.positives.shape} and {self.negatives.shape}"
            )

    @property
    def size(self) -> int:
        """Number of positive triples in the batch."""
        return int(self.positives.shape[0])


class BatchIterator:
    """Iterate a dataset's training split in shuffled minibatches.

    Parameters
    ----------
    dataset:
        Source dataset (only the training split is iterated).
    batch_size:
        Positives per batch; the final batch may be smaller unless
        ``drop_last`` is set.
    sampler:
        Negative sampler; a :class:`UniformNegativeSampler` is created when
        omitted.
    shuffle:
        Shuffle the triple order every epoch.
    drop_last:
        Drop a trailing partial batch.
    regenerate_negatives:
        When False (paper protocol) negatives are drawn once and reused every
        epoch; when True they are resampled per epoch.
    rng:
        Seed or generator for shuffling (independent of the sampler's stream).
    """

    def __init__(
        self,
        dataset: KGDataset,
        batch_size: int,
        sampler: Optional[NegativeSampler] = None,
        shuffle: bool = True,
        drop_last: bool = False,
        regenerate_negatives: bool = False,
        rng=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.sampler = sampler if sampler is not None else UniformNegativeSampler(
            dataset.n_entities, rng=rng
        )
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.regenerate_negatives = bool(regenerate_negatives)
        self.rng = new_rng(rng)
        self._cached_negatives: Optional[np.ndarray] = None

    def __len__(self) -> int:
        """Number of batches per epoch."""
        n = self.dataset.n_triples
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def _negatives(self) -> np.ndarray:
        if self.regenerate_negatives:
            return self.sampler.corrupt(self.dataset.split.train)
        if self._cached_negatives is None:
            self._cached_negatives = self.sampler.corrupt(self.dataset.split.train)
        return self._cached_negatives

    def __iter__(self) -> Iterator[TripletBatch]:
        positives = self.dataset.split.train
        negatives = self._negatives()
        order = (self.rng.permutation(positives.shape[0])
                 if self.shuffle else np.arange(positives.shape[0]))
        for start in range(0, positives.shape[0], self.batch_size):
            stop = start + self.batch_size
            if stop > positives.shape[0] and self.drop_last:
                break
            idx = order[start:stop]
            yield TripletBatch(positives=positives[idx], negatives=negatives[idx])
