"""Streaming minibatch iteration backed by the SQLite store.

The paper's dataloader module streams minibatches out of an SQLite
representation when the triple list is too large for memory.  This module
provides that path end to end: a :class:`StreamingBatchIterator` pulls
fixed-size positive batches from a :class:`~repro.data.sqlite_store.SQLiteKGStore`
cursor, corrupts them on the fly with any negative sampler, and yields the
same :class:`~repro.data.batching.TripletBatch` objects the in-memory iterator
produces — so the trainer does not care which side it is fed from.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.data.batching import TripletBatch
from repro.data.negative_sampling import NegativeSampler, UniformNegativeSampler
from repro.data.sqlite_store import SQLiteKGStore
from repro.utils.seeding import new_rng


class StreamingBatchIterator:
    """Iterate positive/negative batches straight out of an SQLite store.

    Parameters
    ----------
    store:
        The SQLite-backed knowledge graph.
    batch_size:
        Positives per batch (the final batch of an epoch may be smaller).
    sampler:
        Negative sampler; a uniform sampler over the store's entity count is
        created when omitted.
    split:
        Which split to stream (``"train"`` by default).
    drop_last:
        Drop a trailing partial batch.
    """

    def __init__(self, store: SQLiteKGStore, batch_size: int,
                 sampler: Optional[NegativeSampler] = None, split: str = "train",
                 drop_last: bool = False, rng=None) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.store = store
        self.batch_size = int(batch_size)
        self.split = split
        self.drop_last = bool(drop_last)
        self.sampler = sampler if sampler is not None else UniformNegativeSampler(
            max(store.n_entities, 2), rng=new_rng(rng)
        )

    def __len__(self) -> int:
        """Number of batches per epoch."""
        n = self.store.n_triples(self.split)
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def __iter__(self) -> Iterator[TripletBatch]:
        for positives in self.store.iter_batches(self.batch_size, split=self.split):
            if self.drop_last and positives.shape[0] < self.batch_size:
                break
            yield TripletBatch(positives=positives,
                               negatives=self.sampler.corrupt(positives))
