"""Streaming minibatch iteration backed by a triple store.

The paper's dataloader module streams minibatches out of an SQLite
representation when the triple list is too large for memory.  This module
provides that path end to end: a :class:`StreamingBatchIterator` pulls
positive blocks from any object implementing the small :class:`TripleStore`
protocol (the on-disk :class:`~repro.data.sqlite_store.SQLiteKGStore` or the
in-memory :class:`InMemoryTripleStore` twin), shuffles them with a seeded
per-epoch block shuffle, corrupts them on the fly with any negative sampler,
and yields the same :class:`~repro.data.batching.TripletBatch` objects the
in-memory :class:`~repro.data.batching.BatchIterator` produces — so the
trainer does not care which side it is fed from.

Shuffling works out of core: each epoch draws a fresh permutation of the
fixed-size row *blocks* and a fresh permutation of the rows inside each
fetched block, so peak memory is one block (``batch_size * block_batches``
rows), never the whole split.  The order is a deterministic function of
``(seed, epoch)``, which is what lets every replica of the multiprocess
trainer reconstruct the identical batch stream without any coordination.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Protocol, Tuple

import numpy as np

from repro.data.batching import TripletBatch
from repro.data.dataset import KGDataset
from repro.data.negative_sampling import NegativeSampler, UniformNegativeSampler
from repro.utils.seeding import new_rng


class TripleStore(Protocol):
    """What a batch source must expose to be streamed from."""

    @property
    def n_entities(self) -> int: ...

    def n_triples(self, split: Optional[str] = "train") -> int: ...

    def block_bounds(self, block_size: int, split: str = "train"
                     ) -> List[Tuple[int, int]]: ...

    def fetch_block(self, lo: int, hi: int, split: str = "train") -> np.ndarray: ...


class InMemoryTripleStore:
    """The in-memory twin of :class:`~repro.data.sqlite_store.SQLiteKGStore`.

    Adapts a :class:`~repro.data.dataset.KGDataset` to the
    :class:`TripleStore` protocol so the *same* streaming iterator — same
    shuffle, same negative-sampling draw order — can run against RAM or
    SQLite.  Storage-parity tests diff the two loss curves; they must be
    identical floats because only the byte source differs.
    """

    def __init__(self, dataset: KGDataset) -> None:
        self.dataset = dataset

    @property
    def n_entities(self) -> int:
        return self.dataset.n_entities

    @property
    def n_relations(self) -> int:
        return self.dataset.n_relations

    def _split(self, split: str) -> np.ndarray:
        try:
            return getattr(self.dataset.split, split)
        except AttributeError:
            raise ValueError(f"unknown split {split!r}") from None

    def n_triples(self, split: Optional[str] = "train") -> int:
        if split is None:
            return sum(self._split(s).shape[0] for s in ("train", "valid", "test"))
        return int(self._split(split).shape[0])

    def block_bounds(self, block_size: int, split: str = "train"
                     ) -> List[Tuple[int, int]]:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        n = self.n_triples(split)
        return [(lo, min(lo + block_size, n) - 1)
                for lo in range(0, n, block_size)]

    def fetch_block(self, lo: int, hi: int, split: str = "train") -> np.ndarray:
        return self._split(split)[lo:hi + 1]

    def pair_runs(self, bucket_size: int, split: str = "train"
                  ) -> dict:
        """Contiguous row runs per ``(head_bucket, tail_bucket)`` pair.

        In-memory twin of :meth:`repro.data.sqlite_store.SQLiteKGStore.pair_runs`
        (rows are 0-based positions rather than SQLite rowids), so the
        bucket-pair schedule can be exercised against RAM-backed data too.
        """
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        triples = self._split(split)
        runs: dict = {}
        for row in range(triples.shape[0]):
            pair = (int(triples[row, 0] // bucket_size),
                    int(triples[row, 2] // bucket_size))
            pair_list = runs.setdefault(pair, [])
            if pair_list and pair_list[-1][1] == row - 1:
                pair_list[-1] = (pair_list[-1][0], row)
            else:
                pair_list.append((row, row))
        return runs


class StreamingBatchIterator:
    """Iterate positive/negative batches straight out of a triple store.

    Parameters
    ----------
    store:
        Any :class:`TripleStore` (SQLite-backed or in-memory).
    batch_size:
        Positives per batch (the final batch of an epoch may be smaller).
    sampler:
        Negative sampler; a uniform sampler over the store's entity count is
        created when omitted.
    split:
        Which split to stream (``"train"`` by default).
    drop_last:
        Drop a trailing partial batch; ``__len__`` counts exactly the batches
        ``__iter__`` yields either way.
    rng:
        Seed or generator for the default sampler; when an integer it also
        seeds the epoch shuffle (unless ``seed`` overrides it).
    shuffle:
        Draw a fresh seeded block-shuffled order every epoch.  Without it the
        iterator replays SQLite insert order each epoch — the silent SGD
        degradation this flag exists to prevent.
    block_batches:
        Shuffle granularity: blocks of ``batch_size * block_batches`` rows are
        visited in a random order and shuffled internally, bounding shuffle
        memory to one block.
    seed:
        Explicit shuffle seed; the per-epoch order is
        ``default_rng([seed, epoch])`` so it is reproducible across processes
        and epochs are mutually distinct.
    num_negatives:
        Negatives contrasted per positive: each fetched block is tiled this
        many times before the intra-block shuffle, every copy drawing its own
        corruption — mirroring the in-memory protocol (dataset tiled ``K``
        times), so batch row counts and steps per epoch match the memory
        storage path for the same ``batch_size``.
    """

    def __init__(self, store: TripleStore, batch_size: int,
                 sampler: Optional[NegativeSampler] = None, split: str = "train",
                 drop_last: bool = False, rng=None, shuffle: bool = True,
                 block_batches: int = 16, seed: Optional[int] = None,
                 num_negatives: int = 1) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if block_batches <= 0:
            raise ValueError(f"block_batches must be positive, got {block_batches}")
        if num_negatives < 1:
            raise ValueError(f"num_negatives must be >= 1, got {num_negatives}")
        self.store = store
        self.batch_size = int(batch_size)
        self.split = split
        self.drop_last = bool(drop_last)
        self.shuffle = bool(shuffle)
        self.block_batches = int(block_batches)
        self.num_negatives = int(num_negatives)
        if seed is not None:
            self.seed = int(seed)
        elif isinstance(rng, (int, np.integer)):
            self.seed = int(rng)
        else:
            self.seed = 0
        self.epoch = 0
        self.sampler = sampler if sampler is not None else UniformNegativeSampler(
            max(store.n_entities, 2), rng=new_rng(rng)
        )
        self._bounds: Optional[List[Tuple[int, int]]] = None

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of batches per epoch (matches what ``__iter__`` yields)."""
        n = self.store.n_triples(self.split) * self.num_negatives
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def set_epoch(self, epoch: int) -> None:
        """Pin the epoch counter (distributed replicas align on this)."""
        self.epoch = int(epoch)

    def _block_bounds(self) -> List[Tuple[int, int]]:
        if self._bounds is None:
            self._bounds = self.store.block_bounds(
                self.batch_size * self.block_batches, split=self.split
            )
        return self._bounds

    def _iter_positives(self, epoch: int) -> Iterator[np.ndarray]:
        """Yield exact ``batch_size`` positive rows (trailing partial last)."""
        bounds = self._block_bounds()
        order = np.arange(len(bounds))
        epoch_rng = None
        if self.shuffle:
            epoch_rng = np.random.default_rng([self.seed, epoch])
            order = epoch_rng.permutation(len(bounds))
        carry: Optional[np.ndarray] = None
        for block_index in order:
            lo, hi = bounds[block_index]
            block = self.store.fetch_block(lo, hi, split=self.split)
            if self.num_negatives > 1:
                block = np.repeat(block, self.num_negatives, axis=0)
            if epoch_rng is not None:
                block = block[epoch_rng.permutation(block.shape[0])]
            if carry is not None and carry.size:
                block = np.concatenate([carry, block], axis=0)
                carry = None
            full = (block.shape[0] // self.batch_size) * self.batch_size
            for start in range(0, full, self.batch_size):
                yield block[start:start + self.batch_size]
            if block.shape[0] > full:
                carry = block[full:]
        if carry is not None and carry.size:
            yield carry

    def __iter__(self) -> Iterator[TripletBatch]:
        epoch, self.epoch = self.epoch, self.epoch + 1
        for positives in self._iter_positives(epoch):
            if self.drop_last and positives.shape[0] < self.batch_size:
                continue
            yield TripletBatch(positives=positives,
                               negatives=self.sampler.corrupt(positives))
