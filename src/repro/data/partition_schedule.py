"""PBG-style bucket-pair batch schedule for partitioned entity tables.

A step of plain shuffled SGD touches entities from every bucket, which forces
a partitioned table (:class:`~repro.nn.partitioned.PartitionedEmbedding`) to
thrash its resident set.  The Parti­tioned­StreamingIterator instead visits the
training split as **bucket-pair episodes**: an epoch is a seeded permutation
of the populated ``(head_bucket, tail_bucket)`` pairs, and every batch inside
an episode — positives *and* their corruptions — draws its entities from at
most those two buckets, so a training step faults at most two buckets
(``max_resident=2`` suffices, whatever ``P`` is).

Episodes stream out of the triple store through the contiguous rowid runs
:meth:`~repro.data.sqlite_store.SQLiteKGStore.pair_runs` computes (one run
per pair after :meth:`~repro.data.sqlite_store.SQLiteKGStore.cluster_by_partition`),
so peak memory stays one shuffle block, exactly like
:class:`~repro.data.streaming.StreamingBatchIterator`.

Negative corruption is bucket-local (the PBG recipe): a corrupted head is
redrawn uniformly from the *head* bucket of the episode and a corrupted tail
from the *tail* bucket.  That changes the corruption distribution relative to
global uniform sampling — it is the documented semantics of the partitioned
schedule, not a drop-in replacement — which is why trajectory-parity tests
run the standard schedule and this iterator has its own coverage tests.

Everything an epoch does is a deterministic function of ``(seed, epoch)``,
so the iterator honours the multiprocess trainer's lockstep contract: every
replica rebuilding it from the same description replays the identical batch
stream.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.batching import TripletBatch
from repro.partition import EntityPartition

#: Redraw attempts for corruptions that accidentally reproduce the positive.
_MAX_RETRIES = 10


class PartitionedStreamingIterator:
    """Stream bucket-pair episodes of positive/negative batches from a store.

    Parameters
    ----------
    store:
        Triple store exposing ``pair_runs``/``fetch_block``/``n_triples``
        (:class:`~repro.data.sqlite_store.SQLiteKGStore` or the in-memory
        twin).
    batch_size:
        Positives per batch; a trailing partial batch is emitted at the end
        of each episode (batches never straddle episodes — that would break
        the two-bucket guarantee).
    partition:
        The entity partition the embedding table uses; episode keys and
        bucket-local corruption ranges both derive from it.
    split:
        Which split to stream.
    seed:
        Epoch randomness seed: pair order, intra-block shuffles, and
        corruption draws are all drawn from ``default_rng([seed, epoch])``.
    num_negatives:
        Negatives contrasted per positive (positives are tiled, every copy
        drawing its own corruption, mirroring the dense protocol).
    block_batches:
        Shuffle granularity in batches (peak memory is one block).
    """

    def __init__(self, store, batch_size: int, partition: EntityPartition,
                 split: str = "train", seed: int = 0, num_negatives: int = 1,
                 block_batches: int = 16) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if num_negatives < 1:
            raise ValueError(f"num_negatives must be >= 1, got {num_negatives}")
        if block_batches <= 0:
            raise ValueError(f"block_batches must be positive, got {block_batches}")
        self.store = store
        self.batch_size = int(batch_size)
        self.partition = partition
        self.split = split
        self.seed = int(seed)
        self.num_negatives = int(num_negatives)
        self.block_batches = int(block_batches)
        self.epoch = 0
        #: Exposed for Trainer compatibility (no shared sampler object; the
        #: corruption stream is internal and per-epoch seeded).
        self.sampler = None
        self._runs: Optional[Dict[Tuple[int, int], List[Tuple[int, int]]]] = None
        self._pair_keys: Optional[List[Tuple[int, int]]] = None

    # ------------------------------------------------------------------ #
    def _pair_runs(self) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        if self._runs is None:
            self._runs = self.store.pair_runs(self.partition.bucket_size,
                                              split=self.split)
            self._pair_keys = sorted(self._runs)
        return self._runs

    @property
    def n_episodes(self) -> int:
        """Number of populated bucket pairs (episodes per epoch)."""
        self._pair_runs()
        return len(self._pair_keys)

    def __len__(self) -> int:
        """Batches per epoch (episode-partial batches included)."""
        runs = self._pair_runs()
        total = 0
        for pair_runs in runs.values():
            count = sum(hi - lo + 1 for lo, hi in pair_runs) * self.num_negatives
            total += -(-count // self.batch_size)
        return total

    def set_epoch(self, epoch: int) -> None:
        """Pin the epoch counter (distributed replicas align on this)."""
        self.epoch = int(epoch)

    # ------------------------------------------------------------------ #
    def _iter_episode_positives(self, pair: Tuple[int, int],
                                rng: np.random.Generator) -> Iterator[np.ndarray]:
        """Yield shuffled positive batches for one bucket-pair episode."""
        block_size = self.batch_size * self.block_batches
        carry: Optional[np.ndarray] = None
        for lo, hi in self._pair_runs()[pair]:
            for start in range(lo, hi + 1, block_size):
                stop = min(hi, start + block_size - 1)
                block = self.store.fetch_block(start, stop, split=self.split)
                if self.num_negatives > 1:
                    block = np.repeat(block, self.num_negatives, axis=0)
                block = block[rng.permutation(block.shape[0])]
                if carry is not None and carry.size:
                    block = np.concatenate([carry, block], axis=0)
                    carry = None
                full = (block.shape[0] // self.batch_size) * self.batch_size
                for batch_start in range(0, full, self.batch_size):
                    yield block[batch_start:batch_start + self.batch_size]
                if block.shape[0] > full:
                    carry = block[full:]
        if carry is not None and carry.size:
            # Flush inside the episode: a batch must never mix bucket pairs.
            yield carry

    def _corrupt(self, positives: np.ndarray, pair: Tuple[int, int],
                 rng: np.random.Generator) -> np.ndarray:
        """Bucket-local corruption: heads stay in ``pair[0]``, tails in ``pair[1]``."""
        head_lo, head_hi = self.partition.bucket_range(pair[0])
        tail_lo, tail_hi = self.partition.bucket_range(pair[1])
        m = positives.shape[0]
        corrupted = positives.copy()
        corrupt_head = rng.random(m) < 0.5
        head_draws = rng.integers(head_lo, head_hi, size=m)
        tail_draws = rng.integers(tail_lo, tail_hi, size=m)
        corrupted[corrupt_head, 0] = head_draws[corrupt_head]
        corrupted[~corrupt_head, 2] = tail_draws[~corrupt_head]
        for _ in range(_MAX_RETRIES):
            same = np.all(corrupted == positives, axis=1)
            if not same.any():
                break
            rows = np.flatnonzero(same)
            heads = corrupt_head[rows]
            corrupted[rows[heads], 0] = rng.integers(head_lo, head_hi,
                                                     size=int(heads.sum()))
            corrupted[rows[~heads], 2] = rng.integers(tail_lo, tail_hi,
                                                      size=int((~heads).sum()))
        return corrupted

    def __iter__(self) -> Iterator[TripletBatch]:
        epoch, self.epoch = self.epoch, self.epoch + 1
        self._pair_runs()
        rng = np.random.default_rng([self.seed, epoch])
        order = rng.permutation(len(self._pair_keys))
        for pair_index in order:
            pair = self._pair_keys[int(pair_index)]
            for positives in self._iter_episode_positives(pair, rng):
                yield TripletBatch(positives=positives,
                                   negatives=self._corrupt(positives, pair, rng))
