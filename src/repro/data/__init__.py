"""Knowledge-graph data layer.

Provides the dataset container, file/database loaders, synthetic generators
mirroring the paper's seven benchmark datasets, negative samplers, and batch
iterators.  Everything downstream (models, trainer, evaluators, benchmarks)
consumes :class:`KGDataset` and the ``(M, 3)`` integer triple convention
``(head, relation, tail)``.
"""

from repro.data.vocab import Vocabulary
from repro.data.dataset import KGDataset, TripleSplit
from repro.data.loaders import load_csv, load_tsv, load_ttl, load_triples_file
from repro.data.sqlite_store import SQLiteKGStore
from repro.data.synthetic import (
    generate_learnable_kg,
    generate_synthetic_kg,
    make_dataset_like,
)
from repro.data.catalog import PAPER_DATASETS, DatasetSpec, get_dataset_spec
from repro.data.negative_sampling import (
    NegativeSampler,
    UniformNegativeSampler,
    BernoulliNegativeSampler,
    SAMPLER_STRATEGIES,
    make_negative_sampler,
)
from repro.data.batching import TripletBatch, BatchIterator
from repro.data.streaming import (
    InMemoryTripleStore,
    StreamingBatchIterator,
    TripleStore,
)
from repro.data.partition_schedule import PartitionedStreamingIterator

__all__ = [
    "Vocabulary",
    "KGDataset",
    "TripleSplit",
    "load_csv",
    "load_tsv",
    "load_ttl",
    "load_triples_file",
    "SQLiteKGStore",
    "generate_synthetic_kg",
    "generate_learnable_kg",
    "make_dataset_like",
    "PAPER_DATASETS",
    "DatasetSpec",
    "get_dataset_spec",
    "NegativeSampler",
    "UniformNegativeSampler",
    "BernoulliNegativeSampler",
    "SAMPLER_STRATEGIES",
    "make_negative_sampler",
    "TripletBatch",
    "BatchIterator",
    "StreamingBatchIterator",
    "PartitionedStreamingIterator",
    "InMemoryTripleStore",
    "TripleStore",
]
