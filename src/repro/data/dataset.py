"""The :class:`KGDataset` container and train/valid/test splitting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.vocab import Vocabulary
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@dataclass
class TripleSplit:
    """Train / validation / test triple arrays of one knowledge graph."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray

    def __post_init__(self) -> None:
        self.train = check_triples(self.train, name="train")
        self.valid = check_triples(self.valid, name="valid")
        self.test = check_triples(self.test, name="test")

    @property
    def n_train(self) -> int:
        return self.train.shape[0]

    @property
    def n_valid(self) -> int:
        return self.valid.shape[0]

    @property
    def n_test(self) -> int:
        return self.test.shape[0]

    def all_triples(self) -> np.ndarray:
        """Concatenate every split (used to build the filtered-ranking set)."""
        return np.concatenate([self.train, self.valid, self.test], axis=0)


class KGDataset:
    """A knowledge graph: integer triples plus vocabulary metadata.

    Parameters
    ----------
    triples:
        ``(M, 3)`` integer array of ``(head, relation, tail)`` indices.
        When splits are not given, all triples are treated as training data.
    n_entities, n_relations:
        Vocabulary sizes.  Inferred from the triples when omitted.
    entity_vocab, relation_vocab:
        Optional label vocabularies (present when loaded from files).
    name:
        Human-readable dataset name (used in benchmark reports).
    split:
        Optional pre-computed :class:`TripleSplit`; overrides ``triples``.
    """

    def __init__(
        self,
        triples: Optional[np.ndarray] = None,
        n_entities: Optional[int] = None,
        n_relations: Optional[int] = None,
        entity_vocab: Optional[Vocabulary] = None,
        relation_vocab: Optional[Vocabulary] = None,
        name: str = "kg",
        split: Optional[TripleSplit] = None,
    ) -> None:
        if split is None:
            if triples is None:
                raise ValueError("either triples or split must be provided")
            triples = check_triples(triples)
            split = TripleSplit(
                train=triples,
                valid=np.empty((0, 3), dtype=np.int64),
                test=np.empty((0, 3), dtype=np.int64),
            )
        self.split = split
        all_triples = split.all_triples()
        inferred_entities = int(all_triples[:, [0, 2]].max()) + 1 if all_triples.size else 0
        inferred_relations = int(all_triples[:, 1].max()) + 1 if all_triples.size else 0
        self.n_entities = int(n_entities) if n_entities is not None else inferred_entities
        self.n_relations = int(n_relations) if n_relations is not None else inferred_relations
        if self.n_entities < inferred_entities:
            raise ValueError(
                f"n_entities={self.n_entities} is smaller than the largest entity index "
                f"({inferred_entities - 1})"
            )
        if self.n_relations < inferred_relations:
            raise ValueError(
                f"n_relations={self.n_relations} is smaller than the largest relation index "
                f"({inferred_relations - 1})"
            )
        if entity_vocab is not None and len(entity_vocab) != self.n_entities:
            raise ValueError("entity vocabulary size does not match n_entities")
        if relation_vocab is not None and len(relation_vocab) != self.n_relations:
            raise ValueError("relation vocabulary size does not match n_relations")
        self.entity_vocab = entity_vocab
        self.relation_vocab = relation_vocab
        self.name = str(name)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def triples(self) -> np.ndarray:
        """Training triples (alias kept for the common single-split case)."""
        return self.split.train

    @property
    def n_triples(self) -> int:
        """Number of training triples."""
        return self.split.n_train

    def __len__(self) -> int:
        return self.n_triples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KGDataset(name={self.name!r}, entities={self.n_entities}, "
            f"relations={self.n_relations}, train={self.split.n_train}, "
            f"valid={self.split.n_valid}, test={self.split.n_test})"
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_labeled_triples(
        cls,
        labeled: Iterable[Tuple[str, str, str]],
        name: str = "kg",
    ) -> "KGDataset":
        """Build a dataset (and vocabularies) from ``(head, relation, tail)`` labels."""
        entity_vocab = Vocabulary()
        relation_vocab = Vocabulary()
        rows: List[Tuple[int, int, int]] = []
        for head, relation, tail in labeled:
            rows.append(
                (entity_vocab.add(head), relation_vocab.add(relation), entity_vocab.add(tail))
            )
        triples = np.asarray(rows, dtype=np.int64).reshape(-1, 3)
        return cls(
            triples=triples,
            n_entities=len(entity_vocab),
            n_relations=len(relation_vocab),
            entity_vocab=entity_vocab.freeze(),
            relation_vocab=relation_vocab.freeze(),
            name=name,
        )

    def split_train_valid_test(
        self,
        valid_fraction: float = 0.05,
        test_fraction: float = 0.05,
        rng=None,
    ) -> "KGDataset":
        """Return a new dataset with the training triples re-split.

        The split is random over triples (the standard protocol for the
        benchmark KGs).  Fractions apply to the current *training* split.
        """
        if valid_fraction < 0 or test_fraction < 0 or valid_fraction + test_fraction >= 1:
            raise ValueError("fractions must be non-negative and sum to < 1")
        rng = new_rng(rng)
        triples = self.split.train
        order = rng.permutation(triples.shape[0])
        n_valid = int(round(valid_fraction * triples.shape[0]))
        n_test = int(round(test_fraction * triples.shape[0]))
        valid = triples[order[:n_valid]]
        test = triples[order[n_valid:n_valid + n_test]]
        train = triples[order[n_valid + n_test:]]
        return KGDataset(
            n_entities=self.n_entities,
            n_relations=self.n_relations,
            entity_vocab=self.entity_vocab,
            relation_vocab=self.relation_vocab,
            name=self.name,
            split=TripleSplit(train=train, valid=valid, test=test),
        )

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #
    def known_triples(self) -> Set[Tuple[int, int, int]]:
        """Set of every (h, r, t) across all splits — the filtered-ranking set."""
        return {tuple(row) for row in self.split.all_triples().tolist()}

    def tails_by_head_relation(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Map ``(head, relation) -> array of known tails`` over all splits."""
        mapping: Dict[Tuple[int, int], List[int]] = {}
        for h, r, t in self.split.all_triples().tolist():
            mapping.setdefault((h, r), []).append(t)
        return {key: np.asarray(sorted(set(vals)), dtype=np.int64)
                for key, vals in mapping.items()}

    def heads_by_relation_tail(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Map ``(relation, tail) -> array of known heads`` over all splits."""
        mapping: Dict[Tuple[int, int], List[int]] = {}
        for h, r, t in self.split.all_triples().tolist():
            mapping.setdefault((r, t), []).append(h)
        return {key: np.asarray(sorted(set(vals)), dtype=np.int64)
                for key, vals in mapping.items()}

    def relation_frequencies(self) -> np.ndarray:
        """Training-split frequency of each relation (length ``n_relations``)."""
        return np.bincount(self.split.train[:, 1], minlength=self.n_relations)

    def entity_degrees(self) -> np.ndarray:
        """Training-split degree (as head or tail) of each entity."""
        heads = np.bincount(self.split.train[:, 0], minlength=self.n_entities)
        tails = np.bincount(self.split.train[:, 2], minlength=self.n_entities)
        return heads + tails

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used by reports and the synthetic generator."""
        degrees = self.entity_degrees()
        rel_freq = self.relation_frequencies()
        return {
            "n_entities": float(self.n_entities),
            "n_relations": float(self.n_relations),
            "n_train": float(self.split.n_train),
            "n_valid": float(self.split.n_valid),
            "n_test": float(self.split.n_test),
            "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
            "max_degree": float(degrees.max()) if degrees.size else 0.0,
            "mean_relation_frequency": float(rel_freq.mean()) if rel_freq.size else 0.0,
        }

    def subsample(self, n_triples: int, rng=None) -> "KGDataset":
        """Return a dataset with at most ``n_triples`` training triples.

        Used by the benchmark harness to scale the paper's datasets down to
        CPU-friendly sizes while preserving the entity/relation vocabulary.
        """
        if n_triples <= 0:
            raise ValueError(f"n_triples must be positive, got {n_triples}")
        rng = new_rng(rng)
        train = self.split.train
        if n_triples >= train.shape[0]:
            return self
        keep = rng.choice(train.shape[0], size=n_triples, replace=False)
        return KGDataset(
            n_entities=self.n_entities,
            n_relations=self.n_relations,
            entity_vocab=self.entity_vocab,
            relation_vocab=self.relation_vocab,
            name=f"{self.name}-sub{n_triples}",
            split=TripleSplit(train=train[keep], valid=self.split.valid, test=self.split.test),
        )
