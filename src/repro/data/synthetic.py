"""Synthetic knowledge-graph generation.

The paper's experiments run on seven public KGs; in this offline environment
we generate synthetic graphs with matching (or proportionally scaled)
entity / relation / triple counts and realistic skew:

* entity participation follows a Zipf-like distribution (a few hub entities,
  a long tail), matching the degree skew of Freebase/WordNet-derived KGs;
* relation frequencies follow a power law (a handful of dominant relations);
* no duplicate triples and no self-loop (head == tail) triples are emitted.

Because the sparse-vs-dense comparison depends only on the index structure
(how many rows are gathered, how many unique rows are touched), these graphs
exercise exactly the same code paths as the originals.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.catalog import DatasetSpec, get_dataset_spec
from repro.data.dataset import KGDataset, TripleSplit
from repro.utils.seeding import new_rng


def _zipf_probabilities(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Normalized Zipf-like weights over ``n`` items with randomized order."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def generate_synthetic_kg(
    n_entities: int,
    n_relations: int,
    n_triples: int,
    rng=None,
    entity_skew: float = 0.8,
    relation_skew: float = 1.1,
    name: str = "synthetic",
    valid_fraction: float = 0.0,
    test_fraction: float = 0.0,
) -> KGDataset:
    """Generate a random KG with skewed entity and relation usage.

    Parameters
    ----------
    n_entities, n_relations, n_triples:
        Target sizes.  The generator retries collisions, so the returned
        training split has exactly ``n_triples`` unique triples whenever the
        space allows it.
    entity_skew, relation_skew:
        Zipf exponents controlling hubbiness; 0 gives uniform sampling.
    valid_fraction, test_fraction:
        Optional held-out splits carved from the generated triples.

    Returns
    -------
    :class:`~repro.data.dataset.KGDataset`
    """
    if n_entities < 2:
        raise ValueError(f"n_entities must be >= 2, got {n_entities}")
    if n_relations < 1:
        raise ValueError(f"n_relations must be >= 1, got {n_relations}")
    if n_triples < 1:
        raise ValueError(f"n_triples must be >= 1, got {n_triples}")
    capacity = n_entities * (n_entities - 1) * n_relations
    if n_triples > capacity:
        raise ValueError(
            f"cannot place {n_triples} unique triples in a graph with capacity {capacity}"
        )
    rng = new_rng(rng)
    ent_probs = _zipf_probabilities(n_entities, entity_skew, rng) if entity_skew > 0 else None
    rel_probs = _zipf_probabilities(n_relations, relation_skew, rng) if relation_skew > 0 else None

    seen = set()
    rows = np.empty((n_triples, 3), dtype=np.int64)
    filled = 0
    # Vectorized rejection sampling: draw in chunks, drop self-loops and duplicates.
    while filled < n_triples:
        chunk = max(1024, 2 * (n_triples - filled))
        heads = rng.choice(n_entities, size=chunk, p=ent_probs)
        tails = rng.choice(n_entities, size=chunk, p=ent_probs)
        rels = rng.choice(n_relations, size=chunk, p=rel_probs)
        mask = heads != tails
        for h, r, t in zip(heads[mask], rels[mask], tails[mask]):
            key = (int(h), int(r), int(t))
            if key in seen:
                continue
            seen.add(key)
            rows[filled] = key
            filled += 1
            if filled == n_triples:
                break

    dataset = KGDataset(
        triples=rows,
        n_entities=n_entities,
        n_relations=n_relations,
        name=name,
    )
    if valid_fraction > 0 or test_fraction > 0:
        dataset = dataset.split_train_valid_test(valid_fraction, test_fraction, rng=rng)
    return dataset


def generate_learnable_kg(
    n_entities: int,
    n_relations: int,
    n_triples: int,
    latent_dim: int = 16,
    noise: float = 0.05,
    rng=None,
    name: str = "synthetic-learnable",
    valid_fraction: float = 0.0,
    test_fraction: float = 0.0,
) -> KGDataset:
    """Generate a KG whose edges are realisable by a translational embedding.

    Entities are placed at latent positions ``z_e`` and each relation is a
    latent translation ``z_r``; for a sampled head and relation the tail is
    drawn from a softmax over ``−||z_h + z_r − z_t||² / τ``, so entities close
    to the translated point are strongly preferred but a long tail of
    alternatives keeps the graph diverse.  The resulting graph has exactly the
    structure TransE-family models assume, so held-out link prediction is
    learnable — which is what the accuracy experiments (Hits@10 vs embedding
    size, sparse/dense parity) need.  Pure training-time experiments use
    :func:`generate_synthetic_kg` instead, where structure is irrelevant.

    Parameters
    ----------
    latent_dim:
        Dimensionality of the generating latent space.
    noise:
        Softmax temperature scale; larger values flatten the tail distribution
        and make the link-prediction task harder.
    """
    if n_entities < 4:
        raise ValueError(f"n_entities must be >= 4, got {n_entities}")
    if n_relations < 1 or n_triples < 1:
        raise ValueError("n_relations and n_triples must be positive")
    if noise <= 0:
        raise ValueError(f"noise must be positive, got {noise}")
    capacity = n_entities * (n_entities - 1) * n_relations
    if n_triples > capacity:
        raise ValueError(
            f"cannot place {n_triples} unique triples in a graph with capacity {capacity}"
        )
    rng = new_rng(rng)
    positions = rng.standard_normal((n_entities, latent_dim))
    translations = rng.standard_normal((n_relations, latent_dim)) * 0.5
    # Temperature relative to the typical squared inter-entity distance, so the
    # task difficulty is insensitive to latent_dim.
    typical_sq = 2.0 * latent_dim
    temperature = noise * typical_sq

    seen = set()
    rows = np.empty((n_triples, 3), dtype=np.int64)
    filled = 0
    max_chunks = 500
    for _ in range(max_chunks):
        if filled >= n_triples:
            break
        chunk = max(256, n_triples - filled)
        heads = rng.integers(0, n_entities, size=chunk)
        rels = rng.integers(0, n_relations, size=chunk)
        targets = positions[heads] + translations[rels]
        sq_dists = ((targets[:, None, :] - positions[None, :, :]) ** 2).sum(axis=2)
        # A head can never be its own tail.
        sq_dists[np.arange(chunk, dtype=np.int64), heads] = np.inf
        logits = -sq_dists / temperature
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        # Vectorized categorical sampling via the inverse-CDF trick.
        cdf = np.cumsum(probs, axis=1)
        draws = rng.random((chunk, 1))
        tails = np.minimum((draws > cdf).sum(axis=1), n_entities - 1)
        before = filled
        for h, r, t in zip(heads, rels, tails):
            if h == t:
                continue
            key = (int(h), int(r), int(t))
            if key in seen:
                continue
            seen.add(key)
            rows[filled] = key
            filled += 1
            if filled == n_triples:
                break
        # When a sharp (low-temperature) distribution saturates its capacity,
        # anneal towards a flatter one so the requested size is always reached;
        # only the over-quota remainder loses structure.
        if filled - before < max(1, chunk // 100):
            temperature *= 2.0
    if filled < n_triples:
        raise RuntimeError(
            f"could only realise {filled}/{n_triples} unique triples; "
            "increase n_entities, n_relations, or noise"
        )
    dataset = KGDataset(triples=rows, n_entities=n_entities, n_relations=n_relations,
                        name=name)
    if valid_fraction > 0 or test_fraction > 0:
        dataset = dataset.split_train_valid_test(valid_fraction, test_fraction, rng=rng)
    return dataset


def make_dataset_like(
    name: str,
    scale: float = 1.0,
    rng=None,
    valid_fraction: float = 0.0,
    test_fraction: float = 0.0,
    spec: Optional[DatasetSpec] = None,
) -> KGDataset:
    """Generate a synthetic stand-in for one of the paper's datasets.

    Parameters
    ----------
    name:
        Catalog name (``"FB15K"``, ``"WN18"``, ...); ignored when ``spec`` is
        given explicitly.
    scale:
        Proportional down-scaling (1.0 reproduces the published sizes, which
        can take a while on a laptop; benchmarks default to ~0.01-0.05).
    valid_fraction, test_fraction:
        Held-out splits for accuracy experiments.
    """
    spec = spec if spec is not None else get_dataset_spec(name)
    spec = spec.scaled(scale)
    return generate_synthetic_kg(
        n_entities=spec.n_entities,
        n_relations=spec.n_relations,
        n_triples=spec.n_training_triples,
        rng=rng,
        name=spec.name,
        valid_fraction=valid_fraction,
        test_fraction=test_fraction,
    )
