"""Spec-driven experiments: one JSON artifact = one reproducible paper run.

:class:`ExperimentSpec` declares the whole pipeline — dataset + negative
sampling (:class:`DataSpec`), model (:class:`~repro.registry.ModelSpec`),
hyperparameters (:class:`~repro.training.TrainingConfig`), and evaluation
protocols (:class:`EvalSpec`) — and :class:`Experiment` executes it, writing a
self-contained artifact directory that checkpoint loading and the serving
engine consume directly.  ``sptransx run <spec.json>`` is the CLI face of this
package; ``sptransx train``/``evaluate`` are thin shims over it.

>>> from repro.experiment import DataSpec, ExperimentSpec, run_experiment
>>> from repro.registry import ModelSpec
>>> from repro.training import TrainingConfig
>>> spec = ExperimentSpec(
...     name="demo",
...     data=DataSpec(dataset="WN18RR", scale=0.003, test_fraction=0.1),
...     model=ModelSpec(model="transe", formulation="sparse",
...                     n_entities=2243, n_relations=2, embedding_dim=16),
...     training=TrainingConfig(epochs=2, batch_size=256, learning_rate=0.01),
... )
>>> result = run_experiment(spec)  # doctest: +SKIP
"""

from repro.experiment.spec import (
    CURRENT_SPEC_VERSION,
    DATA_GENERATORS,
    DATA_STORAGES,
    DataSpec,
    EvalSpec,
    ExperimentSpec,
)
from repro.experiment.runner import (
    Experiment,
    ExperimentArtifact,
    ExperimentResult,
    load_artifact,
    run_experiment,
)

__all__ = [
    "CURRENT_SPEC_VERSION",
    "DATA_GENERATORS",
    "DATA_STORAGES",
    "DataSpec",
    "EvalSpec",
    "ExperimentSpec",
    "Experiment",
    "ExperimentArtifact",
    "ExperimentResult",
    "load_artifact",
    "run_experiment",
]
