"""The :class:`Experiment` runner: materialise → build → train → eval → write.

One call composes every layer of the library behind an
:class:`~repro.experiment.spec.ExperimentSpec`:

1. materialise the dataset the :class:`~repro.experiment.spec.DataSpec` names;
2. build the model through the spec-driven registry;
3. train with :class:`~repro.training.Trainer` (+ a history callback);
4. run every requested protocol through the common
   :class:`~repro.evaluation.Evaluator` interface;
5. write a **self-contained artifact directory**::

       <artifact_dir>/
         spec.json          # the exact ExperimentSpec (vocab sizes resolved)
         checkpoint.npz     # model + optimiser state, training config metadata
         metrics.json       # final loss, phase breakdown, per-protocol reports
         history.json       # per-epoch loss / timing curves
         environment.json   # python/numpy/platform/seed provenance record

   ``load_model(artifact_dir)`` and ``InferenceEngine.from_artifact`` warm-load
   it directly; ``Experiment(spec, resume=artifact_dir)`` resumes it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.data.dataset import KGDataset, TripleSplit
from repro.data.negative_sampling import UniformNegativeSampler
from repro.data.partition_schedule import PartitionedStreamingIterator
from repro.data.sqlite_store import SQLiteKGStore
from repro.data.streaming import StreamingBatchIterator
from repro.data.batching import BatchIterator
from repro.nn.partitioned import partitioned_tables
from repro.partition import EntityPartition
from repro.evaluation.evaluators import EvalReport
from repro.models.base import KGEModel
from repro.optim.optimizer import Optimizer
from repro.registry import build_model
from repro.training.callbacks import HistoryCallback
from repro.training.checkpoint import (
    ARTIFACT_CHECKPOINT,
    load_checkpoint,
    load_model,
    restore_into,
    save_checkpoint,
    save_weight_files,
)
from repro.training.config import TrainingConfig
from repro.training.multiprocess import MultiprocessTrainer
from repro.training.trainer import Trainer, TrainingResult, build_optimizer
from repro.utils.logging import get_logger
from repro.utils.seeding import new_rng, seed_everything

from repro.experiment.spec import ExperimentSpec

logger = get_logger("experiment")

#: Artifact filenames (the checkpoint name lives in repro.training.checkpoint
#: so `load_checkpoint` can resolve artifact directories without importing us).
ARTIFACT_SPEC = "spec.json"
ARTIFACT_METRICS = "metrics.json"
ARTIFACT_HISTORY = "history.json"
ARTIFACT_ENVIRONMENT = "environment.json"


def _write_json(path: str, payload: Dict[str, object]) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=float)
        handle.write("\n")
    return path


@dataclass
class ExperimentResult:
    """Everything a finished run produced, in memory.

    ``dataset`` is ``None`` for out-of-core runs (``storage="sqlite"`` with
    no evaluation protocols): the runner releases the materialised triples
    before training so peak RSS stays bounded; ``dataset_name`` survives.
    """

    spec: ExperimentSpec
    dataset: Optional[KGDataset]
    model: KGEModel
    training: TrainingResult
    reports: List[EvalReport] = field(default_factory=list)
    artifact_dir: Optional[str] = None
    dataset_name: str = ""

    @property
    def metrics(self) -> Dict[str, object]:
        """The ``metrics.json`` payload (uniform across protocols)."""
        return {
            "experiment": self.spec.name,
            "final_loss": self.training.final_loss,
            "epochs_trained": len(self.training.epochs),
            "breakdown_s": self.training.breakdown(),
            "evaluations": {report.protocol: report.to_dict()
                            for report in self.reports},
        }

    def report(self, protocol: str) -> EvalReport:
        """The report for one protocol; raises ``KeyError`` when absent."""
        for report in self.reports:
            if report.protocol == protocol:
                return report
        raise KeyError(
            f"no {protocol!r} report in this run; ran {[r.protocol for r in self.reports]}"
        )


class Experiment:
    """Execute one :class:`ExperimentSpec` end to end.

    Parameters
    ----------
    spec:
        The declarative run description (or a path to its JSON file).
    artifact_dir:
        Where to write the self-contained artifact directory; ``None`` keeps
        the run in memory only.
    checkpoint_path:
        Optional extra single-file checkpoint destination (what the
        ``sptransx train --checkpoint`` shim uses).
    resume:
        Checkpoint file or artifact directory to resume training from; the
        stored epoch counter reduces the remaining epoch budget and any stored
        training config is schema-validated against this spec's.
    dataset:
        Optional pre-materialised dataset standing in for
        ``spec.data.materialize()``.  A caller that already loaded the data
        (e.g. the CLI pinning a triples file's vocabulary into the spec) can
        hand it over instead of paying a second load; it MUST be the dataset
        the spec's data section describes — the vocabulary check in
        :meth:`ExperimentSpec.resolved_model_spec` is the only guard.
    """

    def __init__(self, spec: Union[ExperimentSpec, str],
                 artifact_dir: Optional[str] = None,
                 checkpoint_path: Optional[str] = None,
                 resume: Optional[str] = None,
                 dataset: Optional[KGDataset] = None) -> None:
        if isinstance(spec, str):
            spec = ExperimentSpec.from_file(spec)
        self.spec = spec
        self.artifact_dir = artifact_dir
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self._dataset = dataset

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "Experiment":
        """Build a runner straight from a spec JSON file."""
        return cls(ExperimentSpec.from_file(path), **kwargs)

    # ------------------------------------------------------------------ #
    def run(self) -> ExperimentResult:
        """Execute the pipeline; returns the in-memory result.

        Evaluation feasibility (split emptiness) is checked *before* training
        so a spec asking for e.g. classification without a validation split
        fails in milliseconds, not after the epoch budget.
        """
        spec = self.spec
        seed_everything(spec.seed)
        dataset = self._dataset if self._dataset is not None else spec.data.materialize()
        dataset_name = dataset.name
        model_spec = spec.resolved_model_spec(dataset)

        evaluators = spec.eval.build_evaluators(seed=spec.seed)
        for evaluator in evaluators:
            evaluator.check_dataset(dataset)

        model = build_model(model_spec, rng=spec.seed)
        optimizer = build_optimizer(spec.training.optimizer, model,
                                    spec.training.learning_rate)
        start_epoch = self._maybe_resume(model, optimizer)
        remaining = max(spec.training.epochs - start_epoch, 0)

        db_path = self._maybe_spool_to_sqlite(dataset)
        # A store spooled to a temporary file (no artifact directory, no
        # explicit storage_path) is deleted once training ends.
        ephemeral_db = (db_path is not None and self.artifact_dir is None
                        and self.spec.data.storage_path is None)
        batch_factory = self._batch_factory(dataset, db_path)
        if (spec.data.storage == "sqlite" and not evaluators
                and spec.data.negative_sampler == "uniform"
                and self._dataset is None):
            # Out-of-core mode: the triples now live (only) in SQLite and the
            # uniform sampler needs just the entity count, so the materialised
            # arrays can be released before training — this is what keeps
            # peak RSS bounded for graphs larger than RAM.
            dataset = None

        logger.info("experiment %r: training %s on %s for %d epoch(s) "
                    "(storage=%s, workers=%d)",
                    spec.name, type(model).__name__, dataset_name, remaining,
                    spec.data.storage, spec.training.num_workers)
        try:
            if spec.training.num_workers > 1:
                if start_epoch:
                    raise ValueError(
                        "cannot resume a checkpoint with num_workers > 1: worker "
                        "replicas start with fresh optimiser state; resume with "
                        "num_workers=1 (or finish the run single-worker first)"
                    )
                trainer = MultiprocessTrainer(model, batch_factory,
                                              spec.training.num_workers,
                                              spec.training)
                training = trainer.train(epochs=remaining)
                # Checkpoint rank 0's *stepped* optimiser, not the unused one
                # built above — resuming from this artifact (single-worker)
                # must continue with real Adam/Adagrad state.
                optimizer = trainer.optimizer
            else:
                trainer = Trainer(model, config=spec.training, optimizer=optimizer,
                                  batches=batch_factory(),
                                  callbacks=[HistoryCallback()])
                trainer.skip_epochs(start_epoch)
                training = trainer.train(epochs=remaining, start_epoch=start_epoch)
        finally:
            if ephemeral_db and os.path.exists(db_path):
                os.unlink(db_path)

        reports = [evaluator.run(model, dataset) for evaluator in evaluators]

        result = ExperimentResult(spec=spec, dataset=dataset, model=model,
                                  training=training, reports=reports,
                                  artifact_dir=self.artifact_dir,
                                  dataset_name=dataset_name)
        epoch = start_epoch + len(training.epochs)
        if self.artifact_dir is not None:
            self._write_artifacts(result, optimizer, epoch)
        if self.checkpoint_path is not None:
            save_checkpoint(self.checkpoint_path, model, optimizer, epoch=epoch,
                            losses=training.losses,
                            extra_metadata=self._checkpoint_metadata())
        return result

    # ------------------------------------------------------------------ #
    def _sqlite_path(self) -> str:
        """Database file backing ``storage="sqlite"`` for this run."""
        if self.spec.data.storage_path is not None:
            return self.spec.data.storage_path
        if self.artifact_dir is not None:
            os.makedirs(self.artifact_dir, exist_ok=True)
            return os.path.join(self.artifact_dir, "data.sqlite")
        fd, path = tempfile.mkstemp(suffix=".sptransx.sqlite")
        os.close(fd)
        os.unlink(path)
        return path

    @staticmethod
    def _dataset_fingerprint(dataset: KGDataset) -> str:
        """Content hash identifying a training split (name/sizes/sampled rows).

        Stored in the store's meta table at spool time and compared on reuse,
        so a stale database that merely *counts* the same as the requested
        dataset cannot silently feed the wrong triples into training.
        """
        import hashlib

        train = dataset.split.train
        digest = hashlib.sha256()
        digest.update(f"{dataset.name}|{dataset.n_entities}|"
                      f"{dataset.n_relations}|{train.shape[0]}|".encode())
        if train.shape[0]:
            sample = np.linspace(0, train.shape[0] - 1,
                                 num=min(train.shape[0], 4096), dtype=np.int64)
            digest.update(np.ascontiguousarray(train[sample]).tobytes())
        return digest.hexdigest()

    def _maybe_spool_to_sqlite(self, dataset: KGDataset) -> Optional[str]:
        """Ingest the dataset into the run's SQLite store (idempotent)."""
        if self.spec.data.storage != "sqlite":
            return None
        path = self._sqlite_path()
        fingerprint = self._dataset_fingerprint(dataset)
        with SQLiteKGStore(path) as store:
            if store.n_triples("train") == 0:
                logger.info("spooling %d training triples into %s",
                            dataset.split.train.shape[0], path)
                store.ingest_dataset(dataset)
                store.set_meta("dataset_fingerprint", fingerprint)
            elif store.get_meta("dataset_fingerprint") != fingerprint:
                raise ValueError(
                    f"SQLite store {path} was spooled from a different dataset "
                    f"than this spec materialises; delete the stale store or "
                    "point storage_path elsewhere"
                )
        return path

    def _batch_factory(self, dataset: KGDataset,
                       db_path: Optional[str]) -> Callable[[], object]:
        """A zero-arg builder of the run's deterministic batch pipeline.

        Every invocation yields an identical batch/negative stream, which is
        the lockstep contract the multiprocess trainer relies on; the
        single-worker path calls it once.  For SQLite storage each call opens
        its own connection, so no handle ever crosses a process fork.
        """
        spec = self.spec
        config = spec.training
        partitions = spec.model.partitions or 1
        if spec.data.storage == "sqlite" and partitions > 1:
            # Partition-aware schedule: bucket-pair episodes over the store,
            # so a training step touches at most two entity buckets and the
            # table's resident set stays at its default bound of 2.
            assert db_path is not None
            if spec.data.negative_sampler != "uniform":
                raise ValueError(
                    "partitioned sqlite training uses the bucket-pair "
                    "schedule, whose corruption is bucket-local uniform; "
                    f"negative_sampler={spec.data.negative_sampler!r} is not "
                    "supported with partitions > 1 (use \"uniform\" or "
                    "storage=\"memory\")"
                )
            if not config.shuffle:
                raise ValueError(
                    "partitioned sqlite training always shuffles (seeded "
                    "bucket-pair episodes); shuffle=False is not supported "
                    "with partitions > 1"
                )
            partition = EntityPartition(dataset.n_entities, partitions)
            if spec.data.storage_path is None:
                # One-time disk-side clustering so every episode is a single
                # contiguous rowid run (idempotent per bucket size).  Only for
                # the run's own store: clustering reorders the triples table,
                # which would silently change the seeded block shuffle of any
                # later *unpartitioned* run sharing a user-supplied database.
                with SQLiteKGStore(db_path) as store:
                    store.cluster_by_partition(partition.bucket_size)
            else:
                logger.info(
                    "partitioned training on user-supplied store %s: skipping "
                    "disk-side clustering (episodes stream fragmented runs; "
                    "spool into a run-owned store for contiguous episodes)",
                    db_path)
            shuffle_seed = config.seed if config.seed is not None else 0
            num_negatives = spec.data.num_negatives
            batch_size = config.batch_size

            def factory():
                return PartitionedStreamingIterator(
                    SQLiteKGStore(db_path), batch_size=batch_size,
                    partition=partition, seed=shuffle_seed,
                    num_negatives=num_negatives,
                )
            return factory

        if spec.data.storage == "sqlite":
            assert db_path is not None
            n_entities = dataset.n_entities
            shuffle_seed = config.seed if config.seed is not None else 0
            sampler_seed = spec.seed
            num_negatives = spec.data.num_negatives
            if spec.data.negative_sampler == "uniform":
                def make_sampler():
                    return UniformNegativeSampler(max(n_entities, 2),
                                                  rng=new_rng(sampler_seed))
            else:
                data_spec = spec.data

                def make_sampler():
                    return data_spec.build_sampler(dataset, rng=sampler_seed)

            def factory():
                return StreamingBatchIterator(
                    SQLiteKGStore(db_path), batch_size=config.batch_size,
                    sampler=make_sampler(), shuffle=config.shuffle,
                    seed=shuffle_seed, num_negatives=num_negatives,
                )
            return factory

        training_dataset = self._training_dataset(dataset)
        data_spec = spec.data
        sampler_seed = spec.seed

        def factory():
            rng = new_rng(config.seed)
            return BatchIterator(
                training_dataset, batch_size=config.batch_size,
                sampler=data_spec.build_sampler(dataset, rng=sampler_seed),
                shuffle=config.shuffle,
                regenerate_negatives=config.regenerate_negatives, rng=rng,
            )
        return factory

    # ------------------------------------------------------------------ #
    def _training_dataset(self, dataset: KGDataset) -> KGDataset:
        """Tile positives ``num_negatives`` times so each copy draws its own
        corruption (the multi-negative protocol); evaluators always see the
        original dataset."""
        k = self.spec.data.num_negatives
        if k == 1:
            return dataset
        split = dataset.split
        return KGDataset(
            n_entities=dataset.n_entities,
            n_relations=dataset.n_relations,
            entity_vocab=dataset.entity_vocab,
            relation_vocab=dataset.relation_vocab,
            name=f"{dataset.name}-neg{k}",
            split=TripleSplit(train=np.repeat(split.train, k, axis=0),
                              valid=split.valid, test=split.test),
        )

    def _maybe_resume(self, model: KGEModel, optimizer: Optimizer) -> int:
        if self.resume is None:
            return 0
        checkpoint = load_checkpoint(self.resume)
        if checkpoint.partition_manifest is not None or (self.spec.model.partitions or 1) > 1:
            raise ValueError(
                "cannot resume a partitioned run: bucket optimiser state is "
                "paged per bucket and is not replayable yet; train in one go "
                "(or serve the artifact, which needs no resume)"
            )
        stored = checkpoint.metadata.get("training_config")
        if stored is not None:
            # Schema-validates the stored payload (stale keys fail loudly)
            # and pins the hyperparameters the optimiser state depends on.
            restored = TrainingConfig.from_dict(stored)
            for attr in ("optimizer", "learning_rate"):
                if getattr(restored, attr) != getattr(self.spec.training, attr):
                    raise ValueError(
                        f"cannot resume: checkpoint was trained with "
                        f"{attr}={getattr(restored, attr)!r} but the spec says "
                        f"{getattr(self.spec.training, attr)!r}"
                    )
        restore_into(checkpoint, model, optimizer)
        logger.info("resumed from %s at epoch %d", self.resume, checkpoint.epoch)
        return checkpoint.epoch

    def _checkpoint_metadata(self) -> Dict[str, object]:
        return {
            "experiment": self.spec.name,
            "training_config": self.spec.training.to_dict(),
        }

    def _write_artifacts(self, result: ExperimentResult, optimizer: Optimizer,
                         epoch: int) -> None:
        directory = self.artifact_dir
        assert directory is not None
        os.makedirs(directory, exist_ok=True)
        self.spec.to_file(os.path.join(directory, ARTIFACT_SPEC))
        save_checkpoint(os.path.join(directory, ARTIFACT_CHECKPOINT),
                        result.model, optimizer, epoch=epoch,
                        losses=result.training.losses,
                        extra_metadata=self._checkpoint_metadata())
        # Mirror the parameters as numpy.lib.format files so the artifact can
        # be served memory-mapped (npz members cannot be mapped).  Partitioned
        # models already wrote their bucket files + manifest as part of
        # save_checkpoint (a partitioned npz is incomplete without them).
        if not partitioned_tables(result.model):
            save_weight_files(directory, result.model)
        if self.spec.model.ann is not None:
            # ANN serving index built at artifact-write time: cluster the
            # just-written bucket files and record the auto- (or spec-) chosen
            # nprobe in index/index.json — from_artifact(ann="auto") picks the
            # index up with no extra flags.
            from repro.ann import build_index_files

            build_index_files(directory, kind=self.spec.model.ann,
                              nprobe=self.spec.model.nprobe)
        _write_json(os.path.join(directory, ARTIFACT_METRICS), result.metrics)
        _write_json(os.path.join(directory, ARTIFACT_HISTORY), {
            "losses": result.training.losses,
            "epochs": [{
                "epoch": stats.epoch,
                "loss": stats.loss,
                "forward_s": stats.forward_time,
                "backward_s": stats.backward_time,
                "step_s": stats.step_time,
                "data_s": stats.data_time,
            } for stats in result.training.epochs],
        })
        _write_json(os.path.join(directory, ARTIFACT_ENVIRONMENT), {
            "experiment": self.spec.name,
            "seed": self.spec.seed,
            "tags": list(self.spec.tags),
            "python": sys.version,
            "numpy": np.__version__,
            "platform": platform.platform(),
            "created_unix": time.time(),
        })
        logger.info("artifact directory written to %s", directory)


def run_experiment(spec: Union[ExperimentSpec, str],
                   artifact_dir: Optional[str] = None,
                   **kwargs) -> ExperimentResult:
    """One-call ``spec → finished run`` (spec object or JSON path)."""
    return Experiment(spec, artifact_dir=artifact_dir, **kwargs).run()


@dataclass
class ExperimentArtifact:
    """A loaded artifact directory: spec + recorded metrics + lazy model."""

    path: str
    spec: ExperimentSpec
    metrics: Dict[str, object]
    history: Dict[str, object]

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.path, ARTIFACT_CHECKPOINT)

    def load_model(self, mmap: bool = False, quantized=None) -> KGEModel:
        """Rebuild the trained model from the artifact's checkpoint.

        ``mmap=True`` attaches the parameters to the artifact's on-disk
        weight files instead of densifying them (read-only serving path).
        ``quantized`` (``"fp16"``/``"int8"``/``"auto"``) serves the quantized
        bucket files instead — see
        :func:`repro.training.checkpoint.load_model`.
        """
        return load_model(self.checkpoint_path, mmap=mmap, quantized=quantized)


def load_artifact(path: str) -> ExperimentArtifact:
    """Read an artifact directory written by :class:`Experiment`."""
    if not os.path.isdir(path):
        raise FileNotFoundError(f"{path} is not an artifact directory")
    spec = ExperimentSpec.from_file(os.path.join(path, ARTIFACT_SPEC))
    with open(os.path.join(path, ARTIFACT_METRICS), "r", encoding="utf-8") as handle:
        metrics = json.load(handle)
    history_path = os.path.join(path, ARTIFACT_HISTORY)
    history: Dict[str, object] = {}
    if os.path.exists(history_path):
        with open(history_path, "r", encoding="utf-8") as handle:
            history = json.load(handle)
    return ExperimentArtifact(path=os.path.abspath(path), spec=spec,
                              metrics=metrics, history=history)
