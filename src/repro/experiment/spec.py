"""Declarative experiment specs: data → model → training → evaluation.

A paper run used to live in argparse flags scattered over ``cli.py``; nothing
reproducible survived the process.  This module makes the whole pipeline a
single JSON-serialisable artifact:

* :class:`DataSpec` — which dataset to materialise (catalog synthetic, the
  structure-bearing "learnable" generator, or a triples file), how to split
  it, and the negative-sampling strategy/count;
* :class:`EvalSpec` — which evaluation protocols to run and with what
  cutoffs/batching;
* :class:`ExperimentSpec` — the umbrella: data + :class:`~repro.registry.ModelSpec`
  + :class:`~repro.training.TrainingConfig` + eval + seed + tags, with
  schema-validated ``from_dict``/``from_file`` and versioned serialisation.

Specs are frozen (hash-/compare-friendly, safe to share across sweeps) and
round-trip losslessly: ``ExperimentSpec.from_dict(spec.to_dict()) == spec``.
Unknown keys are rejected with a closest-match suggestion instead of a bare
``TypeError``, because specs are edited by hand.
"""

from __future__ import annotations

import difflib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.data.catalog import get_dataset_spec
from repro.data.dataset import KGDataset
from repro.data.loaders import load_triples_file
from repro.data.negative_sampling import (
    SAMPLER_STRATEGIES,
    NegativeSampler,
    make_negative_sampler,
)
from repro.data.synthetic import generate_learnable_kg, make_dataset_like
from repro.evaluation.evaluators import (
    EVALUATOR_PROTOCOLS,
    Evaluator,
    build_evaluator,
)
from repro.registry import ModelSpec
from repro.training.config import TrainingConfig

#: Serialisation version written by :meth:`ExperimentSpec.to_dict`.  Bump when
#: a field changes meaning; ``from_dict`` refuses versions from the future.
CURRENT_SPEC_VERSION = 1

#: Synthetic generators a :class:`DataSpec` can name.
DATA_GENERATORS = ("zipf", "learnable")

#: Storage backends a :class:`DataSpec` can train from.
DATA_STORAGES = ("memory", "sqlite")


def _reject_unknown_keys(payload: Mapping[str, object], known, section: str) -> None:
    """Schema guard shared by every spec section: fail with suggestions."""
    unknown = sorted(set(payload) - set(known))
    if not unknown:
        return
    hints = []
    for key in unknown:
        close = difflib.get_close_matches(key, list(known), n=1)
        hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
    raise ValueError(
        f"unknown key(s) in the {section} section: {', '.join(hints)}; "
        f"valid keys: {sorted(known)}"
    )


def _require_mapping(payload, section: str) -> Mapping[str, object]:
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"the {section} section must be a mapping, got {type(payload).__name__}"
        )
    return payload


@dataclass(frozen=True)
class DataSpec:
    """Everything needed to materialise a dataset and its negative sampler.

    Attributes
    ----------
    dataset:
        Catalog name (``"FB15K"``, ``"WN18RR"``, ...); ignored when
        ``triples_file`` is set.
    scale:
        Proportional down-scaling of the catalog sizes (synthetic sources).
    triples_file:
        CSV/TSV/TTL file of labelled triples to load instead of synthesising.
    generator:
        ``"zipf"`` (degree-skewed random graph, the training-time workload) or
        ``"learnable"`` (latent-translation graph whose held-out links are
        actually predictable — use for accuracy experiments).
    valid_fraction, test_fraction:
        Held-out split fractions.
    seed:
        Seed for generation/splitting (independent of the training seed).
    negative_sampler:
        ``"uniform"`` or ``"bernoulli"`` corruption strategy.
    num_negatives:
        Negatives contrasted against each positive per epoch (``K > 1`` tiles
        each positive ``K`` times, each copy drawing its own corruption).
    storage:
        ``"memory"`` (default) trains from in-memory arrays with the paper's
        pre-generated-negative protocol; ``"sqlite"`` spools the training
        split into an on-disk SQLite store and streams shuffled batches out
        of it (:class:`~repro.data.StreamingBatchIterator`), bounding peak
        RSS for graphs larger than RAM.  Negatives are then drawn per batch
        on the fly.
    storage_path:
        Database file backing ``storage="sqlite"``; defaults to
        ``data.sqlite`` inside the artifact directory (or a temporary file
        for in-memory-only runs).
    """

    dataset: str = "FB15K"
    scale: float = 0.01
    triples_file: Optional[str] = None
    generator: str = "zipf"
    valid_fraction: float = 0.0
    test_fraction: float = 0.05
    seed: int = 0
    negative_sampler: str = "uniform"
    num_negatives: int = 1
    storage: str = "memory"
    storage_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.triples_file is None and not (0 < self.scale <= 1):
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.generator not in DATA_GENERATORS:
            raise ValueError(
                f"generator must be one of {DATA_GENERATORS}, got {self.generator!r}"
            )
        if self.storage not in DATA_STORAGES:
            raise ValueError(
                f"storage must be one of {DATA_STORAGES}, got {self.storage!r}"
            )
        if self.negative_sampler not in SAMPLER_STRATEGIES:
            raise ValueError(
                f"negative_sampler must be one of {SAMPLER_STRATEGIES}, "
                f"got {self.negative_sampler!r}"
            )
        if self.num_negatives < 1:
            raise ValueError(f"num_negatives must be >= 1, got {self.num_negatives}")
        if (self.valid_fraction < 0 or self.test_fraction < 0
                or self.valid_fraction + self.test_fraction >= 1):
            raise ValueError(
                "valid_fraction/test_fraction must be non-negative and sum to < 1"
            )

    # ------------------------------------------------------------------ #
    def vocab_sizes(self) -> Optional[Tuple[int, int]]:
        """``(n_entities, n_relations)`` when knowable without materialising.

        Synthetic sources pass the scaled catalog sizes straight into the
        generator, so the sizes are deterministic; file sources return
        ``None`` (the vocabulary emerges from the file's labels).
        """
        if self.triples_file is not None:
            return None
        spec = get_dataset_spec(self.dataset).scaled(self.scale)
        return spec.n_entities, spec.n_relations

    def materialize(self) -> KGDataset:
        """Load or generate the dataset this spec describes."""
        if self.triples_file is not None:
            kg = load_triples_file(self.triples_file)
            if self.valid_fraction > 0 or self.test_fraction > 0:
                kg = kg.split_train_valid_test(self.valid_fraction,
                                               self.test_fraction, rng=self.seed)
            return kg
        if self.generator == "learnable":
            spec = get_dataset_spec(self.dataset).scaled(self.scale)
            return generate_learnable_kg(
                n_entities=spec.n_entities,
                n_relations=spec.n_relations,
                n_triples=spec.n_training_triples,
                rng=self.seed,
                name=spec.name,
                valid_fraction=self.valid_fraction,
                test_fraction=self.test_fraction,
            )
        return make_dataset_like(self.dataset, scale=self.scale, rng=self.seed,
                                 valid_fraction=self.valid_fraction,
                                 test_fraction=self.test_fraction)

    def build_sampler(self, dataset: KGDataset, rng=None) -> NegativeSampler:
        """The negative sampler this spec names, bound to ``dataset``."""
        return make_negative_sampler(self.negative_sampler, dataset, rng=rng)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "dataset": self.dataset,
            "scale": self.scale,
            "generator": self.generator,
            "valid_fraction": self.valid_fraction,
            "test_fraction": self.test_fraction,
            "seed": self.seed,
            "negative_sampler": self.negative_sampler,
            "num_negatives": self.num_negatives,
            "storage": self.storage,
        }
        if self.triples_file is not None:
            out["triples_file"] = self.triples_file
        if self.storage_path is not None:
            out["storage_path"] = self.storage_path
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DataSpec":
        payload = _require_mapping(payload, "data")
        known = ("dataset", "scale", "triples_file", "generator", "valid_fraction",
                 "test_fraction", "seed", "negative_sampler", "num_negatives",
                 "storage", "storage_path")
        _reject_unknown_keys(payload, known, "data")
        return cls(
            dataset=str(payload.get("dataset", "FB15K")),
            scale=float(payload.get("scale", 0.01)),  # type: ignore[arg-type]
            triples_file=(str(payload["triples_file"])
                          if payload.get("triples_file") is not None else None),
            generator=str(payload.get("generator", "zipf")),
            valid_fraction=float(payload.get("valid_fraction", 0.0)),  # type: ignore[arg-type]
            test_fraction=float(payload.get("test_fraction", 0.05)),  # type: ignore[arg-type]
            seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
            negative_sampler=str(payload.get("negative_sampler", "uniform")),
            num_negatives=int(payload.get("num_negatives", 1)),  # type: ignore[arg-type]
            storage=str(payload.get("storage", "memory")),
            storage_path=(str(payload["storage_path"])
                          if payload.get("storage_path") is not None else None),
        )


@dataclass(frozen=True)
class EvalSpec:
    """Which evaluation protocols to run after training, and how.

    Attributes
    ----------
    protocols:
        Any subset of :data:`~repro.evaluation.EVALUATOR_PROTOCOLS`
        (``link_prediction``, ``classification``, ``relation_categories``);
        empty disables post-training evaluation.
    filtered:
        Filtered vs raw ranking for link prediction.
    ks:
        Hits@k cutoffs.
    batch_size:
        Ranking queries scored per chunk (bounds the score-block memory).
    split:
        Split link prediction ranks on (classification always uses
        valid+test; relation categories always use test).
    """

    protocols: Tuple[str, ...] = ("link_prediction",)
    filtered: bool = True
    ks: Tuple[int, ...] = (1, 3, 10)
    batch_size: int = 64
    split: str = "test"

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols",
                           tuple(str(p) for p in self.protocols))
        object.__setattr__(self, "ks", tuple(int(k) for k in self.ks))
        for protocol in self.protocols:
            if protocol not in EVALUATOR_PROTOCOLS:
                raise ValueError(
                    f"unknown evaluation protocol {protocol!r}; "
                    f"available: {sorted(EVALUATOR_PROTOCOLS)}"
                )
        if len(set(self.protocols)) != len(self.protocols):
            raise ValueError(f"duplicate evaluation protocols: {self.protocols}")
        if self.split not in ("train", "valid", "test"):
            raise ValueError(f"split must be train/valid/test, got {self.split!r}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if not self.ks or any(k <= 0 for k in self.ks):
            raise ValueError(f"ks must be positive cutoffs, got {self.ks}")

    def build_evaluators(self, seed: int = 0) -> List[Evaluator]:
        """Instantiate one :class:`Evaluator` per requested protocol.

        ``seed`` feeds the protocols that draw corruption noise
        (classification), so a reloaded artifact reproduces its metrics.
        """
        evaluators: List[Evaluator] = []
        for protocol in self.protocols:
            if protocol == "link_prediction":
                evaluators.append(build_evaluator(
                    protocol, ks=self.ks, filtered=self.filtered,
                    batch_size=self.batch_size, split=self.split))
            elif protocol == "classification":
                evaluators.append(build_evaluator(protocol, seed=seed))
            else:  # relation_categories
                evaluators.append(build_evaluator(
                    protocol, ks=self.ks, batch_size=self.batch_size))
        return evaluators

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocols": list(self.protocols),
            "filtered": self.filtered,
            "ks": list(self.ks),
            "batch_size": self.batch_size,
            "split": self.split,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EvalSpec":
        payload = _require_mapping(payload, "eval")
        known = ("protocols", "filtered", "ks", "batch_size", "split")
        _reject_unknown_keys(payload, known, "eval")
        for key in ("protocols", "ks"):
            # tuple("link_prediction") would silently explode a hand-written
            # scalar into characters; demand a real list.
            if isinstance(payload.get(key), str):
                raise ValueError(
                    f"eval section key {key!r} must be a list, "
                    f"got the string {payload[key]!r}"
                )
        return cls(
            protocols=tuple(payload.get("protocols", ("link_prediction",))),  # type: ignore[arg-type]
            filtered=bool(payload.get("filtered", True)),
            ks=tuple(payload.get("ks", (1, 3, 10))),  # type: ignore[arg-type]
            batch_size=int(payload.get("batch_size", 64)),  # type: ignore[arg-type]
            split=str(payload.get("split", "test")),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible end-to-end run: data → train → eval → artifacts.

    The single artifact ``sptransx run`` consumes and every scenario layer
    (sweeps, distributed runs) composes.  ``seed`` governs model init,
    batching/negative-sampling streams, and evaluation noise; ``data.seed``
    separately governs dataset generation so the same graph can be reused
    across training seeds.
    """

    model: ModelSpec
    data: DataSpec = field(default_factory=DataSpec)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    eval: EvalSpec = field(default_factory=EvalSpec)
    name: str = "experiment"
    seed: int = 0
    tags: Tuple[str, ...] = ()
    version: int = CURRENT_SPEC_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))
        object.__setattr__(self, "name", str(self.name))
        if not self.name:
            raise ValueError("experiment name must be non-empty")
        if int(self.seed) < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        object.__setattr__(self, "seed", int(self.seed))
        if self.version > CURRENT_SPEC_VERSION:
            raise ValueError(
                f"spec version {self.version} is newer than this library "
                f"supports ({CURRENT_SPEC_VERSION}); upgrade the library"
            )

    # ------------------------------------------------------------------ #
    def resolved_model_spec(self, dataset: KGDataset) -> ModelSpec:
        """The model spec with vocabulary sizes validated against ``dataset``.

        A spec whose model section was written for a different vocabulary is
        rejected here — silently training on mismatched sizes is how stale
        specs corrupt sweeps.
        """
        spec = self.model
        if (spec.n_entities, spec.n_relations) != (dataset.n_entities,
                                                   dataset.n_relations):
            raise ValueError(
                f"model spec vocabulary ({spec.n_entities} entities, "
                f"{spec.n_relations} relations) does not match the materialised "
                f"dataset {dataset.name!r} ({dataset.n_entities}, "
                f"{dataset.n_relations}); regenerate the spec with "
                "`sptransx export-spec` or fix the data section"
            )
        return spec

    def replace(self, **kwargs) -> "ExperimentSpec":
        """Copy with fields overridden (the sweep primitive).

        .. code-block:: python

            for margin in (0.25, 0.5, 1.0):
                run_experiment(spec.replace(
                    name=f"margin-{margin}",
                    training=spec.training.replace(margin=margin)))
        """
        import dataclasses

        return dataclasses.replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "spec_version": self.version,
            "name": self.name,
            "seed": self.seed,
            "tags": list(self.tags),
            "data": self.data.to_dict(),
            "model": self.model.to_dict(),
            "training": self.training.to_dict(),
            "eval": self.eval.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentSpec":
        """Schema-validated inverse of :meth:`to_dict`.

        The model section may omit ``n_entities``/``n_relations``; they are
        filled from the data section's deterministic catalog sizes.  File-backed
        data specs cannot be auto-filled (the vocabulary lives in the file), so
        there the model section must carry explicit sizes.
        """
        payload = _require_mapping(payload, "experiment")
        version = int(payload.get("spec_version", 1))  # type: ignore[arg-type]
        # Version gate first: a future spec's unknown fields are expected, and
        # "upgrade the library" is the useful error, not "unknown key".
        if version > CURRENT_SPEC_VERSION:
            raise ValueError(
                f"spec version {version} is newer than this library "
                f"supports ({CURRENT_SPEC_VERSION}); upgrade the library"
            )
        known = ("spec_version", "name", "seed", "tags",
                 "data", "model", "training", "eval")
        _reject_unknown_keys(payload, known, "experiment")
        if "model" not in payload:
            raise ValueError("experiment spec is missing the required 'model' section")
        data = DataSpec.from_dict(payload.get("data", {}))  # type: ignore[arg-type]

        model_payload = dict(_require_mapping(payload["model"], "model"))
        # ModelSpec.from_dict deliberately ignores unknown keys (checkpoint
        # forward-compat); hand-edited experiment specs get the strict check.
        _reject_unknown_keys(
            model_payload,
            ("spec_version", "model", "formulation", "n_entities", "n_relations",
             "embedding_dim", "relation_dim", "backend", "dissimilarity",
             "sparse_grads", "partitions", "ann", "nprobe"),
            "model")
        if "n_entities" not in model_payload or "n_relations" not in model_payload:
            sizes = data.vocab_sizes()
            if sizes is None:
                raise ValueError(
                    "the model section omits n_entities/n_relations and the "
                    "data section loads a triples file, so the sizes cannot be "
                    "inferred; set them explicitly (sptransx export-spec does)"
                )
            model_payload.setdefault("n_entities", sizes[0])
            model_payload.setdefault("n_relations", sizes[1])
        model = ModelSpec.from_dict(model_payload)

        training_payload = payload.get("training", {})
        training = TrainingConfig.from_dict(
            _require_mapping(training_payload, "training"))
        eval_spec = EvalSpec.from_dict(payload.get("eval", {}))  # type: ignore[arg-type]
        return cls(
            model=model,
            data=data,
            training=training,
            eval=eval_spec,
            name=str(payload.get("name", "experiment")),
            seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
            tags=tuple(str(t) for t in payload.get("tags", ())),  # type: ignore[union-attr]
            version=version,
        )

    # ------------------------------------------------------------------ #
    def to_file(self, path: str) -> str:
        """Write the spec as pretty-printed JSON; returns the path."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def from_file(cls, path: str) -> "ExperimentSpec":
        """Load a spec from a JSON file (CLI-grade errors on malformed input)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)
