"""Deadline-aware batch scheduling for the serving worker pool.

The PR 2 :class:`~repro.serving.request_batcher.RequestBatcher` ships a batch
when it is full or a *fixed* wait window expires — a latency/throughput
trade-off chosen once, blind to each request's SLO.  The pool workers replace
that with deadline-aware shipping: a batch ships when it is full **or** when
waiting any longer would make the oldest request miss its deadline, where
"any longer" is judged against a live estimate of how long the batch will
take to execute.  Lightly loaded workers therefore wait almost the whole
deadline budget (maximising coalescing); a near-deadline request ships the
batch immediately.

Both pieces are plain single-threaded objects — the worker process loop owns
them outright, and tests drive them with explicit clocks.
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class ServiceTimeEstimator:
    """EWMA estimate of batch execution time, decomposed per query row.

    Batch cost here is dominated by the vectorised scoring pass, which is
    close to linear in the number of query rows, so the estimator tracks an
    exponentially weighted mean of *per-row* service time and scales it by
    the batch size being planned.  A pessimistic ``default_ms`` covers the
    cold start before the first observation.

    Parameters
    ----------
    default_ms:
        Per-row estimate used until the first observation arrives.
    alpha:
        EWMA weight of the newest observation (0 < alpha <= 1).
    """

    def __init__(self, default_ms: float = 5.0, alpha: float = 0.2) -> None:
        if default_ms <= 0:
            raise ValueError(f"default_ms must be positive, got {default_ms}")
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.default_ms = float(default_ms)
        self.alpha = float(alpha)
        self._per_row_ms: Optional[float] = None
        self.observations = 0

    def observe(self, batch_size: int, seconds: float) -> None:
        """Record one executed batch: ``batch_size`` rows took ``seconds``."""
        if batch_size <= 0 or seconds <= 0:
            return  # clock glitch or empty batch: nothing to learn from
        per_row_ms = float(seconds) * 1e3 / batch_size
        if self._per_row_ms is None:
            self._per_row_ms = per_row_ms
        else:
            self._per_row_ms += self.alpha * (per_row_ms - self._per_row_ms)
        self.observations += 1

    def per_row_ms(self) -> float:
        """Current per-row estimate (the default until first observation)."""
        return self._per_row_ms if self._per_row_ms is not None else self.default_ms

    def estimate_s(self, batch_size: int) -> float:
        """Predicted execution time (seconds) of a ``batch_size``-row batch."""
        return self.per_row_ms() * max(1, int(batch_size)) / 1e3


class DeadlineBatcher(Generic[T]):
    """Collect requests into a batch that ships full *or* deadline-bound.

    The owner (a worker process loop) pushes ``(item, deadline)`` pairs and
    repeatedly asks two questions: *how long may I keep waiting for more
    requests?* (:meth:`wait_budget`) and *must this batch ship now?*
    (:meth:`ready`).  The ship time of the pending batch is::

        min(deadline_i) - estimate(len(batch) + 1) - slack

    i.e. the last instant at which executing the batch (with room for one
    more rider) still finishes inside every member's deadline, minus a fixed
    scheduling ``slack``.  All times are ``time.monotonic()`` values supplied
    by the caller, which keeps this class clock-free and deterministic under
    test.
    """

    def __init__(self, max_batch: int, estimator: ServiceTimeEstimator,
                 slack_ms: float = 1.0) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.max_batch = int(max_batch)
        self.estimator = estimator
        self.slack_s = float(slack_ms) / 1e3
        self._pending: List[Tuple[T, float]] = []
        self._oldest_deadline = float("inf")

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, item: T, deadline: float) -> None:
        """Queue one request with its absolute (monotonic) deadline."""
        self._pending.append((item, float(deadline)))
        if deadline < self._oldest_deadline:
            self._oldest_deadline = float(deadline)

    def ship_time(self) -> float:
        """Monotonic instant at which the pending batch must execute."""
        if not self._pending:
            return float("inf")
        planned = min(self.max_batch, len(self._pending) + 1)
        return (self._oldest_deadline - self.estimator.estimate_s(planned)
                - self.slack_s)

    def ready(self, now: float) -> bool:
        """True when the batch must ship: full, or its ship time has arrived."""
        if not self._pending:
            return False
        return len(self._pending) >= self.max_batch or now >= self.ship_time()

    def wait_budget(self, now: float) -> Optional[float]:
        """Seconds the owner may block waiting for more requests.

        ``None`` means "no pending batch — block indefinitely"; ``0.0`` means
        "ship immediately".
        """
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return 0.0
        return max(0.0, self.ship_time() - now)

    def take(self) -> List[Tuple[T, float]]:
        """Pop the pending batch (at most ``max_batch`` items, FIFO)."""
        batch, self._pending = (self._pending[:self.max_batch],
                                self._pending[self.max_batch:])
        self._oldest_deadline = (min(d for _, d in self._pending)
                                 if self._pending else float("inf"))
        return batch
