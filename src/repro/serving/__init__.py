"""Inference serving: checkpoint → HTTP top-k endpoint.

The serving stack is layered so each piece is usable on its own:

* :class:`~repro.serving.engine.InferenceEngine` — loads a checkpoint through
  the spec-driven registry and answers top-k / scoring / classification
  queries with ``argpartition`` selection, filtered-candidate masks, and an
  LRU result cache.
* :class:`~repro.serving.request_batcher.RequestBatcher` — coalesces
  concurrent single queries into batched engine calls.
* :class:`~repro.serving.server.InferenceServer` — a stdlib-only threaded
  JSON/HTTP front-end (``sptransx serve`` wraps it).
* :class:`~repro.serving.pool.WorkerPool` +
  :class:`~repro.serving.async_server.AsyncInferenceServer` — the
  heavy-traffic tier (``sptransx serve --workers N``): an asyncio front door
  with SLO admission control fanning out to forked engine processes that
  share the mmap'd weight files and batch with deadline awareness
  (:mod:`repro.serving.deadline`).

.. code-block:: python

    from repro.serving import InferenceEngine

    engine = InferenceEngine.from_checkpoint("model.npz")
    result = engine.top_k_tails(head=12, relation=3, k=10)
    print(result.entities, result.scores)
"""

from repro.serving.admission import AdmissionController
from repro.serving.async_server import AsyncInferenceServer, make_async_server
from repro.serving.cache import LRUCache
from repro.serving.deadline import DeadlineBatcher, ServiceTimeEstimator
from repro.serving.engine import InferenceEngine, TopKQuery, TopKResult
from repro.serving.metrics import LatencyHistogram, MetricsRegistry
from repro.serving.pool import PoolClosed, WorkerError, WorkerPool
from repro.serving.request_batcher import EngineClosed, RequestBatcher
from repro.serving.server import InferenceServer, ServingError, make_server

__all__ = [
    "AdmissionController",
    "AsyncInferenceServer",
    "DeadlineBatcher",
    "LatencyHistogram",
    "LRUCache",
    "InferenceEngine",
    "MetricsRegistry",
    "PoolClosed",
    "ServiceTimeEstimator",
    "TopKQuery",
    "TopKResult",
    "EngineClosed",
    "RequestBatcher",
    "InferenceServer",
    "ServingError",
    "WorkerError",
    "WorkerPool",
    "make_async_server",
    "make_server",
]
