"""Inference serving: checkpoint → HTTP top-k endpoint.

The serving stack is layered so each piece is usable on its own:

* :class:`~repro.serving.engine.InferenceEngine` — loads a checkpoint through
  the spec-driven registry and answers top-k / scoring / classification
  queries with ``argpartition`` selection, filtered-candidate masks, and an
  LRU result cache.
* :class:`~repro.serving.request_batcher.RequestBatcher` — coalesces
  concurrent single queries into batched engine calls.
* :class:`~repro.serving.server.InferenceServer` — a stdlib-only threaded
  JSON/HTTP front-end (``sptransx serve`` wraps it).

.. code-block:: python

    from repro.serving import InferenceEngine

    engine = InferenceEngine.from_checkpoint("model.npz")
    result = engine.top_k_tails(head=12, relation=3, k=10)
    print(result.entities, result.scores)
"""

from repro.serving.cache import LRUCache
from repro.serving.engine import InferenceEngine, TopKQuery, TopKResult
from repro.serving.request_batcher import EngineClosed, RequestBatcher
from repro.serving.server import InferenceServer, ServingError, make_server

__all__ = [
    "LRUCache",
    "InferenceEngine",
    "TopKQuery",
    "TopKResult",
    "EngineClosed",
    "RequestBatcher",
    "InferenceServer",
    "ServingError",
    "make_server",
]
