"""Serving-tier latency metrics: log-bucketed histograms and route counters.

The asyncio front-end records one latency observation per finished request
and needs p50/p95/p99 over millions of them without keeping every sample.
:class:`LatencyHistogram` buckets observations into geometrically spaced bins
(constant relative error, ~4% at the default growth factor) so quantile
estimates cost O(bins) and memory stays flat regardless of traffic volume.

These objects are intentionally lock-free: in the pool tier every observation
happens on the event-loop thread, and the threaded tier keeps its existing
counter scheme.  Anything that needs cross-thread mutation must wrap access
itself.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

#: Default histogram range: 10 microseconds to 5 minutes, ~4% bin width.
_DEFAULT_MIN_MS = 0.01
_DEFAULT_MAX_MS = 300_000.0
_DEFAULT_GROWTH = 1.04


class LatencyHistogram:
    """Fixed-memory latency histogram with geometric bins.

    Parameters
    ----------
    min_ms, max_ms:
        Observations are clamped into ``[min_ms, max_ms]``; the first and
        last bins absorb everything outside.
    growth:
        Ratio between consecutive bin upper edges; smaller = more bins =
        tighter quantile error.  The default (1.04) gives ~430 bins.
    """

    def __init__(self, min_ms: float = _DEFAULT_MIN_MS,
                 max_ms: float = _DEFAULT_MAX_MS,
                 growth: float = _DEFAULT_GROWTH) -> None:
        if not (0 < min_ms < max_ms):
            raise ValueError(f"need 0 < min_ms < max_ms, got {min_ms}, {max_ms}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self._min_ms = float(min_ms)
        self._log_growth = math.log(growth)
        n_bins = int(math.ceil(math.log(max_ms / min_ms) / self._log_growth)) + 1
        # Upper edge of bin i is min_ms * growth**(i); counts[i] holds
        # observations in (edge[i-1], edge[i]].
        self._edges = [min_ms * math.exp(self._log_growth * i)
                       for i in range(n_bins)]
        self._counts = [0] * n_bins
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one latency (milliseconds)."""
        latency_ms = float(latency_ms)
        if latency_ms <= self._min_ms:
            idx = 0
        else:
            idx = min(len(self._counts) - 1,
                      int(math.ceil(math.log(latency_ms / self._min_ms)
                                    / self._log_growth)))
        self._counts[idx] += 1
        self.count += 1
        self.total_ms += latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) as a bin upper edge, 0.0 if empty."""
        if self.count == 0:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        target = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        for idx, n in enumerate(self._counts):
            seen += n
            if seen >= target:
                return self._edges[idx]
        return self._edges[-1]

    def summary(self, percentiles: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
        """JSON-friendly snapshot: count, mean, max, and requested percentiles."""
        out: Dict[str, float] = {
            "count": self.count,
            "mean_ms": self.total_ms / self.count if self.count else 0.0,
            "max_ms": self.max_ms,
        }
        for q in percentiles:
            label = f"p{q:g}".replace(".", "_")
            out[f"{label}_ms"] = self.percentile(q)
        return out


class RouteMetrics:
    """Per-route outcome counters plus a latency histogram.

    Outcomes are disjoint: ``ok`` (answered in time), ``deadline_miss``
    (answered, but past its deadline — still a 200, not goodput), ``shed``
    (503 from admission control), ``timeout`` (gave up waiting on a worker),
    ``error`` (4xx/5xx from validation or worker failure).  ``coalesced``
    counts requests answered by riding another identical in-flight request
    (they also count under their outcome).
    """

    def __init__(self) -> None:
        self.latency = LatencyHistogram()
        self.ok = 0
        self.deadline_miss = 0
        self.shed = 0
        self.timeout = 0
        self.error = 0
        self.coalesced = 0

    def observe_ok(self, latency_ms: float, within_deadline: bool) -> None:
        self.latency.observe(latency_ms)
        if within_deadline:
            self.ok += 1
        else:
            self.deadline_miss += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "deadline_miss": self.deadline_miss,
            "shed": self.shed,
            "timeout": self.timeout,
            "error": self.error,
            "coalesced": self.coalesced,
            "latency": self.latency.summary(),
        }


class MetricsRegistry:
    """Lazy route-name → :class:`RouteMetrics` map for the front-end."""

    def __init__(self) -> None:
        self._routes: Dict[str, RouteMetrics] = {}

    def route(self, name: str) -> RouteMetrics:
        metrics = self._routes.get(name)
        if metrics is None:
            metrics = self._routes[name] = RouteMetrics()
        return metrics

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {name: m.snapshot() for name, m in sorted(self._routes.items())}


def batch_size_distribution(counts: Dict[int, int]) -> Dict[str, float]:
    """Summarise a ``{batch_size: n_batches}`` map (worker stats helper)."""
    batches = sum(counts.values())
    requests = sum(size * n for size, n in counts.items())
    multi = sum(n for size, n in counts.items() if size >= 2)
    return {
        "batches": batches,
        "requests": requests,
        "mean_batch_size": requests / batches if batches else 0.0,
        "largest_batch": max(counts) if counts else 0,
        "multi_query_batches": multi,
        "sizes": {str(size): counts[size] for size in sorted(counts)},
    }


def merge_batch_distributions(dists: List[Dict[str, float]]) -> Dict[str, float]:
    """Pool-wide roll-up of per-worker :func:`batch_size_distribution` dicts."""
    merged: Dict[int, int] = {}
    for dist in dists:
        for size, n in dist.get("sizes", {}).items():
            merged[int(size)] = merged.get(int(size), 0) + int(n)
    return batch_size_distribution(merged)
