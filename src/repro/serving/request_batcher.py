"""Micro-batching of concurrent single queries into coalesced engine calls.

A serving process receives top-k requests one at a time (one per HTTP
request), but the engine answers a *batch* of queries for nearly the price of
one: ``score_all_tails`` over B query rows is a single vectorised pass, while
B separate calls pay the Python/kernel dispatch overhead B times.  The
batcher closes that gap: requests arriving within a short window are
collected and executed as one ``top_k_tails_batch``/``top_k_heads_batch``
call, Helmsman-style.

Mechanics: callers block in :meth:`RequestBatcher.top_k_tails` /
``top_k_heads`` while a single worker thread drains the shared queue.  The
worker takes the first pending request, then keeps gathering until either
``max_batch`` requests are in hand or ``max_wait_ms`` has elapsed since the
batch opened, groups them by direction, and dispatches one engine call per
direction.  Per-request exceptions are propagated back to their caller
without poisoning the rest of the batch.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serving.engine import InferenceEngine, TopKQuery, TopKResult


class EngineClosed(RuntimeError):
    """Raised by requests that cannot complete because the batcher is closed.

    Submissions after :meth:`RequestBatcher.close` fail with this immediately;
    requests already queued when the worker dies (engine crash, interpreter
    teardown) receive it instead of hanging on a future no thread will ever
    fulfil.
    """


@dataclass
class _PendingRequest:
    """One caller-visible request waiting for its batch to execute."""

    direction: str
    query: TopKQuery
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[TopKResult] = None
    error: Optional[BaseException] = None


class RequestBatcher:
    """Coalesce concurrent top-k requests into batched engine calls.

    Parameters
    ----------
    engine:
        The :class:`~repro.serving.engine.InferenceEngine` executing batches.
    max_batch:
        Largest number of requests dispatched as one engine call.
    max_wait_ms:
        How long the worker holds an open batch waiting for more requests.
        This bounds added latency: a lone request is delayed at most this long.
    """

    def __init__(self, engine: InferenceEngine, max_batch: int = 64,
                 max_wait_ms: float = 2.0) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self._queue: "queue.Queue[Optional[_PendingRequest]]" = queue.Queue()
        # Guards the closed-flag/enqueue pair: no request can slip into the
        # queue behind the shutdown sentinel and block its caller forever.
        self._submit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.requests = 0
        self.batches = 0
        self.largest_batch = 0
        self._closed = False
        self._worker = threading.Thread(target=self._run, name="request-batcher",
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Caller API (blocking)
    # ------------------------------------------------------------------ #
    def top_k_tails(self, head: int, relation: int, k: int = 10,
                    filtered: bool = False) -> TopKResult:
        """Blocking tail query; executed inside the next coalesced batch."""
        return self._submit("tail", TopKQuery(int(head), int(relation),
                                              int(k), bool(filtered)))

    def top_k_heads(self, relation: int, tail: int, k: int = 10,
                    filtered: bool = False) -> TopKResult:
        """Blocking head query; executed inside the next coalesced batch."""
        return self._submit("head", TopKQuery(int(tail), int(relation),
                                              int(k), bool(filtered)))

    def close(self, timeout: float = 30.0) -> None:
        """Stop the worker; further submits raise :class:`EngineClosed`.

        Every request enqueued before the close is still executed (FIFO
        ordering puts them ahead of the shutdown sentinel); their callers get
        real results.  Only if the worker fails to drain within ``timeout``
        seconds — an engine call wedged beyond any reasonable batch — are the
        still-pending requests failed with :class:`EngineClosed` so no caller
        is left blocked forever.
        """
        with self._submit_lock:
            already_closed = self._closed
            self._closed = True
            if not already_closed:
                self._queue.put(None)
        self._worker.join(timeout=timeout)
        if not self._worker.is_alive():
            return
        # The worker is wedged: fail whatever is still queued rather than
        # leaving callers blocked on futures nobody will complete.  Requests
        # already handed to the engine remain the worker's to finish.
        drained_sentinel = False
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                drained_sentinel = True
                continue
            item.error = EngineClosed(
                "batcher closed before this request could execute")
            item.done.set()
        if drained_sentinel:
            # Put the shutdown sentinel back so the worker still terminates
            # if it ever un-wedges.
            self._queue.put(None)

    def __enter__(self) -> "RequestBatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> Dict[str, float]:
        """Coalescing counters (average batch size is the headline number)."""
        with self._stats_lock:
            return {
                "requests": self.requests,
                "batches": self.batches,
                "largest_batch": self.largest_batch,
                "mean_batch_size": self.requests / self.batches if self.batches else 0.0,
            }

    # ------------------------------------------------------------------ #
    # Worker internals
    # ------------------------------------------------------------------ #
    def _submit(self, direction: str, query: TopKQuery) -> TopKResult:
        pending = _PendingRequest(direction=direction, query=query)
        with self._submit_lock:
            if self._closed:
                raise EngineClosed("batcher is closed")
            if not self._worker.is_alive():
                # The worker died outside close() (interpreter teardown, a
                # BaseException that escaped _run): enqueueing would hang.
                raise EngineClosed("batcher worker is no longer running")
            # FIFO ordering now guarantees the worker reaches this request
            # before any shutdown sentinel enqueued by a later close().
            self._queue.put(pending)
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def _collect_batch(self, first: _PendingRequest) -> List[_PendingRequest]:
        batch = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                # Shutdown sentinel: re-enqueue so the outer loop sees it
                # after this final batch completes.
                self._queue.put(None)
                break
            batch.append(item)
        return batch

    def _execute(self, batch: List[_PendingRequest]) -> None:
        by_direction: Dict[str, List[_PendingRequest]] = {}
        for item in batch:
            by_direction.setdefault(item.direction, []).append(item)
        for direction, items in by_direction.items():
            queries = [item.query for item in items]
            try:
                if direction == "tail":
                    results = self.engine.top_k_tails_batch(queries)
                else:
                    results = self.engine.top_k_heads_batch(queries)
                for item, result in zip(items, results):
                    item.result = result
            except BaseException as exc:  # noqa: BLE001 — handed to the caller
                for item in items:
                    item.error = exc
            finally:
                for item in items:
                    item.done.set()
        with self._stats_lock:
            self.requests += len(batch)
            self.batches += 1
            self.largest_batch = max(self.largest_batch, len(batch))

    def _run(self) -> None:
        try:
            while True:
                item = self._queue.get()
                if item is None:
                    return
                self._execute(self._collect_batch(item))
        finally:
            # Whatever takes this thread down — clean shutdown sentinel or an
            # escaped BaseException — no queued request may be left with an
            # unfulfilled future.
            self._fail_pending(EngineClosed(
                "batcher shut down before this request could execute"))

    def _fail_pending(self, error: BaseException) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                item.error = error
                item.done.set()
