"""Request validation shared by the threaded and asyncio HTTP front-ends.

Both serving tiers speak the same JSON dialect (same routes, same payload
fields, same error strings), so the field validators live here rather than in
either server module: :mod:`repro.serving.server` (threaded) and
:mod:`repro.serving.async_server` (worker pool) import them, and a payload
rejected by one tier is rejected identically by the other.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class ServingError(ValueError):
    """Client error (malformed request / unknown ids) mapped to HTTP 400."""


def require_int(payload: Dict, key: str) -> int:
    """The payload's ``key`` as a real integer (bools are not integers here)."""
    if key not in payload:
        raise ServingError(f"missing required field {key!r}")
    value = payload[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServingError(f"field {key!r} must be an integer, got {value!r}")
    return value


def ann_overrides(payload: Dict) -> Tuple[Optional[bool], Optional[int]]:
    """Parse optional per-request ``"ann"`` / ``"nprobe"`` override fields.

    ``ann`` accepts a JSON boolean (``false`` disables the index for this
    request); ``nprobe`` a positive integer.  Both default to ``None`` —
    "use whatever the engine was configured with".
    """
    ann = payload.get("ann")
    if ann is not None and not isinstance(ann, bool):
        raise ServingError(f'field "ann" must be a boolean, got {ann!r}')
    nprobe = payload.get("nprobe")
    if nprobe is not None:
        if isinstance(nprobe, bool) or not isinstance(nprobe, int) or nprobe < 1:
            raise ServingError(
                f'field "nprobe" must be a positive integer, got {nprobe!r}')
    return ann, nprobe


def get_triples(payload: Dict) -> list:
    """The payload's ``"triples"`` as a non-empty list of ``[h, r, t]`` rows."""
    triples = payload.get("triples")
    if (not isinstance(triples, list) or not triples
            or not all(isinstance(t, list) and len(t) == 3 for t in triples)):
        raise ServingError('field "triples" must be a non-empty list of [h, r, t]')
    return triples


def deadline_ms_override(payload: Dict, default_ms: float) -> float:
    """Per-request ``"deadline_ms"`` (positive number), or the server default."""
    value = payload.get("deadline_ms")
    if value is None:
        return float(default_ms)
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ServingError(
            f'field "deadline_ms" must be a positive number, got {value!r}')
    return float(value)


def check_ids(n_entities: int, n_relations: int,
              head: Optional[int] = None, tail: Optional[int] = None,
              relation: Optional[int] = None) -> None:
    """Reject out-of-vocabulary ids before they reach the scoring kernels."""
    for name, value, bound in (("head", head, n_entities),
                               ("tail", tail, n_entities),
                               ("relation", relation, n_relations)):
        if value is not None and not 0 <= value < bound:
            raise ServingError(f"{name} id {value} out of range [0, {bound})")
