"""Thread-safe LRU result cache for the inference engine.

Helmsman-style serving layers win most of their cost back on repeated
queries: the same ``(head, relation)`` pairs recur heavily in real traffic
(power-law entity popularity), so a small LRU over materialised top-k answers
absorbs a large fraction of requests before they reach the scoring kernel.

``functools.lru_cache`` is unsuitable here: it cannot be invalidated
per-instance on model reload, offers no hit/miss counters, and binds the
cache to a function rather than an engine.  This is a deliberately small
``OrderedDict``-based implementation instead.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss accounting.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept; ``0`` disables caching entirely (every
        ``get`` misses, ``put`` is a no-op) so callers need no branching.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inflight_coalesced = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """Return ``(found, value)``; a hit refreshes the entry's recency.

        The explicit ``found`` flag keeps ``None`` usable as a cached value.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return True, self._data[key]
            self.misses += 1
            return False, None

    def recheck(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """Single-flight second look, taken after winning the compute lock.

        The engine's miss path is: ``get`` (miss) → acquire the scoring lock →
        compute → ``put``.  When several threads miss on the *same* key
        concurrently, the scoring lock already serialises them — but without
        a second look each loser would recompute an answer its predecessor
        just cached (the stampede).  Callers therefore ``recheck`` once the
        compute lock is held: a hit here means another flight landed first
        and this caller reuses its result instead of stampeding the engine.

        Counted separately from first-look hits (``inflight_coalesced`` in
        :meth:`stats`) so ``hit_rate`` keeps meaning "answered without
        touching the scoring path at all".
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.inflight_coalesced += 1
                return True, self._data[key]
            return False, None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recently used on overflow."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (model reload / embedding refresh invalidation).

        Counters survive so long-running serving stats span reloads; use
        :meth:`reset_stats` to also zero them.
        """
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (entries are kept)."""
        with self._lock:
            self.hits = self.misses = self.evictions = 0
            self.inflight_coalesced = 0

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none were made)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """JSON-friendly counters for the ``/v1/stats`` endpoint."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "inflight_coalesced": self.inflight_coalesced,
                "hit_rate": self.hits / total if total else 0.0,
            }
