"""Asyncio HTTP/1.1 front-end over the forked worker pool.

This is the heavy-traffic serving tier (``sptransx serve --workers N``): a
single-threaded asyncio accept loop parses and validates requests, applies
SLO admission control at the front door, and fans admitted work out over the
:class:`~repro.serving.pool.WorkerPool`.  Division of labour:

* **event loop (this module)** — connection handling and keep-alive, JSON
  parsing/validation, per-request deadlines, admission control (503 +
  ``Retry-After`` when the predicted completion would bust the deadline),
  single-flight coalescing of identical in-flight queries, least-loaded
  worker routing, per-route latency histograms.
* **worker processes** (:mod:`repro.serving.pool`) — the actual engines,
  mmap-shared weights, and deadline-aware batching.

Because everything front-end-side runs on the one event-loop thread, there
are no locks here at all; the only cross-thread entry points are
:meth:`AsyncInferenceServer.close` and the test/CLI bootstrap helpers, which
hand control to the loop via ``call_soon_threadsafe``.

The JSON dialect is identical to the threaded tier (same routes, same
payloads, same error strings — see :mod:`repro.serving.validation`), plus:

* every POST accepts an optional ``"deadline_ms"`` field overriding the
  server default deadline for that request;
* responses past the admission gate may be ``503 {"error": "shed", ...}``
  with a ``Retry-After`` header, or ``504`` when a worker blows through the
  deadline by more than the grace factor;
* ``/v1/stats`` reports per-route latency histograms (p50/p95/p99), shed /
  timeout / deadline-miss counts, admission-controller state, and per-worker
  batch-size distributions.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.serving.admission import AdmissionController, retry_after_header
from repro.serving.engine import InferenceEngine
from repro.serving.metrics import MetricsRegistry, merge_batch_distributions
from repro.serving.pool import BATCHED_OPS, WorkerPool
from repro.serving.validation import (
    ServingError,
    ann_overrides,
    check_ids,
    deadline_ms_override,
    get_triples,
    require_int,
)

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}

#: Worker error types mapped to HTTP 400 (request-derived failures).
_CLIENT_ERRORS = frozenset({"ServingError", "ValueError", "TypeError",
                            "IndexError", "KeyError"})

_MAX_BODY_BYTES = 8 * 1024 * 1024
_KEEPALIVE_IDLE_S = 75.0
#: A dispatched request is abandoned (504) after ``deadline * grace + floor``.
_TIMEOUT_GRACE = 4.0
_TIMEOUT_FLOOR_S = 1.0


class _Inflight:
    """Book-keeping for one request dispatched to a worker."""

    __slots__ = ("future", "worker", "route", "admitted")

    def __init__(self, future: "asyncio.Future", worker: int, route: str,
                 admitted: bool) -> None:
        self.future = future
        self.worker = worker
        self.route = route
        self.admitted = admitted


class AsyncInferenceServer:
    """Deadline- and SLO-aware pool serving tier.

    Parameters
    ----------
    engine_factory:
        Zero-argument engine builder executed inside each forked worker
        (see :class:`~repro.serving.pool.WorkerPool`).
    workers:
        Worker processes to fork.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port.
    deadline_ms:
        Default per-request deadline (payloads may override per request).
    max_batch, slack_ms:
        Worker-side deadline-batching knobs.
    default_service_ms:
        Cold-start service-time estimate for batching and admission.
    admission:
        Disable to accept everything (measurement baseline; overload then
        degrades FIFO-style like the threaded tier).
    headroom:
        Admission safety multiplier (>1 sheds slightly early).
    verbose:
        One log line per request on stdout.
    """

    def __init__(self, engine_factory: Callable[[], InferenceEngine],
                 workers: int = 2, host: str = "127.0.0.1", port: int = 0,
                 deadline_ms: float = 50.0, max_batch: int = 64,
                 slack_ms: float = 1.0, default_service_ms: float = 5.0,
                 admission: bool = True, headroom: float = 1.0,
                 verbose: bool = False,
                 start_timeout_s: float = 120.0) -> None:
        if deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
        self.pool = WorkerPool(engine_factory, workers=workers,
                               max_batch=max_batch, slack_ms=slack_ms,
                               default_service_ms=default_service_ms,
                               start_timeout_s=start_timeout_s)
        self.meta = self.pool.meta
        self.deadline_ms = float(deadline_ms)
        self.verbose = bool(verbose)
        self.metrics = MetricsRegistry()
        self.admission: Optional[AdmissionController] = (
            AdmissionController(workers, default_service_ms=default_service_ms,
                                headroom=headroom) if admission else None)
        self._host = host
        self._requested_port = int(port)
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight: Dict[int, _Inflight] = {}
        self._worker_load: List[int] = [0] * workers
        self._worker_alive: List[bool] = [True] * workers
        self._singleflight: Dict[Tuple, "asyncio.Future"] = {}
        self._thread: Optional[threading.Thread] = None
        self._port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("server is not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def start(self) -> None:
        """Bind the socket and wire the pool pipes into the running loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._requested_port)
        self._port = int(self._server.sockets[0].getsockname()[1])
        for idx in range(self.pool.workers):
            self._loop.add_reader(self.pool.connection(idx).fileno(),
                                  self._on_readable, idx)

    async def stop(self) -> None:
        """Stop accepting, fail in-flight requests, shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._loop is not None:
            for idx in range(self.pool.workers):
                try:
                    self._loop.remove_reader(self.pool.connection(idx).fileno())
                except (OSError, ValueError):
                    pass  # connection already closed
        for record in list(self._inflight.values()):
            if not record.future.done():
                record.future.set_exception(
                    ConnectionError("server shutting down"))
                record.future.exception()  # mark retrieved: nobody may await it
        self._inflight.clear()
        self._singleflight.clear()
        self.pool.close()

    def serve_forever(self, on_started: Optional[Callable[[], None]] = None
                      ) -> None:
        """Run until interrupted (the CLI path).

        ``on_started`` fires once the socket is bound (the CLI prints its
        machine-readable "serving" line there, after ``port=0`` resolution).
        """
        async def _main() -> None:
            await self.start()
            if on_started is not None:
                on_started()
            try:
                await asyncio.Event().wait()
            finally:
                await self.stop()

        asyncio.run(_main())

    def serve_background(self) -> str:
        """Start loop + server on a daemon thread; returns the bound URL.

        The test/benchmark entry point — the caller's thread stays free to
        issue HTTP requests.  Pair with :meth:`close`.
        """
        started = threading.Event()
        failure: List[BaseException] = []

        def _runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # noqa: BLE001 — surfaced to caller
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                loop.close()

        self._thread = threading.Thread(target=_runner,
                                        name="async-serving", daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self.url

    def close(self) -> None:
        """Stop a background server started with :meth:`serve_background`."""
        thread = self._thread
        if thread is None:
            self.pool.close()
            return
        self._thread = None
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30.0)

    # ------------------------------------------------------------------ #
    # Pool response plumbing (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _on_readable(self, worker: int) -> None:
        conn = self.pool.connection(worker)
        while True:
            try:
                if not conn.poll(0):
                    return
                message = conn.recv()
            except (EOFError, OSError):
                self._on_worker_eof(worker)
                return
            tag, req_id, ok, value, meta = message
            if tag != "res":
                continue
            record = self._inflight.pop(req_id, None)
            if record is None:
                continue  # response for an already-abandoned request
            self._worker_load[worker] = max(0, self._worker_load[worker] - 1)
            if record.admitted and self.admission is not None:
                batch = max(1, int(meta.get("batch_size", 1)))
                service_ms = meta.get("service_ms")
                self.admission.release(
                    record.route,
                    float(service_ms) / batch if service_ms is not None else None)
            if not record.future.done():
                record.future.set_result((ok, value, meta))

    def _on_worker_eof(self, worker: int) -> None:
        """A worker's pipe died: fail its in-flight work, stop routing to it."""
        if not self._worker_alive[worker]:
            return
        self._worker_alive[worker] = False
        if self._loop is not None:
            try:
                self._loop.remove_reader(self.pool.connection(worker).fileno())
            except (OSError, ValueError):
                pass
        dead = [req_id for req_id, record in self._inflight.items()
                if record.worker == worker]
        for req_id in dead:
            record = self._inflight.pop(req_id)
            if record.admitted and self.admission is not None:
                self.admission.release(record.route, None)
            if not record.future.done():
                record.future.set_exception(
                    ConnectionError(f"worker {worker} died"))
                record.future.exception()  # waiter may have timed out already
        self._worker_load[worker] = 0

    def _pick_worker(self) -> int:
        """Pack, don't spread: the fullest worker still below the pack cap.

        Deadline batching only pays off when concurrent requests meet in the
        *same* worker — spreading light traffic least-loaded-first hands every
        worker a batch of one and each batch costs a full scoring pass.
        Packing concentrates load on as few workers as it needs (new workers
        are drawn in only once the previous ones reach half their batch
        capacity), which is also strictly better when workers outnumber
        cores.  Past the cap everywhere, fall back to least-loaded.
        """
        alive = [idx for idx, ok in enumerate(self._worker_alive) if ok]
        if not alive:
            raise ConnectionError("no live workers")
        cap = max(1, self.pool.max_batch // 2)
        packable = [idx for idx in alive if self._worker_load[idx] < cap]
        if packable:
            return max(packable, key=lambda idx: self._worker_load[idx])
        return min(alive, key=lambda idx: self._worker_load[idx])

    def _dispatch(self, op: str, payload: Dict[str, Any], deadline: float,
                  route: str, admitted: bool) -> "asyncio.Future":
        worker = self._pick_worker()
        req_id = self.pool.next_request_id()
        future = self._loop.create_future()
        self._inflight[req_id] = _Inflight(future, worker, route, admitted)
        self._worker_load[worker] += 1
        try:
            self.pool.submit(worker, req_id, op, payload, deadline)
        except (BrokenPipeError, OSError):
            self._on_worker_eof(worker)
        return future

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, payload, extra = await self._route(method, path, body)
                if self.verbose:
                    print(f"{method} {path} -> {status}", flush=True)
                await self._write_response(writer, status, payload,
                                           keep_alive, extra)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ValueError, asyncio.TimeoutError):
            pass  # torn/idle/oversized connection: just drop it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, bytes, bool]]:
        line = await asyncio.wait_for(reader.readline(),
                                      timeout=_KEEPALIVE_IDLE_S)
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {line!r}")
        method, path, version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 100:
                raise ValueError("too many headers")
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        keep_alive = (connection != "close"
                      if version == "HTTP/1.1" else connection == "keep-alive")
        return method, path, body, keep_alive

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              payload: Dict, keep_alive: bool,
                              extra: Optional[Dict[str, str]]) -> None:
        body = json.dumps(payload).encode("utf-8")
        headers = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                   "Content-Type: application/json",
                   f"Content-Length: {len(body)}",
                   f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        for name, value in (extra or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _route(self, method: str, path: str, body: bytes
                     ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        if method == "GET":
            if path == "/v1/health":
                return 200, {"status": "ok",
                             "model": self.meta.get("model"),
                             "n_entities": self.meta.get("n_entities"),
                             "n_relations": self.meta.get("n_relations"),
                             "workers": self.pool.workers,
                             "workers_alive": sum(self._worker_alive)}, None
            if path == "/v1/spec":
                return 200, dict(self.meta.get("spec", {})), None
            if path == "/v1/stats":
                return 200, await self._stats_payload(), None
            return 404, {"error": f"unknown path {path!r}"}, None
        if method != "POST":
            return 405, {"error": f"method {method} not allowed"}, None
        if path not in ("/v1/top_k_tails", "/v1/top_k_heads", "/v1/nearest",
                        "/v1/score", "/v1/classify"):
            return 404, {"error": f"unknown path {path!r}"}, None
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
            if not isinstance(payload, dict):
                raise ServingError("request body must be a JSON object")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}, None
        try:
            op, op_payload = self._parse(path, payload)
        except ServingError as exc:
            self.metrics.route(path).error += 1
            return 400, {"error": str(exc)}, None
        try:
            budget_ms = deadline_ms_override(payload, self.deadline_ms)
        except ServingError as exc:
            self.metrics.route(path).error += 1
            return 400, {"error": str(exc)}, None
        return await self._serve_op(path, op, op_payload, budget_ms)

    def _parse(self, path: str, payload: Dict) -> Tuple[str, Dict[str, Any]]:
        """Validate one POST body into a worker op (raises ServingError)."""
        n_entities = int(self.meta.get("n_entities", 0))
        n_relations = int(self.meta.get("n_relations", 0))
        if path in ("/v1/top_k_tails", "/v1/top_k_heads"):
            direction = "tail" if path.endswith("tails") else "head"
            anchor_key = "head" if direction == "tail" else "tail"
            anchor = require_int(payload, anchor_key)
            relation = require_int(payload, "relation")
            check_ids(n_entities, n_relations, relation=relation,
                      **{anchor_key: anchor})
            ann, nprobe = ann_overrides(payload)
            return direction, {"anchor": anchor, "relation": relation,
                               "k": int(payload.get("k", 10)),
                               "filtered": bool(payload.get("filtered", False)),
                               "ann": ann, "nprobe": nprobe}
        if path == "/v1/nearest":
            entity = require_int(payload, "entity")
            check_ids(n_entities, n_relations, head=entity)
            return "nearest", {"entity": entity, "k": int(payload.get("k", 10))}
        triples = get_triples(payload)
        if path == "/v1/score":
            return "score", {"triples": triples}
        if "threshold" not in payload:
            raise ServingError('missing required field "threshold"')
        return "classify", {"triples": triples,
                            "threshold": float(payload["threshold"])}

    # ------------------------------------------------------------------ #
    # Serving one op end to end
    # ------------------------------------------------------------------ #
    def _singleflight_key(self, op: str, payload: Dict[str, Any]) -> Tuple:
        return (op,) + tuple(sorted(
            (key, tuple(map(tuple, value)) if isinstance(value, list) else value)
            for key, value in payload.items()))

    async def _serve_op(self, route: str, op: str, payload: Dict[str, Any],
                        budget_ms: float
                        ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        metrics = self.metrics.route(route)
        arrival = time.monotonic()
        deadline = arrival + budget_ms / 1e3
        key = self._singleflight_key(op, payload)
        future = self._singleflight.get(key)
        rider = future is not None and not future.done()
        if rider:
            metrics.coalesced += 1
        else:
            if self.admission is not None:
                admitted, retry_after_s = self.admission.admit(route, budget_ms)
                if not admitted:
                    metrics.shed += 1
                    return 503, {
                        "error": "shed",
                        "predicted_ms": round(
                            self.admission.predicted_completion_ms(route), 3),
                        "deadline_ms": budget_ms,
                        "retry_after_s": round(retry_after_s, 4),
                    }, {"Retry-After": retry_after_header(retry_after_s)}
            try:
                future = self._dispatch(op, payload, deadline, route,
                                        admitted=self.admission is not None)
            except ConnectionError as exc:
                metrics.error += 1
                return 503, {"error": str(exc)}, None
            if op in BATCHED_OPS:
                self._singleflight[key] = future
                future.add_done_callback(
                    lambda fut, key=key: self._singleflight.pop(key, None)
                    if self._singleflight.get(key) is fut else None)
        timeout_s = max(_TIMEOUT_FLOOR_S, budget_ms / 1e3 * _TIMEOUT_GRACE)
        try:
            ok, value, _meta = await asyncio.wait_for(
                asyncio.shield(future), timeout=timeout_s)
        except asyncio.TimeoutError:
            metrics.timeout += 1
            return 504, {"error": "deadline exceeded waiting for worker",
                         "deadline_ms": budget_ms}, None
        except ConnectionError as exc:
            metrics.error += 1
            return 503, {"error": str(exc)}, None
        now = time.monotonic()
        if not ok:
            metrics.error += 1
            error_type = value.get("error_type", "RuntimeError")
            status = 400 if error_type in _CLIENT_ERRORS else 500
            message = value.get("message") or error_type
            return status, {"error": message}, None
        metrics.observe_ok((now - arrival) * 1e3, within_deadline=now <= deadline)
        return 200, value, None

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #
    async def _stats_payload(self) -> Dict[str, Any]:
        worker_stats: List[Optional[Dict]] = [None] * self.pool.workers
        futures = {}
        for idx in range(self.pool.workers):
            if not self._worker_alive[idx]:
                continue
            try:
                futures[idx] = self._dispatch(
                    "stats", {}, time.monotonic() + 5.0,
                    route="/v1/stats", admitted=False)
            except ConnectionError:
                continue
        if futures:
            done = await asyncio.gather(
                *(asyncio.wait_for(asyncio.shield(f), timeout=5.0)
                  for f in futures.values()),
                return_exceptions=True)
            for idx, outcome in zip(futures, done):
                if (not isinstance(outcome, BaseException)) and outcome[0]:
                    worker_stats[idx] = outcome[1]
        dists = [stats["batch_distribution"]
                 for stats in worker_stats if stats is not None]
        return {
            "mode": "pool",
            "workers": self.pool.workers,
            "workers_alive": sum(self._worker_alive),
            "deadline_ms": self.deadline_ms,
            "routes": self.metrics.snapshot(),
            "admission": (self.admission.stats()
                          if self.admission is not None else None),
            "batching": merge_batch_distributions(dists),
            "worker_stats": worker_stats,
        }


def make_async_server(engine_factory: Callable[[], InferenceEngine],
                      **kwargs) -> AsyncInferenceServer:
    """Construct (but do not start) an :class:`AsyncInferenceServer`."""
    return AsyncInferenceServer(engine_factory, **kwargs)
