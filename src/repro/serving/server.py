"""Stdlib JSON/HTTP front-end for the inference engine.

No web framework — ``http.server.ThreadingHTTPServer`` is enough for a
dependency-free serving endpoint, and the threading server is what makes
micro-batching effective: concurrent requests block in their own handler
threads, their queries meet inside the :class:`RequestBatcher`, and one
vectorised engine call answers them all.

Endpoints (all JSON):

====================  ======  =====================================================
``/v1/health``        GET     liveness + served model class
``/v1/spec``          GET     the served model's :class:`ModelSpec`
``/v1/stats``         GET     engine, cache, and batcher counters
``/v1/top_k_tails``   POST    ``{"head": 3, "relation": 1, "k": 10, "filtered": true}``
``/v1/top_k_heads``   POST    ``{"tail": 3, "relation": 1, "k": 10, "filtered": true}``
``/v1/nearest``       POST    ``{"entity": 3, "k": 10}`` (embedding-space kNN)
``/v1/score``         POST    ``{"triples": [[h, r, t], ...]}``
``/v1/classify``      POST    ``{"triples": [...], "threshold": 7.5}``
====================  ======  =====================================================

Top-k requests additionally accept optional ``"ann"`` (boolean; ``false``
forces the exact path for this request) and ``"nprobe"`` (positive integer)
fields when the engine was loaded with an ANN index; requests carrying either
override bypass the batcher so the override cannot leak onto batch-mates.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.serving.engine import InferenceEngine
from repro.serving.request_batcher import RequestBatcher
from repro.serving.validation import (
    ServingError,
    ann_overrides as _ann_overrides,
    get_triples as _get_triples,
    require_int as _require_int,
)

__all__ = ["InferenceServer", "ServingError", "ServingHandler", "make_server"]


class ServingHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the engine / batcher owned by the server."""

    server: "InferenceServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServingError("request body is empty")
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServingError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServingError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        engine = self.server.engine
        if self.path == "/v1/health":
            self._send_json({"status": "ok",
                             "model": type(engine.model).__name__,
                             "n_entities": engine.model.n_entities,
                             "n_relations": engine.model.n_relations})
        elif self.path == "/v1/spec":
            self._send_json(engine.spec().to_dict())
        elif self.path == "/v1/stats":
            stats: Dict[str, object] = dict(engine.stats())
            if self.server.batcher is not None:
                stats["batcher"] = self.server.batcher.stats()
            self._send_json(stats)
        else:
            self._send_json({"error": f"unknown path {self.path!r}"}, status=404)

    #: POST routes _dispatch understands; anything else is a 404, matching GET.
    POST_ROUTES = frozenset({"/v1/top_k_tails", "/v1/top_k_heads", "/v1/nearest",
                             "/v1/score", "/v1/classify"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path not in self.POST_ROUTES:
            # Drain the body so a keep-alive connection stays parseable.
            length = int(self.headers.get("Content-Length", 0))
            if length > 0:
                self.rfile.read(length)
            self._send_json({"error": f"unknown path {self.path!r}"}, status=404)
            return
        try:
            payload = self._read_json()
            self._send_json(self._dispatch(self.path, payload))
        except ServingError as exc:
            self._send_json({"error": str(exc)}, status=400)
        except IndexError as exc:
            self._send_json({"error": str(exc) or "entity or relation id out of range"},
                            status=400)
        except (ValueError, TypeError) as exc:
            # Everything reaching the scoring kernels is request-derived, so
            # validation failures there (check_triples, bad casts) are client
            # errors, same as the explicit checks above.
            self._send_json({"error": str(exc)}, status=400)
        except Exception as exc:  # noqa: BLE001 — last-resort 500 with context
            self._send_json({"error": f"{type(exc).__name__}: {exc}"}, status=500)

    def _dispatch(self, path: str, payload: Dict) -> Dict:
        engine = self.server.engine
        batcher = self.server.batcher
        if path == "/v1/top_k_tails":
            head = _require_int(payload, "head")
            relation = _require_int(payload, "relation")
            k = int(payload.get("k", 10))
            filtered = bool(payload.get("filtered", False))
            ann, nprobe = _ann_overrides(payload)
            self.server.check_ids(head=head, relation=relation)
            # Per-request ANN overrides bypass the batcher: the coalesced
            # path answers all riders from one engine call, which would
            # silently apply one request's override to its batch-mates.
            if batcher is not None and ann is None and nprobe is None:
                result = batcher.top_k_tails(head, relation, k=k, filtered=filtered)
            else:
                result = engine.top_k_tails(head, relation, k=k, filtered=filtered,
                                            ann=ann, nprobe=nprobe)
            return result.to_dict()
        if path == "/v1/top_k_heads":
            tail = _require_int(payload, "tail")
            relation = _require_int(payload, "relation")
            k = int(payload.get("k", 10))
            filtered = bool(payload.get("filtered", False))
            ann, nprobe = _ann_overrides(payload)
            self.server.check_ids(tail=tail, relation=relation)
            if batcher is not None and ann is None and nprobe is None:
                result = batcher.top_k_heads(relation, tail, k=k, filtered=filtered)
            else:
                result = engine.top_k_heads(relation, tail, k=k, filtered=filtered,
                                            ann=ann, nprobe=nprobe)
            return result.to_dict()
        if path == "/v1/nearest":
            entity = _require_int(payload, "entity")
            k = int(payload.get("k", 10))
            return engine.nearest_entities(entity, k=k).to_dict()
        if path == "/v1/score":
            triples = _get_triples(payload)
            return {"scores": [float(s) for s in engine.score_triples(triples)]}
        if path == "/v1/classify":
            triples = _get_triples(payload)
            if "threshold" not in payload:
                raise ServingError('missing required field "threshold"')
            threshold = float(payload["threshold"])
            return {"labels": engine.classify(triples, threshold),
                    "threshold": threshold}
        raise ServingError(f"unknown path {path!r}")


class InferenceServer(ThreadingHTTPServer):
    """HTTP server owning one engine and (optionally) one request batcher.

    Parameters
    ----------
    engine:
        The engine to serve.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see :attr:`port`).
    coalesce:
        Route top-k requests through a :class:`RequestBatcher` so concurrent
        queries share scoring calls.  Disable to measure the unbatched path.
    max_batch, max_wait_ms:
        Batcher tuning knobs (ignored when ``coalesce`` is false).
    verbose:
        Log one line per request (off by default; serving is chatty).
    """

    daemon_threads = True

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 0, coalesce: bool = True, max_batch: int = 64,
                 max_wait_ms: float = 2.0, verbose: bool = False) -> None:
        super().__init__((host, port), ServingHandler)
        self.engine = engine
        self.verbose = bool(verbose)
        self.batcher: Optional[RequestBatcher] = (
            RequestBatcher(engine, max_batch=max_batch, max_wait_ms=max_wait_ms)
            if coalesce else None
        )

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def check_ids(self, head: Optional[int] = None, tail: Optional[int] = None,
                  relation: Optional[int] = None) -> None:
        """Reject out-of-vocabulary ids before they reach the scoring kernels."""
        from repro.serving.validation import check_ids

        model = self.engine.model
        check_ids(model.n_entities, model.n_relations,
                  head=head, tail=tail, relation=relation)

    def close(self) -> None:
        """Stop the batcher and release the socket (idempotent)."""
        if self.batcher is not None:
            self.batcher.close()
        self.server_close()


def make_server(engine: InferenceEngine, host: str = "127.0.0.1", port: int = 0,
                coalesce: bool = True, max_batch: int = 64,
                max_wait_ms: float = 2.0, verbose: bool = False) -> InferenceServer:
    """Construct (but do not start) an :class:`InferenceServer`.

    Call ``serve_forever()`` on the result — from the current thread for a
    real deployment (the CLI does this), or a background thread in tests.
    """
    return InferenceServer(engine, host=host, port=port, coalesce=coalesce,
                           max_batch=max_batch, max_wait_ms=max_wait_ms,
                           verbose=verbose)
