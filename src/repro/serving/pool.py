"""Forked worker pool: one inference engine per process, shared page cache.

One GIL-bound process is the throughput ceiling of the threaded serving tier:
``score_all_tails`` releases the GIL inside numpy, but request parsing,
batch assembly, cache lookups, and result marshalling are all Python.  The
pool moves the engines into ``fork``-started worker processes.  Each worker
builds its **own** :class:`~repro.serving.engine.InferenceEngine` *after* the
fork — for artifact serving that is ``InferenceEngine.from_artifact(path,
mmap="auto")``, so every worker memory-maps the same on-disk
``weights/*.npy`` / ``index/`` files and the OS page cache backs them all
with one physical copy.  Nothing model-sized is ever pickled or duplicated.

Inside each worker the fixed-window :class:`RequestBatcher` semantics are
replaced by **deadline-aware batching** (:mod:`repro.serving.deadline`): the
worker blocks on its request pipe for exactly as long as the oldest pending
request's deadline minus the estimated batch service time allows, so lightly
loaded workers coalesce aggressively while near-deadline requests ship at
once.

Wire protocol (pickled tuples over a duplex ``multiprocessing.Pipe``; the
``fork`` start method means nothing else — in particular not the engine
factory — is ever serialised):

===============================================  ================================
parent → worker                                  worker → parent
===============================================  ================================
``("req", id, op, payload, deadline)``           ``("res", id, ok, value, meta)``
``None`` (shutdown; drains pending first)        ``("ready", meta)`` once at start
===============================================  ================================

Deadlines are absolute ``time.monotonic()`` instants: on the platforms this
repo targets ``CLOCK_MONOTONIC`` is system-wide, so a deadline stamped in the
parent is directly comparable in the forked child.

Ops: ``"tail"``/``"head"`` are deadline-batched top-k queries; ``"nearest"``,
``"score"``, ``"classify"`` execute immediately (they are not coalescable);
``"stats"`` and ``"meta"`` are control ops answered out of band so a stats
poll never waits behind a scoring batch.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.serving.deadline import DeadlineBatcher, ServiceTimeEstimator
from repro.serving.engine import InferenceEngine, TopKQuery
from repro.serving.metrics import batch_size_distribution

#: Ops the worker coalesces into deadline-aware batches.
BATCHED_OPS = frozenset({"tail", "head"})
#: Ops answered immediately, even while a batch is pending.
IMMEDIATE_OPS = frozenset({"nearest", "score", "classify", "stats", "meta"})

#: Max quiet time (seconds) a pending batch lingers for more riders.  The
#: deadline bound (ship at ``deadline - estimate - slack``) alone would hold
#: every request almost its whole budget at light load — maximal batching,
#: but every answer lands at the SLO edge.  The linger cap ships as soon as
#: the pipe has been silent this long: bursts still coalesce (they are
#: drained together), while an isolated request pays at most the linger.
LINGER_S = 0.002


class WorkerError(RuntimeError):
    """A worker failed a request; carries the original exception type name."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(message)
        self.error_type = error_type


class PoolClosed(RuntimeError):
    """Raised by submissions against a closed (or never-started) pool."""


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _query_from_payload(payload: Dict[str, Any]) -> TopKQuery:
    return TopKQuery(anchor=int(payload["anchor"]),
                     relation=int(payload["relation"]),
                     k=int(payload.get("k", 10)),
                     filtered=bool(payload.get("filtered", False)),
                     ann=payload.get("ann"),
                     nprobe=payload.get("nprobe"))


class _WorkerLoop:
    """The single-threaded request loop owned by one worker process."""

    def __init__(self, conn, engine: InferenceEngine, max_batch: int,
                 slack_ms: float, default_service_ms: float) -> None:
        self.conn = conn
        self.engine = engine
        self.estimator = ServiceTimeEstimator(default_ms=default_service_ms)
        self.batcher: DeadlineBatcher = DeadlineBatcher(
            max_batch, self.estimator, slack_ms=slack_ms)
        self.batch_sizes: Dict[int, int] = {}
        self.requests = 0
        self.shipped_full = 0
        self.shipped_deadline = 0

    def meta(self) -> Dict[str, Any]:
        model = self.engine.model
        return {
            "model": type(model).__name__,
            "n_entities": int(model.n_entities),
            "n_relations": int(model.n_relations),
            "spec": self.engine.spec().to_dict(),
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "shipped_full": self.shipped_full,
            "shipped_deadline": self.shipped_deadline,
            "service_per_row_ms": self.estimator.per_row_ms(),
            "batch_distribution": batch_size_distribution(self.batch_sizes),
            "engine": self.engine.stats(),
        }

    def _respond(self, req_id: int, ok: bool, value: Any,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.conn.send(("res", req_id, ok, value, meta or {}))

    def _fail(self, req_id: int, exc: BaseException) -> None:
        self._respond(req_id, False,
                      {"error_type": type(exc).__name__, "message": str(exc)})

    def _execute_immediate(self, req_id: int, op: str,
                           payload: Dict[str, Any]) -> None:
        try:
            if op == "meta":
                self._respond(req_id, True, self.meta())
                return
            if op == "stats":
                self._respond(req_id, True, self.stats())
                return
            self.requests += 1
            start = time.perf_counter()
            if op == "nearest":
                value = self.engine.nearest_entities(
                    int(payload["entity"]), k=int(payload.get("k", 10))).to_dict()
            elif op == "score":
                value = {"scores": [float(s) for s in
                                    self.engine.score_triples(payload["triples"])]}
            elif op == "classify":
                threshold = float(payload["threshold"])
                value = {"labels": self.engine.classify(payload["triples"],
                                                        threshold),
                         "threshold": threshold}
            else:
                raise ValueError(f"unknown op {op!r}")
            service_ms = (time.perf_counter() - start) * 1e3
            self._respond(req_id, True, value,
                          {"batch_size": 1, "service_ms": service_ms})
        except BaseException as exc:  # noqa: BLE001 — handed back to the parent
            self._fail(req_id, exc)

    def _execute_batch(self) -> None:
        batch = self.batcher.take()
        if not batch:
            return
        size = len(batch)
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1
        self.requests += size
        if size >= self.batcher.max_batch:
            self.shipped_full += 1
        else:
            self.shipped_deadline += 1
        by_op: Dict[str, List[Tuple[int, TopKQuery]]] = {}
        for (req_id, op, payload), _deadline in batch:
            try:
                by_op.setdefault(op, []).append(
                    (req_id, _query_from_payload(payload)))
            except (KeyError, TypeError, ValueError) as exc:
                self._fail(req_id, exc)
        for op, items in by_op.items():
            queries = [query for _, query in items]
            start = time.perf_counter()
            try:
                if op == "tail":
                    results = self.engine.top_k_tails_batch(queries)
                else:
                    results = self.engine.top_k_heads_batch(queries)
            except BaseException as exc:  # noqa: BLE001 — per-group failure
                for req_id, _ in items:
                    self._fail(req_id, exc)
                continue
            elapsed = time.perf_counter() - start
            self.estimator.observe(len(items), elapsed)
            service_ms = elapsed * 1e3
            for (req_id, _), result in zip(items, results):
                self._respond(req_id, True, result.to_dict(),
                              {"batch_size": size, "service_ms": service_ms})

    def run(self) -> None:
        while True:
            budget = self.batcher.wait_budget(time.monotonic())
            # Empty batcher: block until traffic.  Pending batch: block until
            # its deadline-derived ship time, capped by the linger window.
            wait = None if budget is None else min(budget, LINGER_S)
            has_message = self.conn.poll(wait)
            got_traffic = False
            while has_message:  # drain the burst in one gulp, then decide
                try:
                    message = self.conn.recv()
                except EOFError:
                    return  # parent went away: nothing left to serve
                if message is None:
                    while len(self.batcher):
                        self._execute_batch()
                    return
                _tag, req_id, op, payload, deadline = message
                if op in BATCHED_OPS:
                    self.batcher.add((req_id, op, payload), deadline)
                else:
                    self._execute_immediate(req_id, op, payload)
                got_traffic = True
                has_message = self.conn.poll(0)
            if not len(self.batcher):
                continue
            # Ship when forced (full / deadline-bound) or when the linger
            # window passed with no new traffic.
            if self.batcher.ready(time.monotonic()) or not got_traffic:
                self._execute_batch()


def _worker_main(conn, engine_factory: Callable[[], InferenceEngine],
                 max_batch: int, slack_ms: float,
                 default_service_ms: float) -> None:
    """Entry point of one forked worker: build the engine, serve the pipe."""
    try:
        engine = engine_factory()
        # Warm the scoring path before accepting traffic: the first query
        # pays page faults and allocator growth that can be 10-50x steady
        # state, and the admission controller must never fold that cold-start
        # outlier into its service-time estimate.
        engine.top_k_tails(0, 0, k=1)
    except BaseException as exc:  # noqa: BLE001 — startup failure, reported
        conn.send(("ready_error",
                   f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))
        conn.close()
        return
    loop = _WorkerLoop(conn, engine, max_batch, slack_ms, default_service_ms)
    conn.send(("ready", loop.meta()))
    try:
        loop.run()
    except (KeyboardInterrupt, BrokenPipeError):
        pass  # parent-driven teardown: exit quietly
    finally:
        embeddings = getattr(engine.model, "embeddings", None)
        close = getattr(embeddings, "close", None)
        if close is not None:
            close()
        conn.close()


# --------------------------------------------------------------------------- #
# Parent-side pool handle
# --------------------------------------------------------------------------- #
class WorkerPool:
    """Spawn and address ``workers`` forked inference processes.

    The pool itself is transport only — request routing, futures, admission
    control, and metrics live in the asyncio front-end
    (:mod:`repro.serving.async_server`).  All methods must be called from a
    single owning thread (the event loop); the pool holds no locks.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building the worker's engine, executed *inside*
        each forked child (e.g. ``lambda: InferenceEngine.from_artifact(path,
        mmap="auto")``).  Because the start method is ``fork``, the callable
        is inherited, never pickled.
    workers:
        Number of processes to fork (>= 1).
    max_batch, slack_ms, default_service_ms:
        Deadline-batching knobs handed to each worker's
        :class:`~repro.serving.deadline.DeadlineBatcher`.
    start_timeout_s:
        How long to wait for every worker's ready handshake (engine builds
        can fault in large artifacts).
    """

    def __init__(self, engine_factory: Callable[[], InferenceEngine],
                 workers: int = 2, max_batch: int = 64, slack_ms: float = 1.0,
                 default_service_ms: float = 5.0,
                 start_timeout_s: float = 120.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        ctx = multiprocessing.get_context("fork")
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self._procs: List = []
        self._conns: List = []
        self._closed = False
        self.meta: Dict[str, Any] = {}
        self._next_id = 0
        for idx in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, engine_factory, int(max_batch),
                                     float(slack_ms), float(default_service_ms)),
                               name=f"serving-worker-{idx}", daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        try:
            self._await_ready(start_timeout_s)
        except BaseException:
            self.close()
            raise

    def _await_ready(self, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        for idx, conn in enumerate(self._conns):
            remaining = max(0.0, deadline - time.monotonic())
            if not conn.poll(remaining):
                raise TimeoutError(
                    f"worker {idx} did not become ready within {timeout_s:g}s")
            tag, payload = conn.recv()
            if tag != "ready":
                raise RuntimeError(f"worker {idx} failed to start: {payload}")
            if idx == 0:
                self.meta = payload

    # ------------------------------------------------------------------ #
    # Submission / teardown
    # ------------------------------------------------------------------ #
    def connection(self, worker: int):
        """The parent end of ``worker``'s pipe (for event-loop ``add_reader``)."""
        return self._conns[worker]

    def next_request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def submit(self, worker: int, req_id: int, op: str,
               payload: Dict[str, Any], deadline: float) -> None:
        """Send one request to ``worker`` (non-blocking; pipe-buffered)."""
        if self._closed:
            raise PoolClosed("worker pool is closed")
        self._conns[worker].send(("req", req_id, op, payload, float(deadline)))

    def call(self, worker: int, op: str, payload: Optional[Dict[str, Any]] = None,
             deadline_ms: float = 1000.0, timeout_s: float = 30.0) -> Any:
        """Synchronous round-trip to one worker (tests and CLI startup).

        Must not be interleaved with event-loop dispatch on the same worker:
        it consumes the next matching response off the pipe.
        """
        if self._closed:
            raise PoolClosed("worker pool is closed")
        req_id = self.next_request_id()
        deadline = time.monotonic() + deadline_ms / 1e3
        self.submit(worker, req_id, op, payload or {}, deadline)
        conn = self._conns[worker]
        end = time.monotonic() + timeout_s
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                raise TimeoutError(
                    f"worker {worker} gave no answer to {op!r} "
                    f"within {timeout_s:g}s")
            tag, res_id, ok, value, _meta = conn.recv()
            if tag != "res" or res_id != req_id:
                continue  # stale response from an abandoned earlier call
            if not ok:
                raise WorkerError(value.get("error_type", "RuntimeError"),
                                  value.get("message", "worker error"))
            return value

    def alive(self) -> List[bool]:
        """Liveness of each worker process."""
        return [proc.is_alive() for proc in self._procs]

    def close(self, timeout_s: float = 10.0) -> None:
        """Shut every worker down (drains pending batches); idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass  # worker already gone
        for proc in self._procs:
            proc.join(timeout=timeout_s)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
