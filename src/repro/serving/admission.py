"""SLO-aware admission control: shed what cannot finish in time.

Under overload a FIFO serving tier degrades for *everyone*: queues grow
without bound, every request waits behind the backlog, and p99 collapses past
any deadline even though the machine is doing useful work the whole time.
Admission control converts that cliff into a plateau — the front door
predicts each arriving request's completion time from a live service-time
estimate and the current queue depth, and requests that would finish past
their deadline are rejected immediately (HTTP 503 + ``Retry-After``) instead
of being queued to fail slowly.  Goodput (answers delivered *within* their
SLO) then tracks capacity instead of falling to zero.

The prediction is the standard first-principles queue model: with ``W``
workers, ``q`` admitted-but-unfinished requests, and per-request service
estimate ``s``, a new arrival completes in roughly ``s * (q / W) + s``
(wait for its share of the backlog, then its own service).  ``s`` is an EWMA
over **worker-measured** per-request service times (batch execution time over
batch size, reported with each response), so queueing delay cannot inflate
the estimate and destabilise the controller.

Single-threaded by design: the asyncio event loop owns the controller, so
there are no locks to discipline.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple


class AdmissionController:
    """Queue-depth + EWMA completion-time prediction for load shedding.

    Parameters
    ----------
    workers:
        Parallel service channels (pool worker processes).
    default_service_ms:
        Per-request service estimate before the first observation.
    alpha:
        EWMA weight of the newest observation.
    headroom:
        Safety multiplier on the predicted completion time; values above 1
        shed a little earlier than the raw prediction, absorbing estimate
        noise.  1.0 trusts the prediction exactly.
    shed_decay:
        Multiplicative decay applied to a route's service estimate on every
        shed.  Shed requests yield no measurements, so without decay a stale
        over-estimate would starve the route permanently; with it the
        controller periodically admits a probe that re-measures reality.
    """

    def __init__(self, workers: int, default_service_ms: float = 5.0,
                 alpha: float = 0.2, headroom: float = 1.0,
                 shed_decay: float = 0.95) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if default_service_ms <= 0:
            raise ValueError(
                f"default_service_ms must be positive, got {default_service_ms}")
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {headroom}")
        if not 0 < shed_decay <= 1:
            raise ValueError(f"shed_decay must be in (0, 1], got {shed_decay}")
        self.workers = int(workers)
        self.shed_decay = float(shed_decay)
        self.default_service_ms = float(default_service_ms)
        self.alpha = float(alpha)
        self.headroom = float(headroom)
        self.inflight = 0
        self.admitted = 0
        self.shed = 0
        self._service_ms: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def service_ms(self, route: str) -> float:
        """Current per-request service estimate for ``route`` (ms)."""
        return self._service_ms.get(route, self.default_service_ms)

    def observe(self, route: str, service_ms: float) -> None:
        """Fold one measured per-request service time into the route EWMA."""
        service_ms = max(0.0, float(service_ms))
        previous = self._service_ms.get(route)
        if previous is None:
            self._service_ms[route] = service_ms
        else:
            self._service_ms[route] = previous + self.alpha * (service_ms - previous)

    def predicted_completion_ms(self, route: str) -> float:
        """Predicted time-to-answer for a request admitted right now (ms)."""
        service = self.service_ms(route)
        wait = service * (self.inflight / self.workers)
        return (wait + service) * self.headroom

    # ------------------------------------------------------------------ #
    # Admission decision + occupancy tracking
    # ------------------------------------------------------------------ #
    def admit(self, route: str, deadline_budget_ms: float
              ) -> Tuple[bool, Optional[float]]:
        """Decide one arrival: ``(admitted, retry_after_s)``.

        A rejected request's ``retry_after_s`` is how long until the backlog
        should have drained enough for the same deadline budget to fit —
        i.e. the predicted overshoot — floored at 10 ms so clients never spin.
        """
        predicted = self.predicted_completion_ms(route)
        if predicted <= float(deadline_budget_ms):
            self.inflight += 1
            self.admitted += 1
            return True, None
        self.shed += 1
        # A shed request produces no service-time observation, so a stale
        # (e.g. transiently inflated) estimate could otherwise shed forever
        # with nothing left to correct it.  Geometric decay per shed re-opens
        # the gate after enough rejections; the next admitted probe then
        # restores the estimate to whatever service time is really being paid.
        self._service_ms[route] = self.service_ms(route) * self.shed_decay
        overshoot_ms = predicted - float(deadline_budget_ms)
        return False, max(0.010, overshoot_ms / 1e3)

    def release(self, route: str, service_ms: Optional[float] = None) -> None:
        """One admitted request finished (however it ended).

        ``service_ms`` is the worker-measured per-request service time when
        the request produced one; shed/timeout outcomes pass ``None`` and
        only return their occupancy.
        """
        self.inflight = max(0, self.inflight - 1)
        if service_ms is not None:
            self.observe(route, service_ms)

    def stats(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "inflight": self.inflight,
            "admitted": self.admitted,
            "shed": self.shed,
            "service_ms": {route: round(ms, 4)
                           for route, ms in sorted(self._service_ms.items())},
        }


def retry_after_header(retry_after_s: float) -> str:
    """``Retry-After`` is integral delta-seconds on the wire; round up."""
    return str(max(1, int(math.ceil(retry_after_s))))
