"""The inference engine: checkpoint → answered top-k / scoring queries.

The engine is the programmatic serving surface the HTTP server and the
``sptransx serve`` CLI sit on:

* loads a model through the spec-driven registry
  (:func:`repro.training.checkpoint.load_model`), so the served model is
  backend- and hyperparameter-faithful to what was trained;
* answers ``top_k_tails`` / ``top_k_heads`` with O(N) ``argpartition``
  selection instead of a full sort;
* supports the **filtered** protocol at serving time: known positives are
  masked out of the candidate set, so the answer is "new predictions only";
* coalesces batches of single queries into one vectorised
  ``score_all_tails``/``score_all_heads`` call (the batcher's fast path),
  deduplicating repeated ``(h, r)`` pairs within a batch;
* keeps an LRU cache keyed ``(direction, h, r, k, filtered)`` that is
  invalidated atomically on :meth:`reload`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import ranking
from repro.models.base import KGEModel
from repro.registry import ModelSpec, spec_from_model
from repro.serving.cache import LRUCache


@dataclass(frozen=True)
class TopKQuery:
    """One ranking request: anchor entity + relation, ``k``, filter flag.

    ``anchor`` is the head for tail queries and the tail for head queries.
    """

    anchor: int
    relation: int
    k: int = 10
    filtered: bool = False


@dataclass(frozen=True)
class TopKResult:
    """Ranked answer: candidate entity ids with their dissimilarities."""

    entities: Tuple[int, ...]
    scores: Tuple[float, ...]

    def to_dict(self) -> Dict[str, object]:
        return {"entities": list(self.entities), "scores": list(self.scores)}


def _result_from_row(scores_row: np.ndarray, k: int,
                     exclude: Optional[np.ndarray]) -> TopKResult:
    """Top-k of one score row; excluded candidates never appear in the answer."""
    if exclude is not None and exclude.size:
        scores_row = scores_row.copy()
        scores_row[exclude] = np.inf
        # Masked candidates sort last; trim them off rather than returning
        # +inf rows, so a filtered answer contains only real predictions.
        idx = ranking.top_k(scores_row, k)
        idx = idx[np.isfinite(scores_row[idx])]
    else:
        idx = ranking.top_k(scores_row, k)
    return TopKResult(entities=tuple(int(i) for i in idx),
                      scores=tuple(float(scores_row[i]) for i in idx))


class InferenceEngine:
    """Serve link-prediction queries from a trained KGE model.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.KGEModel` (typically from
        :meth:`from_checkpoint`).
    known_triples:
        Optional iterable of ``(h, r, t)`` positives backing the filtered
        protocol; without it, ``filtered=True`` queries behave like raw ones.
    cache_size:
        LRU entries kept (``0`` disables result caching).
    rescore_expansion:
        When the model serves quantized entity weights, each top-k query is
        answered in two phases: a coarse sweep over the quantized table keeps
        the best ``k × rescore_expansion`` candidates (after exclusion
        masking), which are then rescored exactly from the float64 bucket
        files before the final top-k — reported ranks and scores match
        full-precision serving as long as the true top-k survives the coarse
        cut.  Ignored for full-precision models.
    """

    def __init__(self, model: KGEModel,
                 known_triples: Optional[Iterable[Tuple[int, int, int]]] = None,
                 cache_size: int = 4096, rescore_expansion: int = 4) -> None:
        self.model = model
        self.cache = LRUCache(cache_size)
        if rescore_expansion < 1:
            raise ValueError(
                f"rescore_expansion must be >= 1, got {rescore_expansion}")
        self.rescore_expansion = int(rescore_expansion)
        # numpy scoring is read-only on the weights, but the autograd
        # ``no_grad`` switch used by the generic scoring fallbacks is process
        # global — serialise scoring so concurrent HTTP threads cannot race
        # it.  Cache writes happen under the same lock: reload() and
        # set_known_triples() also take it before clearing, so a thread that
        # scored against the old model can never repopulate the cache after
        # an invalidation.
        self._score_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.queries_served = 0
        self.scoring_calls = 0
        self.rows_scored = 0
        self.rescored_queries = 0
        self.reloads = 0
        self._known_tails: Dict[Tuple[int, int], np.ndarray] = {}
        self._known_heads: Dict[Tuple[int, int], np.ndarray] = {}
        self._entity_snapshot: Optional[np.ndarray] = None
        if known_triples is not None:
            self.set_known_triples(known_triples)

    # ------------------------------------------------------------------ #
    # Construction / lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def from_checkpoint(cls, path: str,
                        known_triples: Optional[Iterable[Tuple[int, int, int]]] = None,
                        cache_size: int = 4096) -> "InferenceEngine":
        """Build an engine from a checkpoint via its stored :class:`ModelSpec`."""
        from repro.training.checkpoint import load_model

        return cls(load_model(path), known_triples=known_triples,
                   cache_size=cache_size)

    @classmethod
    def from_artifact(cls, path: str, filtered: bool = False,
                      cache_size: int = 4096, mmap="auto",
                      quantized=None,
                      rescore_expansion: int = 4) -> "InferenceEngine":
        """Warm-load an ``sptransx run`` artifact directory.

        The artifact is self-contained: the checkpoint restores the exact
        model and, with ``filtered=True``, the stored
        :class:`~repro.experiment.ExperimentSpec`'s data section is
        re-materialised so the run's own triples back the filtered protocol —
        no side-channel dataset arguments needed.

        ``mmap`` controls how the embedding tables are loaded: ``"auto"``
        (default) serves them memory-mapped straight from the artifact's
        ``weights/`` directory when present — the tables are paged in on
        demand and never densified into RAM — and falls back to the regular
        in-memory load otherwise; ``True`` requires the weight files;
        ``False`` always densifies.

        ``quantized`` (``"fp16"``/``"int8"``/``"auto"``) serves a partitioned
        model from the quantized bucket files written with
        ``save_weight_files(..., quantize=...)`` — 2–4× lower resident bucket
        bytes, with each answer rescored exactly from the float64 originals
        (see ``rescore_expansion``).  Implies loading from the weight files.
        """
        import os

        from repro.experiment import load_artifact
        from repro.training.checkpoint import ARTIFACT_WEIGHTS

        artifact = load_artifact(path)
        known = (artifact.spec.data.materialize().known_triples()
                 if filtered else None)
        if quantized not in (None, False):
            mmap = True
        elif mmap == "auto":
            mmap = os.path.isdir(os.path.join(path, ARTIFACT_WEIGHTS))
        return cls(artifact.load_model(mmap=bool(mmap), quantized=quantized),
                   known_triples=known, cache_size=cache_size,
                   rescore_expansion=rescore_expansion)

    def set_known_triples(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        """Install the positive set backing filtered queries (replaces any prior)."""
        tails: Dict[Tuple[int, int], List[int]] = {}
        heads: Dict[Tuple[int, int], List[int]] = {}
        for h, r, t in triples:
            tails.setdefault((int(h), int(r)), []).append(int(t))
            heads.setdefault((int(r), int(t)), []).append(int(h))
        with self._score_lock:
            self._known_tails = {k: np.asarray(v, dtype=np.int64)
                                 for k, v in tails.items()}
            self._known_heads = {k: np.asarray(v, dtype=np.int64)
                                 for k, v in heads.items()}
            self.cache.clear()

    def reload(self, path: str) -> None:
        """Swap in a new checkpoint atomically and invalidate the result cache."""
        from repro.training.checkpoint import load_model

        model = load_model(path)
        with self._score_lock:
            self.model = model
            self.cache.clear()
            self._entity_snapshot = None
            with self._stats_lock:
                self.reloads += 1

    def spec(self) -> ModelSpec:
        """Spec of the currently served model."""
        return spec_from_model(self.model)

    def entity_snapshot(self) -> np.ndarray:
        """Dense entity-embedding snapshot, computed once per loaded model.

        Extracting the matrix can itself be expensive (ComplEx concatenates
        real/imaginary halves), so :meth:`nearest_entities` reads this cached
        copy; :meth:`reload` drops it with the result cache.
        """
        with self._score_lock:
            return self._entity_snapshot_locked()

    def _entity_snapshot_locked(self) -> np.ndarray:
        if self._entity_snapshot is None:
            self._entity_snapshot = self.model.entity_embedding_matrix()
        return self._entity_snapshot

    def nearest_entities(self, entity: int, k: int = 10) -> TopKResult:
        """The ``k`` entities closest to ``entity`` in embedding space.

        Embedding-space similarity ("entities like this one") rather than a
        scoring-function ranking — the query itself is excluded from the
        answer.  Distances come from the cached snapshot through one
        GEMM-expanded L2 pass, and results share the engine's LRU cache.
        """
        entity = int(entity)
        if not 0 <= entity < self.model.n_entities:
            raise IndexError(
                f"entity id {entity} out of range [0, {self.model.n_entities})"
            )
        key = ("nearest", entity, int(k))
        found, value = self.cache.get(key)
        if not found:
            with self._score_lock:
                if self.model.n_partitions > 1:
                    # Partitioned tables are never densified: fault buckets in
                    # lazily and keep a running top-k across blocks.  Under
                    # quantized serving the blocked sweep is coarse, so keep
                    # k·expansion candidates and rescore them exactly.
                    exact_rows = (getattr(self.model, "exact_entity_rows", None)
                                  if getattr(self.model, "serving_quantized",
                                             None) is not None else None)
                    k_coarse = (k * self.rescore_expansion
                                if exact_rows is not None else k)
                    query = self.model.entity_embedding_rows(
                        np.array([entity]))[0]
                    idx, distances_sel = ranking.nearest_rows(
                        query, self.model.iter_entity_embedding_blocks(),
                        k_coarse, exclude=entity)
                    if exact_rows is not None and idx.size:
                        q = exact_rows(np.array([entity]))[0]
                        exact = ranking.l2_distance_matrix(
                            q[None, :], exact_rows(idx))[0]
                        sel = ranking.top_k(exact, k)
                        idx, distances_sel = idx[sel], exact[sel]
                    value = TopKResult(
                        entities=tuple(int(i) for i in idx),
                        scores=tuple(float(d) for d in distances_sel))
                else:
                    ent = self._entity_snapshot_locked()
                    distances = ranking.l2_distance_matrix(
                        ent[entity][None, :], ent)[0]
                    distances[entity] = np.inf
                    idx = ranking.top_k(distances, k)
                    idx = idx[np.isfinite(distances[idx])]
                    value = TopKResult(
                        entities=tuple(int(i) for i in idx),
                        scores=tuple(float(distances[i]) for i in idx))
                self.cache.put(key, value)
        with self._stats_lock:
            self.queries_served += 1
        return value

    # ------------------------------------------------------------------ #
    # Query API
    # ------------------------------------------------------------------ #
    def top_k_tails(self, head: int, relation: int, k: int = 10,
                    filtered: bool = False) -> TopKResult:
        """The ``k`` most plausible tails for ``(head, relation, ?)``."""
        return self.top_k_tails_batch([TopKQuery(head, relation, k, filtered)])[0]

    def top_k_heads(self, relation: int, tail: int, k: int = 10,
                    filtered: bool = False) -> TopKResult:
        """The ``k`` most plausible heads for ``(?, relation, tail)``."""
        return self.top_k_heads_batch([TopKQuery(tail, relation, k, filtered)])[0]

    def top_k_tails_batch(self, queries: Sequence[TopKQuery]) -> List[TopKResult]:
        """Answer many tail queries with (at most) one ``score_all_tails`` call."""
        return self._top_k_batch(queries, direction="tail")

    def top_k_heads_batch(self, queries: Sequence[TopKQuery]) -> List[TopKResult]:
        """Answer many head queries with (at most) one ``score_all_heads`` call."""
        return self._top_k_batch(queries, direction="head")

    def _top_k_batch(self, queries: Sequence[TopKQuery],
                     direction: str) -> List[TopKResult]:
        results: List[Optional[TopKResult]] = [None] * len(queries)
        miss_positions: List[int] = []
        for i, q in enumerate(queries):
            found, value = self.cache.get(self._cache_key(direction, q))
            if found:
                results[i] = value
            else:
                miss_positions.append(i)

        if miss_positions:
            # Deduplicate repeated (anchor, relation) pairs so the scoring
            # kernel sees each query row once, however skewed the traffic.
            pair_rows: Dict[Tuple[int, int], int] = {}
            for i in miss_positions:
                q = queries[i]
                pair_rows.setdefault((q.anchor, q.relation), len(pair_rows))
            anchors = np.fromiter((p[0] for p in pair_rows), dtype=np.int64,
                                  count=len(pair_rows))
            relations = np.fromiter((p[1] for p in pair_rows), dtype=np.int64,
                                    count=len(pair_rows))
            # Result construction and cache.put stay inside the lock so an
            # interleaved reload()/set_known_triples() cannot be followed by
            # stale entries written from the pre-invalidation model.
            with self._score_lock:
                if direction == "tail":
                    scores = self.model.score_all_tails(anchors, relations)
                else:
                    scores = self.model.score_all_heads(relations, anchors)
                with self._stats_lock:
                    self.scoring_calls += 1
                    self.rows_scored += int(anchors.shape[0])
                rescore = self._rescorer()
                for i in miss_positions:
                    q = queries[i]
                    row = scores[pair_rows[(q.anchor, q.relation)]]
                    exclude = self._exclusions(direction, q) if q.filtered else None
                    if rescore is not None:
                        result = self._rescored_result(row, q, exclude,
                                                       direction, rescore)
                    else:
                        result = _result_from_row(row, q.k, exclude)
                    self.cache.put(self._cache_key(direction, q), result)
                    results[i] = result

        with self._stats_lock:
            self.queries_served += len(queries)
        return results  # type: ignore[return-value]

    def score(self, head: int, relation: int, tail: int) -> float:
        """Dissimilarity of one triple (smaller = more plausible)."""
        return float(self.score_triples([(head, relation, tail)])[0])

    def score_triples(self, triples: Sequence[Tuple[int, int, int]]) -> np.ndarray:
        """Dissimilarities for a batch of triples."""
        arr = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        with self._score_lock:
            out = self.model.score_triples(arr)
        with self._stats_lock:
            self.queries_served += arr.shape[0]
        return out

    def classify(self, triples: Sequence[Tuple[int, int, int]],
                 threshold: float) -> List[bool]:
        """Binary triple classification: plausible iff dissimilarity ≤ threshold."""
        return [bool(v) for v in self.score_triples(triples) <= float(threshold)]

    # ------------------------------------------------------------------ #
    # Internals / introspection
    # ------------------------------------------------------------------ #
    def _rescorer(self):
        """The model's exact-rescore hook, when quantized serving is active."""
        if getattr(self.model, "serving_quantized", None) is None:
            return None
        return getattr(self.model, "exact_candidate_scores", None)

    def _rescored_result(self, row: np.ndarray, q: TopKQuery,
                         exclude: Optional[np.ndarray], direction: str,
                         rescore) -> TopKResult:
        """Two-phase answer: coarse quantized top-k·expansion, exact rescore.

        Exclusions are masked *before* the coarse cut so filtered queries keep
        the full candidate budget; the survivors are rescored from the float64
        bucket files and the final top-k ranked on the exact scores.
        """
        masked = row
        if exclude is not None and exclude.size:
            masked = row.copy()
            masked[exclude] = np.inf
        coarse_k = min(masked.shape[0], q.k * self.rescore_expansion)
        candidates = ranking.top_k(masked, coarse_k)
        candidates = candidates[np.isfinite(masked[candidates])]
        if candidates.size == 0:
            return TopKResult(entities=(), scores=())
        exact = rescore(q.anchor, q.relation, candidates, direction)
        if exact is None:
            # Model cannot rescore this formulation; serve the coarse ranking.
            return _result_from_row(row, q.k, exclude)
        sel = ranking.top_k(exact, q.k)
        with self._stats_lock:
            self.rescored_queries += 1
        return TopKResult(entities=tuple(int(candidates[i]) for i in sel),
                          scores=tuple(float(exact[i]) for i in sel))

    def _cache_key(self, direction: str, q: TopKQuery) -> Tuple:
        return (direction, q.anchor, q.relation, q.k, q.filtered)

    def _exclusions(self, direction: str, q: TopKQuery) -> Optional[np.ndarray]:
        if direction == "tail":
            return self._known_tails.get((q.anchor, q.relation))
        return self._known_heads.get((q.relation, q.anchor))

    def stats(self) -> Dict[str, object]:
        """Counters for the ``/v1/stats`` endpoint and the benchmarks."""
        with self._stats_lock:
            return {
                "queries_served": self.queries_served,
                "scoring_calls": self.scoring_calls,
                "rows_scored": self.rows_scored,
                "rescored_queries": self.rescored_queries,
                "quantized": getattr(self.model, "serving_quantized", None),
                "reloads": self.reloads,
                "cache": self.cache.stats(),
            }
