"""The inference engine: checkpoint → answered top-k / scoring queries.

The engine is the programmatic serving surface the HTTP server and the
``sptransx serve`` CLI sit on:

* loads a model through the spec-driven registry
  (:func:`repro.training.checkpoint.load_model`), so the served model is
  backend- and hyperparameter-faithful to what was trained;
* answers ``top_k_tails`` / ``top_k_heads`` with O(N) ``argpartition``
  selection instead of a full sort;
* supports the **filtered** protocol at serving time: known positives are
  masked out of the candidate set, so the answer is "new predictions only";
* coalesces batches of single queries into one vectorised
  ``score_all_tails``/``score_all_heads`` call (the batcher's fast path),
  deduplicating repeated ``(h, r)`` pairs within a batch;
* keeps an LRU cache keyed ``(direction, h, r, k, filtered)`` that is
  invalidated atomically on :meth:`reload`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import ranking
from repro.models.base import KGEModel
from repro.registry import ModelSpec, spec_from_model
from repro.serving.cache import LRUCache


@dataclass(frozen=True)
class TopKQuery:
    """One ranking request: anchor entity + relation, ``k``, filter flag.

    ``anchor`` is the head for tail queries and the tail for head queries.
    ``ann`` / ``nprobe`` are per-request overrides of the engine's ANN
    routing: ``ann=False`` forces exact ranking for this query, ``nprobe``
    widens or narrows the probe (both default to the engine configuration).
    """

    anchor: int
    relation: int
    k: int = 10
    filtered: bool = False
    ann: Optional[bool] = None
    nprobe: Optional[int] = None


@dataclass(frozen=True)
class TopKResult:
    """Ranked answer: candidate entity ids with their dissimilarities."""

    entities: Tuple[int, ...]
    scores: Tuple[float, ...]

    def to_dict(self) -> Dict[str, object]:
        return {"entities": list(self.entities), "scores": list(self.scores)}


def _result_from_row(scores_row: np.ndarray, k: int,
                     exclude: Optional[np.ndarray]) -> TopKResult:
    """Top-k of one score row; excluded candidates never appear in the answer."""
    if exclude is not None and exclude.size:
        scores_row = scores_row.copy()
        scores_row[exclude] = np.inf
        # Masked candidates sort last; trim them off rather than returning
        # +inf rows, so a filtered answer contains only real predictions.
        idx = ranking.top_k(scores_row, k)
        idx = idx[np.isfinite(scores_row[idx])]
    else:
        idx = ranking.top_k(scores_row, k)
    return TopKResult(entities=tuple(int(i) for i in idx),
                      scores=tuple(float(scores_row[i]) for i in idx))


class InferenceEngine:
    """Serve link-prediction queries from a trained KGE model.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.KGEModel` (typically from
        :meth:`from_checkpoint`).
    known_triples:
        Optional iterable of ``(h, r, t)`` positives backing the filtered
        protocol; without it, ``filtered=True`` queries behave like raw ones.
    cache_size:
        LRU entries kept (``0`` disables result caching).
    rescore_expansion:
        When the model serves quantized entity weights, each top-k query is
        answered in two phases: a coarse sweep over the quantized table keeps
        the best ``k × rescore_expansion`` candidates (after exclusion
        masking), which are then rescored exactly from the float64 bucket
        files before the final top-k — reported ranks and scores match
        full-precision serving as long as the true top-k survives the coarse
        cut.  Ignored for full-precision models.
    ann_index:
        An :class:`repro.ann.IVFIndex` (or compatible) built over the model's
        entity table.  When set, L2-rankable queries probe ``nprobe`` clusters
        and rescore only the gathered candidates exactly — sub-linear scans
        with exact final scores; models without an L2 closed form fall back to
        exact ranking (counted in ``stats()["fallback_queries"]``).
    nprobe:
        Engine-default probe width (``None`` uses the index manifest's
        auto-chosen default; per-query overrides win over both).
    """

    def __init__(self, model: KGEModel,
                 known_triples: Optional[Iterable[Tuple[int, int, int]]] = None,
                 cache_size: int = 4096, rescore_expansion: int = 4,
                 ann_index=None, nprobe: Optional[int] = None) -> None:
        self.model = model
        self.cache = LRUCache(cache_size)
        if rescore_expansion < 1:
            raise ValueError(
                f"rescore_expansion must be >= 1, got {rescore_expansion}")
        self.rescore_expansion = int(rescore_expansion)
        if ann_index is not None and int(ann_index.n_entities) != int(model.n_entities):
            raise ValueError(
                f"ANN index covers {ann_index.n_entities} entities but the "
                f"model has {model.n_entities}; rebuild the index from this "
                "artifact's weight files"
            )
        self.ann_index = ann_index
        self.ann_nprobe = int(nprobe) if nprobe is not None else None
        #: How from_artifact selected the index ("auto"/kind/None); reload()
        #: uses it to decide whether to re-attach an index from the new path.
        self._ann_mode = "auto" if ann_index is not None else None
        # numpy scoring is read-only on the weights, but the autograd
        # ``no_grad`` switch used by the generic scoring fallbacks is process
        # global — serialise scoring so concurrent HTTP threads cannot race
        # it.  Cache writes happen under the same lock: reload() and
        # set_known_triples() also take it before clearing, so a thread that
        # scored against the old model can never repopulate the cache after
        # an invalidation.
        self._score_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.queries_served = 0
        self.scoring_calls = 0
        self.rows_scored = 0
        self.rescored_queries = 0
        self.reloads = 0
        self.ann_queries = 0
        self.fallback_queries = 0
        self.ann_candidates = 0
        self._known_tails: Dict[Tuple[int, int], np.ndarray] = {}
        self._known_heads: Dict[Tuple[int, int], np.ndarray] = {}
        self._entity_snapshot: Optional[np.ndarray] = None
        if known_triples is not None:
            self.set_known_triples(known_triples)

    # ------------------------------------------------------------------ #
    # Construction / lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def from_checkpoint(cls, path: str,
                        known_triples: Optional[Iterable[Tuple[int, int, int]]] = None,
                        cache_size: int = 4096) -> "InferenceEngine":
        """Build an engine from a checkpoint via its stored :class:`ModelSpec`."""
        from repro.training.checkpoint import load_model

        return cls(load_model(path), known_triples=known_triples,
                   cache_size=cache_size)

    @classmethod
    def from_artifact(cls, path: str, filtered: bool = False,
                      cache_size: int = 4096, mmap="auto",
                      quantized=None,
                      rescore_expansion: int = 4,
                      ann="auto",
                      nprobe: Optional[int] = None) -> "InferenceEngine":
        """Warm-load an ``sptransx run`` artifact directory.

        The artifact is self-contained: the checkpoint restores the exact
        model and, with ``filtered=True``, the stored
        :class:`~repro.experiment.ExperimentSpec`'s data section is
        re-materialised so the run's own triples back the filtered protocol —
        no side-channel dataset arguments needed.

        ``mmap`` controls how the embedding tables are loaded: ``"auto"``
        (default) serves them memory-mapped straight from the artifact's
        ``weights/`` directory when present — the tables are paged in on
        demand and never densified into RAM — and falls back to the regular
        in-memory load otherwise; ``True`` requires the weight files;
        ``False`` always densifies.

        ``quantized`` (``"fp16"``/``"int8"``/``"auto"``) serves a partitioned
        model from the quantized bucket files written with
        ``save_weight_files(..., quantize=...)`` — 2–4× lower resident bucket
        bytes, with each answer rescored exactly from the float64 originals
        (see ``rescore_expansion``).  Implies loading from the weight files.

        ``ann`` selects ANN-indexed serving: ``"auto"`` (default) lazily
        loads ``<path>/index/`` when the artifact carries one and serves
        exact otherwise; a kind name (``"ivf"``) requires that index;
        ``False``/``"off"`` disables ANN routing.  ``nprobe`` overrides the
        index manifest's auto-chosen default probe width.
        """
        import os

        from repro.experiment import load_artifact
        from repro.training.checkpoint import ARTIFACT_WEIGHTS

        artifact = load_artifact(path)
        known = (artifact.spec.data.materialize().known_triples()
                 if filtered else None)
        if quantized not in (None, False):
            mmap = True
        elif mmap == "auto":
            mmap = os.path.isdir(os.path.join(path, ARTIFACT_WEIGHTS))
        ann_index = cls._load_artifact_index(path, ann)
        engine = cls(artifact.load_model(mmap=bool(mmap), quantized=quantized),
                     known_triples=known, cache_size=cache_size,
                     rescore_expansion=rescore_expansion,
                     ann_index=ann_index, nprobe=nprobe)
        engine._ann_mode = None if ann in (None, False, "off") else ann
        return engine

    @staticmethod
    def _load_artifact_index(path: str, ann):
        """Resolve the ``ann`` mode against ``<path>/index/`` (or return None)."""
        if ann in (None, False, "off"):
            return None
        import os

        from repro.ann import ARTIFACT_INDEX, load_index

        index_dir = os.path.join(path, ARTIFACT_INDEX)
        if os.path.isdir(index_dir):
            index = load_index(index_dir)
            if ann not in (True, "auto") and index.kind != str(ann):
                raise ValueError(
                    f"artifact carries a {index.kind!r} index but "
                    f"ann={ann!r} was requested"
                )
            return index
        if ann in (True, "auto"):
            return None
        raise FileNotFoundError(
            f"no ANN index under {index_dir}; export the artifact with "
            f"--ann {ann} (or save_weight_files(..., ann={str(ann)!r}))"
        )

    def set_known_triples(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        """Install the positive set backing filtered queries (replaces any prior)."""
        tails: Dict[Tuple[int, int], List[int]] = {}
        heads: Dict[Tuple[int, int], List[int]] = {}
        for h, r, t in triples:
            tails.setdefault((int(h), int(r)), []).append(int(t))
            heads.setdefault((int(r), int(t)), []).append(int(h))
        with self._score_lock:
            self._known_tails = {k: np.asarray(v, dtype=np.int64)
                                 for k, v in tails.items()}
            self._known_heads = {k: np.asarray(v, dtype=np.int64)
                                 for k, v in heads.items()}
            self.cache.clear()

    def reload(self, path: str) -> None:
        """Swap in a new checkpoint atomically and invalidate the result cache.

        Any attached ANN index is dropped with the cache (its clusters
        describe the *old* weights); when this engine came from
        ``from_artifact`` with ANN enabled and ``path`` is an artifact
        directory carrying an ``index/``, the new artifact's index is
        re-attached in the same swap.
        """
        import os

        from repro.training.checkpoint import load_model

        model = load_model(path)
        new_index = (self._load_artifact_index(path, self._ann_mode)
                     if self._ann_mode is not None and os.path.isdir(path)
                     else None)
        if new_index is not None and int(new_index.n_entities) != int(model.n_entities):
            raise ValueError(
                f"ANN index under {path} covers {new_index.n_entities} "
                f"entities but the reloaded model has {model.n_entities}"
            )
        with self._score_lock:
            self.model = model
            self.ann_index = new_index
            self.cache.clear()
            self._entity_snapshot = None
            with self._stats_lock:
                self.reloads += 1

    def spec(self) -> ModelSpec:
        """Spec of the currently served model."""
        return spec_from_model(self.model)

    def entity_snapshot(self) -> np.ndarray:
        """Dense entity-embedding snapshot, computed once per loaded model.

        Extracting the matrix can itself be expensive (ComplEx concatenates
        real/imaginary halves), so :meth:`nearest_entities` reads this cached
        copy; :meth:`reload` drops it with the result cache.
        """
        with self._score_lock:
            return self._entity_snapshot_locked()

    def _entity_snapshot_locked(self) -> np.ndarray:
        if self._entity_snapshot is None:
            self._entity_snapshot = self.model.entity_embedding_matrix()
        return self._entity_snapshot

    def nearest_entities(self, entity: int, k: int = 10) -> TopKResult:
        """The ``k`` entities closest to ``entity`` in embedding space.

        Embedding-space similarity ("entities like this one") rather than a
        scoring-function ranking — the query itself is excluded from the
        answer.  Distances come from the cached snapshot through one
        GEMM-expanded L2 pass, and results share the engine's LRU cache.
        """
        entity = int(entity)
        if not 0 <= entity < self.model.n_entities:
            raise IndexError(
                f"entity id {entity} out of range [0, {self.model.n_entities})"
            )
        key = ("nearest", entity, int(k))
        found, value = self.cache.get(key)
        if not found:
            with self._score_lock:
                # Single-flight: a concurrent identical query may have filled
                # the cache while this thread waited for the lock.
                found, value = self.cache.recheck(key)
                if found:
                    pass
                elif self.ann_index is not None and self.model.n_partitions > 1:
                    # IVF route: probe nprobe clusters around the entity's own
                    # row, then rescore the gathered candidates exactly from
                    # the fp64 originals — identical distances to the blocked
                    # sweep whenever the true top-k lies in probed clusters.
                    query = self.ann_index.exact_rows(np.array([entity]))[0]
                    cand = self.ann_index.candidate_ids(
                        query, self._effective_nprobe(None))
                    dist = ranking.l2_distance_matrix(
                        query[None, :], self.ann_index.exact_rows(cand))[0]
                    value = self._ann_result(
                        cand, dist, int(k),
                        exclude=np.array([entity], dtype=np.int64))
                    with self._stats_lock:
                        self.ann_queries += 1
                        self.ann_candidates += int(cand.size)
                elif self.model.n_partitions > 1:
                    # Partitioned tables are never densified: fault buckets in
                    # lazily and keep a running top-k across blocks.  Under
                    # quantized serving the blocked sweep is coarse, so keep
                    # k·expansion candidates and rescore them exactly.
                    exact_rows = (getattr(self.model, "exact_entity_rows", None)
                                  if getattr(self.model, "serving_quantized",
                                             None) is not None else None)
                    k_coarse = (k * self.rescore_expansion
                                if exact_rows is not None else k)
                    query = self.model.entity_embedding_rows(
                        np.array([entity]))[0]
                    idx, distances_sel = ranking.nearest_rows(
                        query, self.model.iter_entity_embedding_blocks(),
                        k_coarse, exclude=entity)
                    if exact_rows is not None and idx.size:
                        q = exact_rows(np.array([entity]))[0]
                        exact = ranking.l2_distance_matrix(
                            q[None, :], exact_rows(idx))[0]
                        sel = ranking.top_k(exact, k)
                        idx, distances_sel = idx[sel], exact[sel]
                    value = TopKResult(
                        entities=tuple(int(i) for i in idx),
                        scores=tuple(float(d) for d in distances_sel))
                else:
                    ent = self._entity_snapshot_locked()
                    distances = ranking.l2_distance_matrix(
                        ent[entity][None, :], ent)[0]
                    distances[entity] = np.inf
                    idx = ranking.top_k(distances, k)
                    idx = idx[np.isfinite(distances[idx])]
                    value = TopKResult(
                        entities=tuple(int(i) for i in idx),
                        scores=tuple(float(distances[i]) for i in idx))
                self.cache.put(key, value)
        with self._stats_lock:
            self.queries_served += 1
        return value

    # ------------------------------------------------------------------ #
    # Query API
    # ------------------------------------------------------------------ #
    def top_k_tails(self, head: int, relation: int, k: int = 10,
                    filtered: bool = False, ann: Optional[bool] = None,
                    nprobe: Optional[int] = None) -> TopKResult:
        """The ``k`` most plausible tails for ``(head, relation, ?)``."""
        return self.top_k_tails_batch(
            [TopKQuery(head, relation, k, filtered, ann, nprobe)])[0]

    def top_k_heads(self, relation: int, tail: int, k: int = 10,
                    filtered: bool = False, ann: Optional[bool] = None,
                    nprobe: Optional[int] = None) -> TopKResult:
        """The ``k`` most plausible heads for ``(?, relation, tail)``."""
        return self.top_k_heads_batch(
            [TopKQuery(tail, relation, k, filtered, ann, nprobe)])[0]

    def top_k_tails_batch(self, queries: Sequence[TopKQuery]) -> List[TopKResult]:
        """Answer many tail queries with (at most) one ``score_all_tails`` call."""
        return self._top_k_batch(queries, direction="tail")

    def top_k_heads_batch(self, queries: Sequence[TopKQuery]) -> List[TopKResult]:
        """Answer many head queries with (at most) one ``score_all_heads`` call."""
        return self._top_k_batch(queries, direction="head")

    def _top_k_batch(self, queries: Sequence[TopKQuery],
                     direction: str) -> List[TopKResult]:
        results: List[Optional[TopKResult]] = [None] * len(queries)
        miss_positions: List[int] = []
        for i, q in enumerate(queries):
            found, value = self.cache.get(self._cache_key(direction, q))
            if found:
                results[i] = value
            else:
                miss_positions.append(i)

        if miss_positions:
            # Result construction and cache.put stay inside the lock so an
            # interleaved reload()/set_known_triples() cannot be followed by
            # stale entries written from the pre-invalidation model.
            with self._score_lock:
                # Single-flight guard: concurrent misses on the same key
                # serialise on the score lock, so any key another thread
                # computed while we waited is already cached — serve those
                # riders now instead of stampeding the scoring path again.
                miss_positions = self._uncoalesced_misses_locked(
                    queries, direction, miss_positions, results)
                # Route each miss: ANN when an index is attached, the query
                # didn't opt out, and the model exposes an L2 query vector;
                # everything else joins the exact batched scoring call.
                # Candidate sets are shared per (anchor, relation, nprobe) —
                # the ANN twin of the exact path's pair deduplication.
                ann_sets: Dict[Tuple[int, int, int],
                               Optional[Tuple[np.ndarray, np.ndarray]]] = {}
                plans: Dict[int, Tuple[str, Tuple]] = {}
                pair_rows: Dict[Tuple[int, int], int] = {}
                ann_fallbacks = 0
                for i in miss_positions:
                    q = queries[i]
                    if self.ann_index is not None and q.ann is not False:
                        nprobe = self._effective_nprobe(q.nprobe)
                        ann_key = (q.anchor, q.relation, nprobe)
                        if ann_key not in ann_sets:
                            ann_sets[ann_key] = self._ann_candidate_set(
                                q.anchor, q.relation, direction, nprobe)
                        if ann_sets[ann_key] is not None:
                            plans[i] = ("ann", ann_key)
                            continue
                        ann_fallbacks += 1
                    pair = (q.anchor, q.relation)
                    pair_rows.setdefault(pair, len(pair_rows))
                    plans[i] = ("exact", pair)
                scores = None
                if pair_rows:
                    anchors = np.fromiter((p[0] for p in pair_rows),
                                          dtype=np.int64, count=len(pair_rows))
                    relations = np.fromiter((p[1] for p in pair_rows),
                                            dtype=np.int64, count=len(pair_rows))
                    if direction == "tail":
                        scores = self.model.score_all_tails(anchors, relations)
                    else:
                        scores = self.model.score_all_heads(relations, anchors)
                    with self._stats_lock:
                        self.scoring_calls += 1
                        self.rows_scored += int(anchors.shape[0])
                rescore = self._rescorer()
                ann_answered = 0
                ann_scanned = 0
                for i in miss_positions:
                    q = queries[i]
                    kind, ref = plans[i]
                    exclude = self._exclusions(direction, q) if q.filtered else None
                    if kind == "ann":
                        candidates, dist = ann_sets[ref]  # type: ignore[misc]
                        result = self._ann_result(candidates, dist, q.k, exclude)
                        ann_answered += 1
                        ann_scanned += int(candidates.size)
                    else:
                        row = scores[pair_rows[ref]]  # type: ignore[index]
                        if rescore is not None:
                            result = self._rescored_result(row, q, exclude,
                                                           direction, rescore)
                        else:
                            result = _result_from_row(row, q.k, exclude)
                    self.cache.put(self._cache_key(direction, q), result)
                    results[i] = result
                with self._stats_lock:
                    self.ann_queries += ann_answered
                    self.ann_candidates += ann_scanned
                    self.fallback_queries += ann_fallbacks

        with self._stats_lock:
            self.queries_served += len(queries)
        return results  # type: ignore[return-value]

    def score(self, head: int, relation: int, tail: int) -> float:
        """Dissimilarity of one triple (smaller = more plausible)."""
        return float(self.score_triples([(head, relation, tail)])[0])

    def score_triples(self, triples: Sequence[Tuple[int, int, int]]) -> np.ndarray:
        """Dissimilarities for a batch of triples."""
        arr = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        with self._score_lock:
            out = self.model.score_triples(arr)
        with self._stats_lock:
            self.queries_served += arr.shape[0]
        return out

    def classify(self, triples: Sequence[Tuple[int, int, int]],
                 threshold: float) -> List[bool]:
        """Binary triple classification: plausible iff dissimilarity ≤ threshold."""
        return [bool(v) for v in self.score_triples(triples) <= float(threshold)]

    # ------------------------------------------------------------------ #
    # Internals / introspection
    # ------------------------------------------------------------------ #
    def _effective_nprobe(self, nprobe: Optional[int]) -> Optional[int]:
        """Per-query nprobe > engine default > index manifest default."""
        if nprobe is not None:
            return int(nprobe)
        return self.ann_nprobe

    def _ann_candidate_set(self, anchor: int, relation: int, direction: str,
                           nprobe: Optional[int]
                           ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """IVF candidates + exact distances for one pair, or None (fallback).

        Caller holds ``_score_lock`` (index residency state mutates here).
        Returns ``None`` when the model has no L2 closed form for this query
        — the caller serves it through exact ranking instead.
        """
        query = self.model.l2_query_vector(anchor, relation, direction)
        if query is None:
            return None
        candidates = self.ann_index.candidate_ids(query, nprobe)
        rows = self.ann_index.exact_rows(candidates)
        dist = ranking.l2_distance_matrix(
            np.asarray(query, dtype=np.float64)[None, :], rows)[0]
        return candidates, dist

    def _ann_result(self, candidates: np.ndarray, dist: np.ndarray, k: int,
                    exclude: Optional[np.ndarray]) -> TopKResult:
        """Final top-k over an ANN candidate set (exclusions masked first).

        ``candidates`` is sorted ascending, so excluded ids are located with
        ``searchsorted``; with a full probe the candidate set is every entity
        and this reduces to exactly ``_result_from_row``.
        """
        if exclude is not None and exclude.size and candidates.size:
            exclude = np.asarray(exclude, dtype=np.int64).reshape(-1)
            pos = np.searchsorted(candidates, exclude)
            inside = pos < candidates.size
            pos = pos[inside]
            hit = pos[candidates[pos] == exclude[inside]]
            if hit.size:
                dist = dist.copy()
                dist[hit] = np.inf
        sel = ranking.top_k(dist, k)
        sel = sel[np.isfinite(dist[sel])]
        return TopKResult(entities=tuple(int(candidates[i]) for i in sel),
                          scores=tuple(float(dist[i]) for i in sel))

    def _rescorer(self):
        """The model's exact-rescore hook, when quantized serving is active."""
        if getattr(self.model, "serving_quantized", None) is None:
            return None
        return getattr(self.model, "exact_candidate_scores", None)

    def _rescored_result(self, row: np.ndarray, q: TopKQuery,
                         exclude: Optional[np.ndarray], direction: str,
                         rescore) -> TopKResult:
        """Two-phase answer: coarse quantized top-k·expansion, exact rescore.

        Exclusions are masked *before* the coarse cut so filtered queries keep
        the full candidate budget; the survivors are rescored from the float64
        bucket files and the final top-k ranked on the exact scores.
        """
        masked = row
        if exclude is not None and exclude.size:
            masked = row.copy()
            masked[exclude] = np.inf
        coarse_k = min(masked.shape[0], q.k * self.rescore_expansion)
        candidates = ranking.top_k(masked, coarse_k)
        candidates = candidates[np.isfinite(masked[candidates])]
        if candidates.size == 0:
            return TopKResult(entities=(), scores=())
        exact = rescore(q.anchor, q.relation, candidates, direction)
        if exact is None:
            # Model cannot rescore this formulation; serve the coarse ranking.
            return _result_from_row(row, q.k, exclude)
        sel = ranking.top_k(exact, q.k)
        with self._stats_lock:
            self.rescored_queries += 1
        return TopKResult(entities=tuple(int(candidates[i]) for i in sel),
                          scores=tuple(float(exact[i]) for i in sel))

    def _uncoalesced_misses_locked(self, queries: Sequence[TopKQuery],
                                   direction: str,
                                   miss_positions: List[int],
                                   results: List[Optional[TopKResult]]
                                   ) -> List[int]:
        """Second-chance cache pass over ``miss_positions`` (caller holds
        the score lock): positions whose key landed in the cache while we
        waited for the lock are filled from it, the rest still need scoring.
        """
        remaining: List[int] = []
        for i in miss_positions:
            found, value = self.cache.recheck(
                self._cache_key(direction, queries[i]))
            if found:
                results[i] = value
            else:
                remaining.append(i)
        return remaining

    def _cache_key(self, direction: str, q: TopKQuery) -> Tuple:
        return (direction, q.anchor, q.relation, q.k, q.filtered, q.ann,
                q.nprobe)

    def _exclusions(self, direction: str, q: TopKQuery) -> Optional[np.ndarray]:
        if direction == "tail":
            return self._known_tails.get((q.anchor, q.relation))
        return self._known_heads.get((q.relation, q.anchor))

    def stats(self) -> Dict[str, object]:
        """Counters for the ``/v1/stats`` endpoint and the benchmarks.

        ``probed_fraction`` is the mean fraction of the entity table scanned
        per ANN-answered query (1.0 would be an exact sweep);
        ``fallback_queries`` counts queries that wanted ANN but fell back to
        exact ranking because the model has no L2 closed form.
        """
        index = self.ann_index
        with self._stats_lock:
            probed = (self.ann_candidates
                      / (self.ann_queries * max(1, self.model.n_entities))
                      if self.ann_queries else 0.0)
            return {
                "queries_served": self.queries_served,
                "scoring_calls": self.scoring_calls,
                "rows_scored": self.rows_scored,
                "rescored_queries": self.rescored_queries,
                "quantized": getattr(self.model, "serving_quantized", None),
                "reloads": self.reloads,
                "ann_queries": self.ann_queries,
                "fallback_queries": self.fallback_queries,
                "probed_fraction": probed,
                "ann": (None if index is None else {
                    "kind": index.kind,
                    "nprobe": (self.ann_nprobe if self.ann_nprobe is not None
                               else index.nprobe_default),
                    **index.stats(),
                }),
                "cache": self.cache.stats(),
            }
