"""Command-line interface for training, evaluating, and serving KGE models.

The paper's artifact ships one training script per (framework, model) pair;
this CLI folds them into one entry point and adds an inference surface:

.. code-block:: bash

    # train sparse TransE on a synthetic FB15K-shaped graph at 1% scale
    sptransx train --model transe --dataset FB15K --scale 0.01 \
        --epochs 20 --batch-size 2048 --dim 64 --checkpoint /tmp/transe.npz

    # train the dense baseline on a CSV dump
    sptransx train --model transh --formulation dense --triples-file kg.csv

    # evaluate a checkpoint (model reconstructed from its stored ModelSpec)
    sptransx evaluate --checkpoint /tmp/transe.npz --dataset FB15K --scale 0.01

    # serve the checkpoint over JSON/HTTP and query it
    sptransx serve --checkpoint /tmp/transe.npz --port 8080
    sptransx query --url http://127.0.0.1:8080 --head 12 --relation 3 -k 10

    # list datasets / models / SpMM backends / registry capabilities
    sptransx info
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import Dict, Optional

from repro.baselines import DENSE_MODELS
from repro.data import (
    KGDataset,
    load_triples_file,
    make_dataset_like,
)
from repro.data.catalog import PAPER_DATASETS
from repro.evaluation import evaluate_link_prediction
from repro.models import SPARSE_MODELS
from repro.registry import (
    ModelSpec,
    UnknownModelError,
    build_model,
    registry_summary,
)
from repro.sparse import available_backends
from repro.training import Trainer, TrainingConfig
from repro.training.checkpoint import (
    load_checkpoint,
    model_from_checkpoint,
    restore_into,
    save_checkpoint,
)
from repro.training.trainer import build_optimizer
from repro.utils.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="sptransx", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a KGE model")
    _add_data_arguments(train)
    train.add_argument("--model", default="transe",
                       choices=sorted(set(SPARSE_MODELS) | set(DENSE_MODELS)))
    train.add_argument("--formulation", default="sparse", choices=["sparse", "dense"])
    train.add_argument("--dim", type=int, default=64, help="embedding dimension")
    train.add_argument("--relation-dim", type=int, default=None,
                       help="relation-space dimension (projection models only)")
    train.add_argument("--backend", default=None,
                       help="SpMM backend (sparse models; default scipy)")
    train.add_argument("--dissimilarity", default=None,
                       help="distance function, e.g. L1/L2/torus_L2 "
                            "(models that accept one; default per model)")
    train.add_argument("--epochs", type=int, default=100)
    train.add_argument("--batch-size", type=int, default=32768)
    train.add_argument("--learning-rate", type=float, default=4e-4)
    train.add_argument("--margin", type=float, default=0.5)
    train.add_argument("--optimizer", default="adam", choices=["adam", "sgd", "adagrad"])
    train.add_argument("--sparse-grads", action="store_true",
                       help="row-sparse gradient pipeline: backward and optimizer "
                            "cost scale with the batch instead of the vocabulary "
                            "(exact for sgd/adagrad, lazy SparseAdam-style for adam)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--checkpoint", default=None, help="where to save the trained model")
    train.add_argument("--resume", default=None, help="checkpoint to resume from")
    train.add_argument("--eval", action="store_true",
                       help="run filtered link prediction on the test split after training")
    train.add_argument("--quiet", action="store_true")

    evaluate = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    _add_data_arguments(evaluate)
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.add_argument("--ks", type=int, nargs="+", default=[1, 3, 10])
    evaluate.add_argument("--split", default="test", choices=["test", "valid", "train"])

    serve = sub.add_parser("serve", help="serve a checkpoint over JSON/HTTP")
    _add_data_arguments(serve)
    serve.add_argument("--checkpoint", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="port to bind (0 picks an ephemeral port)")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="LRU entries for materialised top-k answers (0 disables)")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="answer each request with its own scoring call "
                            "instead of micro-batching concurrent queries")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="largest coalesced query batch")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="how long to hold an open batch for more queries")
    serve.add_argument("--filtered", action="store_true",
                       help="load the dataset named by the data arguments and "
                            "install its triples as known positives, enabling "
                            "filtered=true queries")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")

    query = sub.add_parser("query", help="query a running `sptransx serve` endpoint")
    query.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the serving endpoint")
    query.add_argument("--head", type=int, default=None)
    query.add_argument("--relation", type=int, default=None)
    query.add_argument("--tail", type=int, default=None)
    query.add_argument("--nearest", type=int, default=None, metavar="ENTITY",
                       help="embedding-space nearest neighbours of an entity")
    query.add_argument("-k", "--k", type=int, default=10, dest="k")
    query.add_argument("--filtered", action="store_true",
                       help="exclude known positives from the ranking")
    query.add_argument("--threshold", type=float, default=None,
                       help="classify the triple instead of scoring it")
    query.add_argument("--timeout", type=float, default=30.0,
                       help="seconds to wait for the server before giving up")
    query.add_argument("--stats", action="store_true",
                       help="fetch serving statistics instead of querying")

    sub.add_parser("info", help="list datasets, models, and SpMM backends")
    return parser


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="FB15K",
                        help="catalog dataset name to synthesise (ignored with --triples-file)")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="down-scaling factor for the synthetic dataset")
    parser.add_argument("--triples-file", default=None,
                        help="CSV/TSV/TTL file of labelled triples to load instead")
    parser.add_argument("--test-fraction", type=float, default=0.05)
    parser.add_argument("--valid-fraction", type=float, default=0.0)
    parser.add_argument("--data-seed", type=int, default=0)


def _load_dataset(args: argparse.Namespace) -> KGDataset:
    if args.triples_file:
        kg = load_triples_file(args.triples_file)
        if args.test_fraction > 0 or args.valid_fraction > 0:
            kg = kg.split_train_valid_test(args.valid_fraction, args.test_fraction,
                                           rng=args.data_seed)
        return kg
    return make_dataset_like(args.dataset, scale=args.scale, rng=args.data_seed,
                             valid_fraction=args.valid_fraction,
                             test_fraction=args.test_fraction)


def _spec_from_args(args: argparse.Namespace, kg: KGDataset) -> ModelSpec:
    """Translate CLI arguments into the :class:`ModelSpec` to build and save."""
    return ModelSpec(
        model=args.model,
        formulation=args.formulation,
        n_entities=kg.n_entities,
        n_relations=kg.n_relations,
        embedding_dim=args.dim,
        relation_dim=args.relation_dim,
        backend=args.backend,
        dissimilarity=args.dissimilarity,
        sparse_grads=bool(getattr(args, "sparse_grads", False)),
    )


def _build_model(args: argparse.Namespace, kg: KGDataset):
    try:
        return build_model(_spec_from_args(args, kg), rng=args.seed)
    except (UnknownModelError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc


def _command_train(args: argparse.Namespace) -> int:
    if not args.quiet:
        enable_console_logging()
    kg = _load_dataset(args)
    model = _build_model(args, kg)
    config = TrainingConfig(
        epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.learning_rate,
        margin=args.margin, optimizer=args.optimizer, seed=args.seed,
        log_every=0 if args.quiet else max(1, args.epochs // 10),
        sparse_grads=args.sparse_grads,
    )
    optimizer = build_optimizer(config.optimizer, model, config.learning_rate)
    start_epoch = 0
    if args.resume:
        checkpoint = load_checkpoint(args.resume)
        restore_into(checkpoint, model, optimizer)
        start_epoch = checkpoint.epoch
        print(f"resumed from {args.resume} at epoch {start_epoch}")

    trainer = Trainer(model, kg, config, optimizer=optimizer)
    result = trainer.train(epochs=max(args.epochs - start_epoch, 0))

    summary = {
        "dataset": kg.name,
        "model": model.config(),
        "final_loss": result.final_loss,
        "breakdown_s": result.breakdown(),
    }
    print(json.dumps(summary, indent=2, default=float))

    if args.checkpoint:
        path = save_checkpoint(args.checkpoint, model, optimizer,
                               epoch=start_epoch + len(result.epochs),
                               losses=result.losses)
        print(f"checkpoint written to {path}")

    if args.eval and kg.split.n_test > 0:
        metrics = evaluate_link_prediction(model, kg.split.test,
                                           known_triples=kg.known_triples())
        print(json.dumps({"link_prediction": metrics.to_dict()}, indent=2))
    return 0


def _restore_model(checkpoint_path: str):
    """Rebuild a checkpointed model through its stored spec, with CLI-grade errors."""
    checkpoint = load_checkpoint(checkpoint_path)
    try:
        return model_from_checkpoint(checkpoint)
    except (UnknownModelError, ValueError) as exc:
        raise SystemExit(f"cannot reconstruct model from {checkpoint_path}: {exc}") from exc


def _command_evaluate(args: argparse.Namespace) -> int:
    kg = _load_dataset(args)
    model = _restore_model(args.checkpoint)

    split = {"test": kg.split.test, "valid": kg.split.valid, "train": kg.split.train}[args.split]
    if split.shape[0] == 0:
        raise SystemExit(f"the {args.split!r} split is empty; use --test-fraction > 0")
    metrics = evaluate_link_prediction(model, split, known_triples=kg.known_triples(),
                                       ks=args.ks)
    print(json.dumps(metrics.to_dict(), indent=2))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serving import InferenceEngine, make_server

    model = _restore_model(args.checkpoint)
    engine = InferenceEngine(model, cache_size=args.cache_size)
    if args.filtered:
        kg = _load_dataset(args)
        if (kg.n_entities, kg.n_relations) != (model.n_entities, model.n_relations):
            raise SystemExit(
                f"dataset vocabulary ({kg.n_entities} entities, {kg.n_relations} "
                f"relations) does not match the checkpoint ({model.n_entities}, "
                f"{model.n_relations}); filtered serving needs the training data"
            )
        engine.set_known_triples(kg.known_triples())
    server = make_server(engine, host=args.host, port=args.port,
                         coalesce=not args.no_coalesce, max_batch=args.max_batch,
                         max_wait_ms=args.max_wait_ms, verbose=args.verbose)
    print(json.dumps({"serving": server.url,
                      "model": type(model).__name__,
                      "spec": engine.spec().to_dict(),
                      "coalesce": not args.no_coalesce,
                      "filtered": args.filtered}), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _http_json(url: str, payload: Optional[Dict] = None,
               timeout: float = 30.0) -> Dict:
    """One JSON request against the serving endpoint (POST when payload given)."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data,
                                     headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except TimeoutError as exc:
        raise SystemExit(f"request to {url} timed out after {timeout:g}s") from exc
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
        except Exception:  # noqa: BLE001 — body may not be JSON
            detail = str(exc)
        raise SystemExit(f"server rejected the request: {detail}") from exc
    except urllib.error.URLError as exc:
        raise SystemExit(f"cannot reach {url}: {exc.reason}") from exc


def _reject_query_flags(args: argparse.Namespace, mode: str, *flags: str) -> None:
    """Fail loudly when a flag that this query mode ignores was supplied."""
    supplied = {"--filtered": args.filtered,
                "--threshold": args.threshold is not None,
                "--head": args.head is not None,
                "--relation": args.relation is not None,
                "--tail": args.tail is not None,
                "--nearest": args.nearest is not None}
    ignored = [flag for flag in flags if supplied[flag]]
    if ignored:
        raise SystemExit(f"{', '.join(ignored)} does not apply to a {mode} query")


def _command_query(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    timeout = args.timeout
    if args.stats:
        _reject_query_flags(args, "--stats", "--filtered", "--threshold",
                            "--head", "--relation", "--tail", "--nearest")
        print(json.dumps(_http_json(base + "/v1/stats", timeout=timeout), indent=2))
        return 0
    if args.nearest is not None:
        _reject_query_flags(args, "--nearest", "--filtered", "--threshold",
                            "--head", "--relation", "--tail")
        out = _http_json(base + "/v1/nearest",
                         {"entity": args.nearest, "k": args.k}, timeout=timeout)
        print(json.dumps(out, indent=2))
        return 0
    have = {name for name in ("head", "relation", "tail")
            if getattr(args, name) is not None}
    if have == {"head", "relation", "tail"}:
        _reject_query_flags(args, "score/classify", "--filtered")
        triple = [[args.head, args.relation, args.tail]]
        if args.threshold is not None:
            out = _http_json(base + "/v1/classify",
                             {"triples": triple, "threshold": args.threshold},
                             timeout=timeout)
        else:
            out = _http_json(base + "/v1/score", {"triples": triple},
                             timeout=timeout)
    elif have == {"head", "relation"}:
        _reject_query_flags(args, "top-k", "--threshold")
        out = _http_json(base + "/v1/top_k_tails",
                         {"head": args.head, "relation": args.relation,
                          "k": args.k, "filtered": args.filtered},
                         timeout=timeout)
    elif have == {"relation", "tail"}:
        _reject_query_flags(args, "top-k", "--threshold")
        out = _http_json(base + "/v1/top_k_heads",
                         {"tail": args.tail, "relation": args.relation,
                          "k": args.k, "filtered": args.filtered},
                         timeout=timeout)
    else:
        raise SystemExit(
            "specify --head and --relation (top-k tails), --relation and --tail "
            "(top-k heads), all three (score/classify), --nearest ENTITY "
            "(embedding neighbours), or --stats"
        )
    print(json.dumps(out, indent=2))
    return 0


def _command_info(_: argparse.Namespace) -> int:
    info = {
        "datasets": {name: {"entities": spec.n_entities, "relations": spec.n_relations,
                            "triples": spec.n_training_triples}
                     for name, spec in PAPER_DATASETS.items()},
        "sparse_models": sorted(SPARSE_MODELS),
        "dense_models": sorted(DENSE_MODELS),
        "spmm_backends": available_backends(),
        "registry": registry_summary(),
    }
    print(json.dumps(info, indent=2))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "train": _command_train,
        "evaluate": _command_evaluate,
        "serve": _command_serve,
        "query": _command_query,
        "info": _command_info,
    }
    handler = commands.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
