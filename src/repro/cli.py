"""Command-line interface for training and evaluating KGE models.

The paper's artifact ships one training script per (framework, model) pair;
this CLI folds them into one entry point:

.. code-block:: bash

    # train sparse TransE on a synthetic FB15K-shaped graph at 1% scale
    sptransx train --model transe --dataset FB15K --scale 0.01 \
        --epochs 20 --batch-size 2048 --dim 64 --checkpoint /tmp/transe.npz

    # train the dense baseline on a CSV dump
    sptransx train --model transh --formulation dense --triples-file kg.csv

    # evaluate a checkpoint
    sptransx evaluate --checkpoint /tmp/transe.npz --dataset FB15K --scale 0.01

    # list datasets / models / SpMM backends
    sptransx info
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.baselines import DENSE_MODELS
from repro.data import (
    KGDataset,
    load_triples_file,
    make_dataset_like,
)
from repro.data.catalog import PAPER_DATASETS
from repro.evaluation import evaluate_link_prediction
from repro.models import SPARSE_MODELS
from repro.sparse import available_backends
from repro.training import Trainer, TrainingConfig
from repro.training.checkpoint import load_checkpoint, restore_into, save_checkpoint
from repro.training.trainer import build_optimizer
from repro.utils.logging import enable_console_logging

#: Models that accept a ``relation_dim`` keyword.
_PROJECTION_MODELS = {"transr"}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="sptransx", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a KGE model")
    _add_data_arguments(train)
    train.add_argument("--model", default="transe",
                       choices=sorted(set(SPARSE_MODELS) | set(DENSE_MODELS)))
    train.add_argument("--formulation", default="sparse", choices=["sparse", "dense"])
    train.add_argument("--dim", type=int, default=64, help="embedding dimension")
    train.add_argument("--relation-dim", type=int, default=None,
                       help="relation-space dimension (TransR only)")
    train.add_argument("--backend", default="scipy", help="SpMM backend (sparse models)")
    train.add_argument("--epochs", type=int, default=100)
    train.add_argument("--batch-size", type=int, default=32768)
    train.add_argument("--learning-rate", type=float, default=4e-4)
    train.add_argument("--margin", type=float, default=0.5)
    train.add_argument("--optimizer", default="adam", choices=["adam", "sgd", "adagrad"])
    train.add_argument("--sparse-grads", action="store_true",
                       help="row-sparse gradient pipeline: backward and optimizer "
                            "cost scale with the batch instead of the vocabulary "
                            "(exact for sgd/adagrad, lazy SparseAdam-style for adam)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--checkpoint", default=None, help="where to save the trained model")
    train.add_argument("--resume", default=None, help="checkpoint to resume from")
    train.add_argument("--eval", action="store_true",
                       help="run filtered link prediction on the test split after training")
    train.add_argument("--quiet", action="store_true")

    evaluate = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    _add_data_arguments(evaluate)
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.add_argument("--ks", type=int, nargs="+", default=[1, 3, 10])
    evaluate.add_argument("--split", default="test", choices=["test", "valid", "train"])

    sub.add_parser("info", help="list datasets, models, and SpMM backends")
    return parser


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="FB15K",
                        help="catalog dataset name to synthesise (ignored with --triples-file)")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="down-scaling factor for the synthetic dataset")
    parser.add_argument("--triples-file", default=None,
                        help="CSV/TSV/TTL file of labelled triples to load instead")
    parser.add_argument("--test-fraction", type=float, default=0.05)
    parser.add_argument("--valid-fraction", type=float, default=0.0)
    parser.add_argument("--data-seed", type=int, default=0)


def _load_dataset(args: argparse.Namespace) -> KGDataset:
    if args.triples_file:
        kg = load_triples_file(args.triples_file)
        if args.test_fraction > 0 or args.valid_fraction > 0:
            kg = kg.split_train_valid_test(args.valid_fraction, args.test_fraction,
                                           rng=args.data_seed)
        return kg
    return make_dataset_like(args.dataset, scale=args.scale, rng=args.data_seed,
                             valid_fraction=args.valid_fraction,
                             test_fraction=args.test_fraction)


def _build_model(args: argparse.Namespace, kg: KGDataset):
    registry = SPARSE_MODELS if args.formulation == "sparse" else DENSE_MODELS
    if args.model not in registry:
        raise SystemExit(
            f"model {args.model!r} has no {args.formulation} implementation; "
            f"available: {sorted(registry)}"
        )
    kwargs = {}
    if args.model in _PROJECTION_MODELS and args.relation_dim is not None:
        kwargs["relation_dim"] = args.relation_dim
    if args.formulation == "sparse" and args.model in ("transe", "transr", "transh", "toruse"):
        kwargs["backend"] = args.backend
    cls = registry[args.model]
    return cls(kg.n_entities, kg.n_relations, args.dim, rng=args.seed, **kwargs)


def _command_train(args: argparse.Namespace) -> int:
    if not args.quiet:
        enable_console_logging()
    kg = _load_dataset(args)
    model = _build_model(args, kg)
    config = TrainingConfig(
        epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.learning_rate,
        margin=args.margin, optimizer=args.optimizer, seed=args.seed,
        log_every=0 if args.quiet else max(1, args.epochs // 10),
        sparse_grads=args.sparse_grads,
    )
    optimizer = build_optimizer(config.optimizer, model, config.learning_rate)
    start_epoch = 0
    if args.resume:
        checkpoint = load_checkpoint(args.resume)
        restore_into(checkpoint, model, optimizer)
        start_epoch = checkpoint.epoch
        print(f"resumed from {args.resume} at epoch {start_epoch}")

    trainer = Trainer(model, kg, config, optimizer=optimizer)
    result = trainer.train(epochs=max(args.epochs - start_epoch, 0))

    summary = {
        "dataset": kg.name,
        "model": model.config(),
        "final_loss": result.final_loss,
        "breakdown_s": result.breakdown(),
    }
    print(json.dumps(summary, indent=2, default=float))

    if args.checkpoint:
        path = save_checkpoint(args.checkpoint, model, optimizer,
                               epoch=start_epoch + len(result.epochs),
                               losses=result.losses)
        print(f"checkpoint written to {path}")

    if args.eval and kg.split.n_test > 0:
        metrics = evaluate_link_prediction(model, kg.split.test,
                                           known_triples=kg.known_triples())
        print(json.dumps({"link_prediction": metrics.to_dict()}, indent=2))
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    kg = _load_dataset(args)
    checkpoint = load_checkpoint(args.checkpoint)
    saved = checkpoint.metadata.get("model_config", {})
    model_name = str(saved.get("model", "")).lower()
    registry = {**{f"sp{k}": v for k, v in SPARSE_MODELS.items()},
                **{f"dense{k}": v for k, v in DENSE_MODELS.items()}}
    cls = registry.get(model_name)
    if cls is None:
        raise SystemExit(f"cannot reconstruct model class {saved.get('model')!r}")
    kwargs = {}
    if "relation_dim" in saved and saved.get("relation_dim") != saved.get("embedding_dim"):
        kwargs["relation_dim"] = int(saved["relation_dim"])
    model = cls(int(saved["n_entities"]), int(saved["n_relations"]),
                int(saved["embedding_dim"]), rng=0, **kwargs)
    restore_into(checkpoint, model)

    split = {"test": kg.split.test, "valid": kg.split.valid, "train": kg.split.train}[args.split]
    if split.shape[0] == 0:
        raise SystemExit(f"the {args.split!r} split is empty; use --test-fraction > 0")
    metrics = evaluate_link_prediction(model, split, known_triples=kg.known_triples(),
                                       ks=args.ks)
    print(json.dumps(metrics.to_dict(), indent=2))
    return 0


def _command_info(_: argparse.Namespace) -> int:
    info = {
        "datasets": {name: {"entities": spec.n_entities, "relations": spec.n_relations,
                            "triples": spec.n_training_triples}
                     for name, spec in PAPER_DATASETS.items()},
        "sparse_models": sorted(SPARSE_MODELS),
        "dense_models": sorted(DENSE_MODELS),
        "spmm_backends": available_backends(),
    }
    print(json.dumps(info, indent=2))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "train":
        return _command_train(args)
    if args.command == "evaluate":
        return _command_evaluate(args)
    if args.command == "info":
        return _command_info(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
