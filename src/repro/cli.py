"""Command-line interface for running, training, evaluating, and serving KGE models.

The paper's artifact ships one training script per (framework, model) pair;
this CLI folds them into one entry point around the declarative experiment
API (:mod:`repro.experiment`):

.. code-block:: bash

    # one reproducible end-to-end run from a single JSON artifact
    sptransx run experiment.json --artifacts runs/transe-fb15k

    # write the spec an equivalent `train` invocation would execute
    sptransx export-spec --model transe --dataset FB15K --scale 0.01 \
        --epochs 20 --dim 64 --output experiment.json

    # classic imperative surface (thin shims over the same API)
    sptransx train --model transe --dataset FB15K --scale 0.01 \
        --epochs 20 --batch-size 2048 --dim 64 --checkpoint /tmp/transe.npz
    sptransx evaluate --checkpoint /tmp/transe.npz --dataset FB15K --scale 0.01

    # serve a checkpoint *or* an artifact directory over JSON/HTTP
    sptransx serve --checkpoint runs/transe-fb15k --port 8080
    sptransx query --url http://127.0.0.1:8080 --head 12 --relation 3 -k 10

    # list datasets / models / SpMM backends / registry capabilities
    sptransx info

    # enforce the repo's cross-cutting invariants statically (CI gate)
    sptransx check --format json
    sptransx check --diff origin/main   # only files changed since the ref
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import Dict, Optional

from repro.baselines import DENSE_MODELS
from repro.data.catalog import PAPER_DATASETS
from repro.data.negative_sampling import SAMPLER_STRATEGIES
from repro.experiment import (
    DATA_GENERATORS,
    DataSpec,
    EvalSpec,
    Experiment,
    ExperimentSpec,
)
from repro.models import SPARSE_MODELS
from repro.registry import (
    ModelSpec,
    UnknownModelError,
    registry_summary,
)
from repro.sparse import available_backends
from repro.training import TrainingConfig
from repro.training.checkpoint import load_checkpoint, model_from_checkpoint
from repro.utils.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="sptransx", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute an experiment spec end to end")
    run.add_argument("spec", help="path to an ExperimentSpec JSON file")
    run.add_argument("--artifacts", default=None,
                     help="artifact directory to write "
                          "(default: runs/<experiment name>)")
    run.add_argument("--resume", default=None,
                     help="checkpoint file or artifact directory to resume from")
    run.add_argument("--storage", default=None, choices=["memory", "sqlite"],
                     help="override the spec's data.storage: 'sqlite' streams "
                          "shuffled batches from an on-disk store (bounded RSS)")
    run.add_argument("--storage-path", default=None,
                     help="override the SQLite database file backing --storage sqlite")
    run.add_argument("--workers", type=int, default=None,
                     help="override training.num_workers: data-parallel "
                          "processes exchanging row-sparse gradients")
    run.add_argument("--partitions", type=int, default=None,
                     help="override model.partitions: shard the entity table "
                          "into P LRU-paged buckets (train, checkpoint, and "
                          "serve without ever materializing the full table)")
    run.add_argument("--backend", default=None,
                     help="override model.backend: SpMM backend for sparse "
                          "models (scipy, numpy, fused, compiled)")
    run.add_argument("--quantize", default=None, choices=["fp16", "int8"],
                     help="after training, also write quantized entity bucket "
                          "files into the artifact (partitioned models only); "
                          "serve them with InferenceEngine.from_artifact("
                          "quantized=...) at 2-4x lower resident memory")
    run.add_argument("--ann", default=None, choices=["ivf"],
                     help="after training, also build an ANN index over the "
                          "partitioned entity table (per-bucket IVF k-means "
                          "centroids + exact rescoring); serve it with "
                          "InferenceEngine.from_artifact(ann=...) for "
                          "sublinear top-k at million-entity vocabularies")
    run.add_argument("--nprobe", type=int, default=None,
                     help="pin how many IVF clusters a query probes (default: "
                          "auto-chosen at build time for ~0.95 recall@10)")
    run.add_argument("--sanitize", action="store_true",
                     help="run training under the autograd sanitizer: every "
                          "tape op is checked for NaN/Inf outputs, silent "
                          "dtype widening, and gradient/output shape "
                          "agreement (the failing op is named)")
    run.add_argument("--quiet", action="store_true")

    export = sub.add_parser(
        "export-spec",
        help="write the ExperimentSpec an equivalent `train` invocation would run")
    _add_experiment_arguments(export)
    export.add_argument("--name", default=None,
                        help="experiment name (default: <model>-<dataset>)")
    export.add_argument("--tags", nargs="*", default=[],
                        help="free-form labels recorded in the spec")
    export.add_argument("--output", default=None,
                        help="file to write (default: stdout)")

    train = sub.add_parser("train", help="train a KGE model")
    _add_experiment_arguments(train)
    train.add_argument("--checkpoint", default=None, help="where to save the trained model")
    train.add_argument("--resume", default=None, help="checkpoint to resume from")
    train.add_argument("--eval", action="store_true",
                       help="run filtered link prediction on the test split after training")
    train.add_argument("--quiet", action="store_true")

    evaluate = sub.add_parser("evaluate", help="evaluate a saved checkpoint")
    _add_data_arguments(evaluate)
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.add_argument("--ks", type=int, nargs="+", default=[1, 3, 10])
    evaluate.add_argument("--split", default="test", choices=["test", "valid", "train"])

    serve = sub.add_parser("serve", help="serve a checkpoint over JSON/HTTP")
    _add_data_arguments(serve)
    serve.add_argument("--checkpoint", required=True,
                       help="checkpoint file or `sptransx run` artifact directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="port to bind (0 picks an ephemeral port)")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="LRU entries for materialised top-k answers (0 disables)")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="answer each request with its own scoring call "
                            "instead of micro-batching concurrent queries")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="largest coalesced query batch")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="how long to hold an open batch for more queries")
    serve.add_argument("--ann", default="auto", choices=["auto", "ivf", "off"],
                       help="ANN index policy for artifact directories: 'auto' "
                            "uses index/ when present, 'ivf' requires it, "
                            "'off' serves exactly (default auto)")
    serve.add_argument("--nprobe", type=int, default=None,
                       help="override the index's default probe width "
                            "(more clusters probed = higher recall, slower)")
    serve.add_argument("--filtered", action="store_true",
                       help="load the dataset named by the data arguments and "
                            "install its triples as known positives, enabling "
                            "filtered=true queries")
    serve.add_argument("--workers", type=int, default=0,
                       help="fork this many engine worker processes behind an "
                            "asyncio front-end with deadline-aware batching "
                            "and SLO admission control (0 = the threaded "
                            "in-process tier; default 0)")
    serve.add_argument("--deadline-ms", type=float, default=50.0,
                       help="default per-request deadline for the pool tier; "
                            "requests predicted to finish later are shed with "
                            "503 + Retry-After (payloads may override per "
                            "request via \"deadline_ms\")")
    serve.add_argument("--no-admission", action="store_true",
                       help="pool tier only: accept every request instead of "
                            "shedding predicted deadline busts (baseline for "
                            "overload measurements)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")

    query = sub.add_parser("query", help="query a running `sptransx serve` endpoint")
    query.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the serving endpoint")
    query.add_argument("--head", type=int, default=None)
    query.add_argument("--relation", type=int, default=None)
    query.add_argument("--tail", type=int, default=None)
    query.add_argument("--nearest", type=int, default=None, metavar="ENTITY",
                       help="embedding-space nearest neighbours of an entity")
    query.add_argument("-k", "--k", type=int, default=10, dest="k")
    query.add_argument("--filtered", action="store_true",
                       help="exclude known positives from the ranking")
    query.add_argument("--ann", default=None, choices=["on", "off"],
                       help="per-request ANN override for top-k queries "
                            "('off' forces the exact path even when the "
                            "server holds an index)")
    query.add_argument("--nprobe", type=int, default=None,
                       help="per-request IVF probe width (top-k queries only)")
    query.add_argument("--threshold", type=float, default=None,
                       help="classify the triple instead of scoring it")
    query.add_argument("--timeout", type=float, default=30.0,
                       help="seconds to wait for the server before giving up")
    query.add_argument("--stats", action="store_true",
                       help="fetch serving statistics instead of querying")

    sub.add_parser("info", help="list datasets, models, and SpMM backends")

    check = sub.add_parser(
        "check",
        help="run the repo's invariant checkers (static analysis) over src/")
    check.add_argument("paths", nargs="*",
                       help="repo-relative files to restrict the check to "
                            "(default: the whole source tree)")
    check.add_argument("--format", default="text",
                       choices=["text", "json", "github"],
                       dest="format_", metavar="{text,json,github}",
                       help="report format (json for machines, github for "
                            "Actions inline annotations)")
    check.add_argument("--diff", default=None, metavar="REF",
                       help="only report findings in files changed since the "
                            "given git ref (keeps the gate fast on large trees)")
    check.add_argument("--rules", default=None,
                       help="comma-separated rule ids to run (default: all)")
    check.add_argument("--list-rules", action="store_true",
                       help="print every registered rule id and exit")
    check.add_argument("--root", default=None,
                       help="repo root to analyse (default: auto-detected)")
    return parser


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="FB15K",
                        help="catalog dataset name to synthesise (ignored with --triples-file)")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="down-scaling factor for the synthetic dataset")
    parser.add_argument("--triples-file", default=None,
                        help="CSV/TSV/TTL file of labelled triples to load instead")
    parser.add_argument("--generator", default="zipf", choices=list(DATA_GENERATORS),
                        help="synthetic generator: degree-skewed 'zipf' (timing "
                             "workloads) or 'learnable' (accuracy workloads)")
    parser.add_argument("--test-fraction", type=float, default=0.05)
    parser.add_argument("--valid-fraction", type=float, default=0.0)
    parser.add_argument("--data-seed", type=int, default=0)
    parser.add_argument("--storage", default="memory", choices=["memory", "sqlite"],
                        help="train from in-memory arrays or stream shuffled "
                             "batches out of an on-disk SQLite store "
                             "(out-of-core graphs; bounded peak RSS)")
    parser.add_argument("--storage-path", default=None,
                        help="SQLite database file for --storage sqlite "
                             "(default: data.sqlite in the artifact directory, "
                             "or a temporary file)")


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """Data + model + training arguments shared by ``train`` and ``export-spec``."""
    _add_data_arguments(parser)
    parser.add_argument("--model", default="transe",
                        choices=sorted(set(SPARSE_MODELS) | set(DENSE_MODELS)))
    parser.add_argument("--formulation", default="sparse", choices=["sparse", "dense"])
    parser.add_argument("--dim", type=int, default=64, help="embedding dimension")
    parser.add_argument("--relation-dim", type=int, default=None,
                        help="relation-space dimension (projection models only)")
    parser.add_argument("--backend", default=None,
                        help="SpMM backend (sparse models; default scipy)")
    parser.add_argument("--dissimilarity", default=None,
                        help="distance function, e.g. L1/L2/torus_L2 "
                             "(models that accept one; default per model)")
    parser.add_argument("--epochs", type=int, default=100)
    parser.add_argument("--batch-size", type=int, default=32768)
    parser.add_argument("--learning-rate", type=float, default=4e-4)
    parser.add_argument("--margin", type=float, default=0.5)
    parser.add_argument("--optimizer", default="adam", choices=["adam", "sgd", "adagrad"])
    parser.add_argument("--negative-sampler", default="uniform",
                        choices=list(SAMPLER_STRATEGIES),
                        help="corruption strategy (bernoulli = relation-aware)")
    parser.add_argument("--num-negatives", type=int, default=1,
                        help="negatives contrasted per positive each epoch")
    parser.add_argument("--sparse-grads", action="store_true",
                        help="row-sparse gradient pipeline: backward and optimizer "
                             "cost scale with the batch instead of the vocabulary "
                             "(exact for sgd/adagrad, lazy SparseAdam-style for adam)")
    parser.add_argument("--partitions", type=int, default=1,
                        help="shard the entity table into P contiguous range "
                             "buckets paged through an LRU-bounded resident set; with "
                             "--storage sqlite training runs PBG-style "
                             "bucket-pair episodes so a step touches at most "
                             "two buckets (implies row-sparse gradients)")
    parser.add_argument("--workers", type=int, default=1,
                        help="data-parallel worker processes: each global batch "
                             "is sharded across N replicas that exchange "
                             "row-sparse gradients and stay in lockstep with "
                             "the single-worker trajectory")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sanitize", action="store_true",
                        help="train under the autograd sanitizer (NaN/Inf, "
                             "dtype-widening, and gradient-shape checks on "
                             "every tape op)")


# --------------------------------------------------------------------- #
# args -> spec translation (the one place CLI flags meet the experiment API)
# --------------------------------------------------------------------- #
def _data_spec_from_args(args: argparse.Namespace) -> DataSpec:
    try:
        return DataSpec(
            dataset=args.dataset,
            scale=args.scale,
            triples_file=args.triples_file,
            generator=getattr(args, "generator", "zipf"),
            valid_fraction=args.valid_fraction,
            test_fraction=args.test_fraction,
            seed=args.data_seed,
            negative_sampler=getattr(args, "negative_sampler", "uniform"),
            num_negatives=getattr(args, "num_negatives", 1),
            storage=getattr(args, "storage", "memory"),
            storage_path=getattr(args, "storage_path", None),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _experiment_spec_from_args(args: argparse.Namespace,
                               eval_spec: Optional[EvalSpec] = None,
                               name: Optional[str] = None):
    """Build the :class:`ExperimentSpec` a ``train``-shaped invocation describes.

    Returns ``(spec, dataset_or_None)``: file-backed data must be loaded here
    to pin the vocabulary sizes into the spec, and that already-materialised
    dataset is handed back so the runner does not load the file twice.
    """
    data = _data_spec_from_args(args)
    kg = None
    sizes = data.vocab_sizes()
    if sizes is None:
        kg = data.materialize()
        sizes = (kg.n_entities, kg.n_relations)
    try:
        partitions = getattr(args, "partitions", 1)
        partitions = 1 if partitions is None else int(partitions)
        if partitions < 1:
            raise SystemExit(f"--partitions must be >= 1, got {partitions}")
        model = ModelSpec(
            model=args.model,
            formulation=args.formulation,
            n_entities=sizes[0],
            n_relations=sizes[1],
            embedding_dim=args.dim,
            relation_dim=args.relation_dim,
            backend=args.backend,
            dissimilarity=args.dissimilarity,
            sparse_grads=bool(args.sparse_grads) or partitions > 1,
            partitions=partitions if partitions > 1 else None,
        )
        training = TrainingConfig(
            epochs=args.epochs, batch_size=args.batch_size,
            learning_rate=args.learning_rate, margin=args.margin,
            optimizer=args.optimizer, seed=args.seed,
            log_every=0 if getattr(args, "quiet", True) else max(1, args.epochs // 10),
            sparse_grads=args.sparse_grads,
            num_workers=getattr(args, "workers", 1),
            sanitize=getattr(args, "sanitize", False),
        )
        spec = ExperimentSpec(
            name=name if name is not None else f"{args.model}-{args.dataset.lower()}",
            data=data,
            model=model,
            training=training,
            eval=eval_spec if eval_spec is not None else EvalSpec(protocols=()),
            seed=args.seed,
            tags=tuple(getattr(args, "tags", ())),
        )
        return spec, kg
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _apply_run_overrides(spec: ExperimentSpec,
                         args: argparse.Namespace) -> ExperimentSpec:
    """Apply ``run``'s --storage/--storage-path/--workers flags over the spec."""
    import dataclasses

    data_overrides = {}
    if args.storage is not None:
        data_overrides["storage"] = args.storage
    if args.storage_path is not None:
        data_overrides["storage_path"] = args.storage_path
    if data_overrides:
        spec = spec.replace(data=dataclasses.replace(spec.data, **data_overrides))
    if args.workers is not None:
        spec = spec.replace(training=spec.training.replace(num_workers=args.workers))
    if getattr(args, "partitions", None) is not None:
        partitions = int(args.partitions)
        if partitions < 1:
            raise ValueError(f"--partitions must be >= 1, got {partitions}")
        spec = spec.replace(model=spec.model.replace(
            partitions=partitions if partitions > 1 else None,
            sparse_grads=spec.model.sparse_grads or partitions > 1))
    if getattr(args, "backend", None) is not None:
        spec = spec.replace(model=spec.model.replace(backend=args.backend))
    if getattr(args, "sanitize", False):
        spec = spec.replace(training=spec.training.replace(sanitize=True))
    if getattr(args, "ann", None) is not None:
        spec = spec.replace(model=spec.model.replace(ann=args.ann))
    if getattr(args, "nprobe", None) is not None:
        spec = spec.replace(model=spec.model.replace(nprobe=int(args.nprobe)))
    return spec


# --------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------- #
def _command_run(args: argparse.Namespace) -> int:
    if not args.quiet:
        enable_console_logging()
    try:
        spec = ExperimentSpec.from_file(args.spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load experiment spec {args.spec}: {exc}") from exc
    try:
        spec = _apply_run_overrides(spec, args)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    artifact_dir = args.artifacts if args.artifacts else f"runs/{spec.name}"
    try:
        result = Experiment(spec, artifact_dir=artifact_dir,
                            resume=args.resume).run()
    except (UnknownModelError, ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc)) from exc
    if getattr(args, "quantize", None):
        from repro.training.checkpoint import save_weight_files

        try:
            save_weight_files(artifact_dir, result.model, quantize=args.quantize)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    print(json.dumps({"experiment": spec.name,
                      "artifacts": artifact_dir,
                      "dataset": result.dataset_name,
                      "model": result.model.config(),
                      "quantized": getattr(args, "quantize", None),
                      "metrics": result.metrics},
                     indent=2, default=float))
    return 0


def _command_export_spec(args: argparse.Namespace) -> int:
    spec, _ = _experiment_spec_from_args(args, eval_spec=EvalSpec(),
                                         name=args.name)
    if args.output:
        spec.to_file(args.output)
        print(f"spec written to {args.output}")
    else:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return 0


def _command_train(args: argparse.Namespace) -> int:
    if not args.quiet:
        enable_console_logging()
    want_eval = args.eval and (args.test_fraction > 0)
    eval_spec = EvalSpec(protocols=("link_prediction",) if want_eval else ())
    spec, dataset = _experiment_spec_from_args(args, eval_spec=eval_spec)
    try:
        result = Experiment(spec, checkpoint_path=args.checkpoint,
                            resume=args.resume, dataset=dataset).run()
    except (UnknownModelError, ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc)) from exc

    summary = {
        "dataset": result.dataset_name,
        "model": result.model.config(),
        "final_loss": result.training.final_loss,
        "breakdown_s": result.training.breakdown(),
    }
    print(json.dumps(summary, indent=2, default=float))
    if args.checkpoint:
        print(f"checkpoint written to {args.checkpoint}")
    if want_eval:
        report = result.report("link_prediction")
        print(json.dumps({"link_prediction": report.metrics}, indent=2))
    return 0


def _restore_model(checkpoint_path: str):
    """Rebuild a checkpointed model through its stored spec, with CLI-grade errors."""
    try:
        checkpoint = load_checkpoint(checkpoint_path)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from exc
    try:
        return model_from_checkpoint(checkpoint)
    except (UnknownModelError, ValueError) as exc:
        raise SystemExit(f"cannot reconstruct model from {checkpoint_path}: {exc}") from exc


def _command_evaluate(args: argparse.Namespace) -> int:
    kg = _data_spec_from_args(args).materialize()
    model = _restore_model(args.checkpoint)
    try:
        eval_spec = EvalSpec(protocols=("link_prediction",), ks=tuple(args.ks),
                             split=args.split)
        [evaluator] = eval_spec.build_evaluators()
        report = evaluator.run(model, kg)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    print(json.dumps(report.metrics, indent=2))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import os

    from repro.serving import InferenceEngine, make_server

    if args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    if args.workers > 0:
        return _serve_pool(args)
    if os.path.isdir(args.checkpoint):
        # Artifact directories are self-contained: the stored spec's own data
        # section backs the filtered protocol, so the CLI data flags (which
        # default to a different generator) cannot silently install the wrong
        # filter set.
        try:
            engine = InferenceEngine.from_artifact(args.checkpoint,
                                                   filtered=args.filtered,
                                                   cache_size=args.cache_size,
                                                   ann=args.ann,
                                                   nprobe=args.nprobe)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(f"cannot serve artifact {args.checkpoint}: {exc}") from exc
        model = engine.model
    else:
        if args.ann not in ("auto", "off"):
            raise SystemExit(
                f"--ann {args.ann} needs an artifact directory (indexes live "
                f"next to the weight files), got checkpoint {args.checkpoint}")
        model = _restore_model(args.checkpoint)
        engine = InferenceEngine(model, cache_size=args.cache_size)
        if args.filtered:
            kg = _data_spec_from_args(args).materialize()
            if (kg.n_entities, kg.n_relations) != (model.n_entities, model.n_relations):
                raise SystemExit(
                    f"dataset vocabulary ({kg.n_entities} entities, {kg.n_relations} "
                    f"relations) does not match the checkpoint ({model.n_entities}, "
                    f"{model.n_relations}); filtered serving needs the training data"
                )
            engine.set_known_triples(kg.known_triples())
    server = make_server(engine, host=args.host, port=args.port,
                         coalesce=not args.no_coalesce, max_batch=args.max_batch,
                         max_wait_ms=args.max_wait_ms, verbose=args.verbose)
    print(json.dumps({"serving": server.url,
                      "model": type(model).__name__,
                      "spec": engine.spec().to_dict(),
                      "coalesce": not args.no_coalesce,
                      "filtered": args.filtered,
                      "ann": engine.ann_index is not None}), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _serve_pool(args: argparse.Namespace) -> int:
    """``sptransx serve --workers N``: the asyncio + forked-pool tier.

    The engine factory runs *inside* each forked worker, so every worker
    memory-maps the same artifact weight/index files (one page-cache copy)
    instead of inheriting or pickling a parent-side model.
    """
    import os

    from repro.serving import AsyncInferenceServer, InferenceEngine

    checkpoint, filtered = args.checkpoint, args.filtered
    cache_size, ann, nprobe = args.cache_size, args.ann, args.nprobe
    if os.path.isdir(checkpoint):
        def engine_factory() -> InferenceEngine:
            return InferenceEngine.from_artifact(
                checkpoint, filtered=filtered, cache_size=cache_size,
                mmap="auto", ann=ann, nprobe=nprobe)
    else:
        if ann not in ("auto", "off"):
            raise SystemExit(
                f"--ann {ann} needs an artifact directory (indexes live "
                f"next to the weight files), got checkpoint {checkpoint}")
        data_spec = _data_spec_from_args(args) if filtered else None

        def engine_factory() -> InferenceEngine:
            engine = InferenceEngine(_restore_model(checkpoint),
                                     cache_size=cache_size)
            if data_spec is not None:
                engine.set_known_triples(
                    data_spec.materialize().known_triples())
            return engine

    try:
        server = AsyncInferenceServer(
            engine_factory, workers=args.workers, host=args.host,
            port=args.port, deadline_ms=args.deadline_ms,
            max_batch=args.max_batch, admission=not args.no_admission,
            verbose=args.verbose)
    except (RuntimeError, ValueError, FileNotFoundError, TimeoutError) as exc:
        raise SystemExit(f"cannot start worker pool: {exc}") from exc

    def on_started() -> None:
        print(json.dumps({"serving": server.url,
                          "mode": "pool",
                          "workers": args.workers,
                          "deadline_ms": args.deadline_ms,
                          "admission": not args.no_admission,
                          "model": server.meta.get("model"),
                          "spec": server.meta.get("spec"),
                          "filtered": filtered}), flush=True)

    try:
        server.serve_forever(on_started=on_started)
    except KeyboardInterrupt:
        pass
    finally:
        server.pool.close()
    return 0


def _http_json(url: str, payload: Optional[Dict] = None,
               timeout: float = 30.0) -> Dict:
    """One JSON request against the serving endpoint (POST when payload given)."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data,
                                     headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except TimeoutError as exc:
        raise SystemExit(f"request to {url} timed out after {timeout:g}s") from exc
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
        except Exception:  # noqa: BLE001 — body may not be JSON
            detail = str(exc)
        raise SystemExit(f"server rejected the request: {detail}") from exc
    except urllib.error.URLError as exc:
        raise SystemExit(f"cannot reach {url}: {exc.reason}") from exc


def _reject_query_flags(args: argparse.Namespace, mode: str, *flags: str) -> None:
    """Fail loudly when a flag that this query mode ignores was supplied."""
    supplied = {"--filtered": args.filtered,
                "--threshold": args.threshold is not None,
                "--head": args.head is not None,
                "--relation": args.relation is not None,
                "--tail": args.tail is not None,
                "--nearest": args.nearest is not None,
                "--ann": args.ann is not None,
                "--nprobe": args.nprobe is not None}
    ignored = [flag for flag in flags if supplied[flag]]
    if ignored:
        raise SystemExit(f"{', '.join(ignored)} does not apply to a {mode} query")


def _query_ann_fields(args: argparse.Namespace) -> Dict:
    """Optional ANN override fields for a top-k request payload."""
    fields: Dict = {}
    if args.ann is not None:
        fields["ann"] = args.ann == "on"
    if args.nprobe is not None:
        fields["nprobe"] = int(args.nprobe)
    return fields


def _command_query(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    timeout = args.timeout
    if args.stats:
        _reject_query_flags(args, "--stats", "--filtered", "--threshold",
                            "--head", "--relation", "--tail", "--nearest",
                            "--ann", "--nprobe")
        print(json.dumps(_http_json(base + "/v1/stats", timeout=timeout), indent=2))
        return 0
    if args.nearest is not None:
        _reject_query_flags(args, "--nearest", "--filtered", "--threshold",
                            "--head", "--relation", "--tail",
                            "--ann", "--nprobe")
        out = _http_json(base + "/v1/nearest",
                         {"entity": args.nearest, "k": args.k}, timeout=timeout)
        print(json.dumps(out, indent=2))
        return 0
    have = {name for name in ("head", "relation", "tail")
            if getattr(args, name) is not None}
    if have == {"head", "relation", "tail"}:
        _reject_query_flags(args, "score/classify", "--filtered",
                            "--ann", "--nprobe")
        triple = [[args.head, args.relation, args.tail]]
        if args.threshold is not None:
            out = _http_json(base + "/v1/classify",
                             {"triples": triple, "threshold": args.threshold},
                             timeout=timeout)
        else:
            out = _http_json(base + "/v1/score", {"triples": triple},
                             timeout=timeout)
    elif have == {"head", "relation"}:
        _reject_query_flags(args, "top-k", "--threshold")
        payload = {"head": args.head, "relation": args.relation,
                   "k": args.k, "filtered": args.filtered}
        payload.update(_query_ann_fields(args))
        out = _http_json(base + "/v1/top_k_tails", payload, timeout=timeout)
    elif have == {"relation", "tail"}:
        _reject_query_flags(args, "top-k", "--threshold")
        payload = {"tail": args.tail, "relation": args.relation,
                   "k": args.k, "filtered": args.filtered}
        payload.update(_query_ann_fields(args))
        out = _http_json(base + "/v1/top_k_heads", payload, timeout=timeout)
    else:
        raise SystemExit(
            "specify --head and --relation (top-k tails), --relation and --tail "
            "(top-k heads), all three (score/classify), --nearest ENTITY "
            "(embedding neighbours), or --stats"
        )
    print(json.dumps(out, indent=2))
    return 0


def _command_info(_: argparse.Namespace) -> int:
    info = {
        "datasets": {name: {"entities": spec.n_entities, "relations": spec.n_relations,
                            "triples": spec.n_training_triples}
                     for name, spec in PAPER_DATASETS.items()},
        "sparse_models": sorted(SPARSE_MODELS),
        "dense_models": sorted(DENSE_MODELS),
        "spmm_backends": available_backends(),
        "registry": registry_summary(),
    }
    print(json.dumps(info, indent=2))
    return 0


def _detect_repo_root() -> str:
    """Repo root for `sptransx check`: cwd when it holds src/repro, else the
    tree this installed package was imported from."""
    import os

    if os.path.isdir(os.path.join(os.getcwd(), "src", "repro")):
        return os.getcwd()
    import repro

    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))))


def _command_check(args: argparse.Namespace) -> int:
    import subprocess

    from repro.analysis import (
        iter_rules,
        render_github,
        render_json,
        render_text,
        run_checks,
    )

    if args.list_rules:
        for rule, description in iter_rules():
            print(f"{rule}: {description}")
        return 0
    rules = ([r.strip() for r in args.rules.split(",") if r.strip()]
             if args.rules else None)
    if rules:
        known = {rule for rule, _ in iter_rules()}
        unknown = sorted(set(rules) - known)
        if unknown:
            raise SystemExit(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"see `sptransx check --list-rules`")
    root = args.root if args.root else _detect_repo_root()
    try:
        findings = run_checks(
            root,
            rules=rules,
            paths=args.paths if args.paths else None,
            diff_ref=args.diff,
        )
    except subprocess.CalledProcessError as exc:
        raise SystemExit(
            f"git diff against {args.diff!r} failed: "
            f"{(exc.stderr or '').strip()}") from exc
    renderer = {"json": render_json, "github": render_github}.get(
        args.format_, render_text)
    print(renderer(findings))
    return 1 if findings else 0


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "run": _command_run,
        "export-spec": _command_export_spec,
        "train": _command_train,
        "evaluate": _command_evaluate,
        "serve": _command_serve,
        "query": _command_query,
        "info": _command_info,
        "check": _command_check,
    }
    handler = commands.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command}")
        return 2
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
