"""Row-sparse gradient container for embedding-style parameters.

A minibatch of ``B`` triplets touches at most ``3 * B`` rows of the stacked
embedding matrix, yet a dense backward materialises — and the optimizer then
rewrites — all ``N + R`` rows.  :class:`RowSparseGrad` stores only the touched
rows, so the whole gradient pipeline (SpMM backward, gradient accumulation,
optimizer update) costs ``O(B * d)`` instead of ``O((N + R) * d)`` per step.

The contract mirrors ``torch.sparse``'s coalesced layout restricted to
row-level granularity:

* ``indices`` — 1-D ``int64`` array of **unique, sorted** row numbers, shape
  ``(k,)``.
* ``values`` — packed gradient rows aligned with ``indices``, shape
  ``(k,) + shape[1:]`` (usually ``(k, d)``).
* ``shape`` — the dense shape the gradient stands in for.

Custom SpMM backends that want to emit sparse gradients should build one with
:meth:`RowSparseGrad.from_rows` (which coalesces duplicates) and hand it to
``Tensor.accumulate_grad``; everything downstream — merging, densification,
and the optimizers' scatter updates — is handled by the framework.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def coalesce_rows(rows: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` over duplicate entries of ``rows``.

    Returns ``(unique_rows, packed_values)`` with ``unique_rows`` sorted.
    Vectorized as a stable sort plus a segmented reduction, which is far
    cheaper than ``np.add.at`` for wide value rows.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return rows, values[:0]
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    sorted_vals = values[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_rows[1:] != sorted_rows[:-1]))
    )
    unique = sorted_rows[boundaries]
    packed = np.add.reduceat(sorted_vals, boundaries, axis=0)
    return unique, packed


class RowSparseGrad:
    """A gradient that is non-zero only on a subset of leading rows.

    Parameters
    ----------
    indices:
        Unique, sorted row indices, shape ``(k,)``.
    values:
        Gradient rows aligned with ``indices``, shape ``(k,) + shape[1:]``.
    shape:
        Dense shape of the parameter the gradient belongs to.

    Use :meth:`from_rows` when the row list may contain duplicates.
    """

    __slots__ = ("indices", "values", "shape")

    #: Structural marker so the autograd engine can recognise the type without
    #: importing this module (avoids a circular import with the tape).
    is_row_sparse = True

    def __init__(self, indices: np.ndarray, values: np.ndarray,
                 shape: Tuple[int, ...]) -> None:
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.asarray(values)
        shape = tuple(int(s) for s in shape)
        if indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {indices.shape}")
        if values.shape != (indices.size,) + shape[1:]:
            raise ValueError(
                f"values must have shape {(indices.size,) + shape[1:]}, got {values.shape}"
            )
        if indices.size:
            if indices.min() < 0 or indices.max() >= shape[0]:
                raise IndexError(
                    f"row index out of range for dense shape {shape}: "
                    f"[{indices.min()}, {indices.max()}]"
                )
            if np.any(indices[1:] <= indices[:-1]):
                raise ValueError(
                    "indices must be strictly increasing (unique and sorted); "
                    "use RowSparseGrad.from_rows to coalesce duplicates"
                )
        self.indices = indices
        self.values = values
        self.shape = shape

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(cls, rows: np.ndarray, values: np.ndarray,
                  shape: Tuple[int, ...]) -> "RowSparseGrad":
        """Build from a (possibly duplicated) row list, coalescing on the way."""
        unique, packed = coalesce_rows(rows, np.asarray(values))
        return cls(unique, packed, shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "RowSparseGrad":
        """Build from a dense gradient, keeping rows with any ``|x| > tol``."""
        dense = np.asarray(dense)
        flat = np.abs(dense).reshape(dense.shape[0], -1) if dense.ndim > 1 else np.abs(dense)[:, None]
        rows = np.flatnonzero(flat.max(axis=1) > tol)
        return cls(rows, dense[rows].copy(), dense.shape)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of stored (touched) rows ``k``."""
        return int(self.indices.size)

    @property
    def nnz(self) -> int:
        """Number of stored scalars (``k * prod(shape[1:])``)."""
        return int(self.values.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the index and value arrays."""
        return self.indices.nbytes + self.values.nbytes

    @property
    def dtype(self):
        return self.values.dtype

    @property
    def density(self) -> float:
        """Fraction of dense rows that are stored."""
        return self.n_rows / self.shape[0] if self.shape[0] else 0.0

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def merge(self, other: "RowSparseGrad") -> "RowSparseGrad":
        """Return the sum of two row-sparse gradients (still row-sparse)."""
        if not isinstance(other, RowSparseGrad):
            raise TypeError(f"expected RowSparseGrad, got {type(other)!r}")
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        rows = np.concatenate([self.indices, other.indices])
        vals = np.concatenate([self.values, other.values], axis=0)
        return RowSparseGrad.from_rows(rows, vals, self.shape)

    def add_to_dense(self, dense: np.ndarray) -> np.ndarray:
        """Scatter-add the stored rows into ``dense`` in place (and return it)."""
        dense = np.asarray(dense)
        if dense.shape != self.shape:
            raise ValueError(f"dense shape {dense.shape} != gradient shape {self.shape}")
        # ``indices`` is unique, so plain fancy-index addition is safe.
        dense[self.indices] += self.values
        return dense

    def to_dense(self, dtype=None) -> np.ndarray:
        """Materialise the full dense gradient (the transparent fallback)."""
        out = np.zeros(self.shape, dtype=dtype if dtype is not None else self.values.dtype)
        out[self.indices] = self.values
        return out

    def scale(self, factor: float) -> "RowSparseGrad":
        """Return a copy with every value multiplied by ``factor``."""
        return RowSparseGrad(self.indices.copy(), self.values * factor, self.shape)

    def copy(self) -> "RowSparseGrad":
        """Deep copy."""
        return RowSparseGrad(self.indices.copy(), self.values.copy(), self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RowSparseGrad(shape={self.shape}, rows={self.n_rows}, "
                f"density={self.density:.4f})")
