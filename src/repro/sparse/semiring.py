"""Semiring SpMM — the Appendix-D generalisation to non-translational models.

The standard SpMM over the ``hrt`` incidence matrix computes, per triplet row,

    ``(+1)·E[h] ⊕ (+1)·E[N+r] ⊕ (−1)·E[t]``  with  ``⊕ = +`` and ``· = ×``.

Swapping the semiring operators generalises the same single-kernel structure
to bilinear and rotational models:

===============  ==================================  =====================
semiring         per-row combination                 model
===============  ==================================  =====================
``plus_times``   ``h + r − t``                       TransE / TorusE
``times_times``  ``h ⊙ r ⊙ t``                       DistMult
``complex``      ``Re(h ⊙ r ⊙ conj(t))`` (pairs)     ComplEx
``rotate``       ``h ⊙ r − t``                       RotatE (real slice)
===============  ==================================  =====================

The kernel below exploits the fact that every incidence row has exactly three
non-zeros, so the "SpMM" collapses to three strided gathers, a fused combine,
and (in the backward pass) three scatter-adds — mirroring how a custom
semiring would be dropped into GraphBLAS/iSpLib.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.autograd.function import count_flops
from repro.autograd.tensor import Tensor
from repro.utils.validation import check_triples

CombineFn = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
GradFn = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    Tuple[np.ndarray, np.ndarray, np.ndarray],
]


@dataclass(frozen=True)
class Semiring:
    """A named (⊕, ⊗) pair with its analytic gradient rule.

    Attributes
    ----------
    name:
        Registry key.
    combine:
        ``(H, R, T) -> out`` applied row-wise to the gathered embedding blocks.
    grads:
        ``(H, R, T, grad_out) -> (grad_H, grad_R, grad_T)``.
    flops_per_element:
        Approximate floating-point operations per output element, used by the
        FLOP profiler.
    """

    name: str
    combine: CombineFn
    grads: GradFn
    flops_per_element: int = 2


def _plus_times_combine(h, r, t):
    return h + r - t


def _plus_times_grads(h, r, t, g):
    return g, g, -g


def _times_times_combine(h, r, t):
    return h * r * t


def _times_times_grads(h, r, t, g):
    return g * r * t, g * h * t, g * h * r


def _rotate_combine(h, r, t):
    return h * r - t


def _rotate_grads(h, r, t, g):
    return g * r, g * h, -g


SEMIRINGS: Dict[str, Semiring] = {
    "plus_times": Semiring("plus_times", _plus_times_combine, _plus_times_grads, 2),
    "times_times": Semiring("times_times", _times_times_combine, _times_times_grads, 2),
    "rotate": Semiring("rotate", _rotate_combine, _rotate_grads, 2),
}


def get_semiring(name) -> Semiring:
    """Look up a semiring by name (instances pass through unchanged)."""
    if isinstance(name, Semiring):
        return name
    try:
        return SEMIRINGS[name]
    except KeyError:
        raise KeyError(f"unknown semiring {name!r}; available: {sorted(SEMIRINGS)}") from None


def register_semiring(semiring: Semiring, overwrite: bool = False) -> Semiring:
    """Add a custom semiring to the registry (the Appendix-D extension hook)."""
    if semiring.name in SEMIRINGS and not overwrite:
        raise ValueError(f"semiring {semiring.name!r} already registered")
    SEMIRINGS[semiring.name] = semiring
    return semiring


def semiring_spmm(
    triples: np.ndarray,
    stacked_embeddings: Tensor,
    n_entities: int,
    semiring="plus_times",
) -> Tensor:
    """Apply a semiring SpMM over the ``hrt`` incidence pattern.

    Parameters
    ----------
    triples:
        ``(M, 3)`` integer array of ``(head, relation, tail)``.
    stacked_embeddings:
        Tensor of shape ``(N + R, d)``: entity rows first, relation rows after
        (exactly the stacked layout of Section 4.2.2).
    n_entities:
        Number of entity rows ``N`` (relation columns are offset by this).
    semiring:
        Name or :class:`Semiring` instance.

    Returns
    -------
    Tensor of shape ``(M, d)`` — the per-triplet combined vectors.
    """
    sr = get_semiring(semiring)
    E = stacked_embeddings
    if not isinstance(E, Tensor):
        E = Tensor(np.asarray(E))
    triples = check_triples(triples)
    n_entities = int(n_entities)
    if triples.size:
        if triples[:, [0, 2]].max() >= n_entities:
            raise ValueError("entity index exceeds n_entities")
        if n_entities + triples[:, 1].max() >= E.shape[0]:
            raise ValueError("relation index exceeds stacked embedding rows")

    h_idx = triples[:, 0]
    r_idx = triples[:, 1] + n_entities
    t_idx = triples[:, 2]

    H = E.data[h_idx]
    R = E.data[r_idx]
    T = E.data[t_idx]
    out_data = sr.combine(H, R, T)
    count_flops(f"semiring_spmm[{sr.name}]", sr.flops_per_element * out_data.size,
                bytes_streamed=3 * out_data.nbytes + out_data.nbytes,
                bytes_unique=len(np.unique(np.concatenate([h_idx, r_idx, t_idx])))
                * E.data.itemsize * E.shape[1])

    def backward(grad: np.ndarray) -> None:
        if not E.requires_grad:
            return
        grad_h, grad_r, grad_t = sr.grads(H, R, T, grad)
        full = np.zeros_like(E.data)
        np.add.at(full, h_idx, grad_h)
        np.add.at(full, r_idx, grad_r)
        np.add.at(full, t_idx, grad_t)
        count_flops(f"semiring_spmm_bwd[{sr.name}]", sr.flops_per_element * grad.size * 3)
        E.accumulate_grad(full)

    return Tensor._make(out_data, (E,), backward, f"semiring_spmm[{sr.name}]")


def complex_semiring_spmm(
    triples: np.ndarray,
    stacked_real: Tensor,
    stacked_imag: Tensor,
    n_entities: int,
) -> Tensor:
    """ComplEx-style semiring: ``Re(h ⊙ r ⊙ conj(t))`` over stacked embeddings.

    Complex embeddings are carried as a (real, imaginary) pair of stacked
    matrices; the combination expands to four real ``times_times`` products:

    ``Re = h_re·r_re·t_re − h_im·r_im·t_re + h_re·r_im·t_im + h_im·r_re·t_im``

    Returns the ``(M, d)`` real part, whose row-sum is the ComplEx score.
    """
    a = semiring_spmm(triples, stacked_real, n_entities, "times_times")
    # Build mixed products by temporarily splicing real/imag blocks.
    re, im = stacked_real, stacked_imag

    def mixed(h_src: Tensor, r_src: Tensor, t_src: Tensor) -> Tensor:
        # h, r, t drawn from possibly different stacked matrices; reuse the
        # times_times gradient rule per source by composing gathers.
        from repro.autograd.ops import gather_rows

        h_idx = triples[:, 0]
        r_idx = triples[:, 1] + int(n_entities)
        t_idx = triples[:, 2]
        return gather_rows(h_src, h_idx) * gather_rows(r_src, r_idx) * gather_rows(t_src, t_idx)

    b = mixed(im, im, re)
    c = mixed(re, im, im)
    d = mixed(im, re, im)
    return a - b + c + d
