"""Coordinate-format (COO) sparse matrix.

COO is the construction format: the incidence builders emit COO because the
triplet list maps one-to-one onto ``(row, col, value)`` entries.  Kernels that
prefer a row-compressed layout convert with :meth:`COOMatrix.tocsr`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


class COOMatrix:
    """A sparse matrix stored as parallel ``(row, col, value)`` arrays.

    Parameters
    ----------
    rows, cols:
        Integer index arrays of equal length.
    values:
        Non-zero values aligned with ``rows`` / ``cols``.
    shape:
        Matrix shape ``(n_rows, n_cols)``.
    """

    __slots__ = ("rows", "cols", "values", "shape", "_regular_cache")

    def __init__(self, rows, cols, values, shape: Tuple[int, int]) -> None:
        # Memoised verdict of the fused kernels' constant-nnz pattern probe
        # (see repro.sparse.backends._regular_pattern); the index arrays are
        # immutable by convention, so the probe need only run once per matrix.
        # The payload is O(1) — the scalar per-row nnz or an "irregular"
        # sentinel, never array views — and, living in this slot, it is
        # reclaimed with the matrix: transient sub-incidence matrices (one per
        # partition episode) grow no global state.
        self._regular_cache = None
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if not (rows.ndim == cols.ndim == values.ndim == 1):
            raise ValueError("rows, cols and values must be 1-D arrays")
        if not (rows.size == cols.size == values.size):
            raise ValueError(
                f"rows, cols and values must have equal length, got "
                f"{rows.size}, {cols.size}, {values.size}"
            )
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"shape must be non-negative, got {shape}")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError("row index out of bounds")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError("column index out of bounds")
        self.rows = rows
        self.cols = cols
        self.values = values
        self.shape = (n_rows, n_cols)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.values.size)

    @property
    def density(self) -> float:
        """Fraction of cells that are stored (0 for an empty matrix)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def nbytes(self) -> int:
        """Memory footprint of the index and value arrays in bytes."""
        return self.rows.nbytes + self.cols.nbytes + self.values.nbytes

    def nnz_per_row(self) -> np.ndarray:
        """Histogram of non-zeros per row (length ``n_rows``)."""
        return np.bincount(self.rows, minlength=self.shape[0])

    # ------------------------------------------------------------------ #
    # Constructors / conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "COOMatrix":
        """Build from a dense array, dropping entries with ``|x| <= tol``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"dense must be 2-D, got shape {dense.shape}")
        mask = np.abs(dense) > tol
        rows, cols = np.nonzero(mask)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix) -> "COOMatrix":
        """Build from any SciPy sparse matrix."""
        coo = mat.tocoo()
        return cls(coo.row, coo.col, coo.data, coo.shape)

    def to_scipy(self) -> sp.coo_matrix:
        """Return the equivalent ``scipy.sparse.coo_matrix``."""
        return sp.coo_matrix((self.values, (self.rows, self.cols)), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (duplicate entries are summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.values)
        return out

    def tocsr(self) -> "CSRMatrix":
        """Convert to :class:`~repro.sparse.csr.CSRMatrix`."""
        from repro.sparse.csr import CSRMatrix

        order = np.lexsort((self.cols, self.rows))
        rows = self.rows[order]
        cols = self.cols[order]
        vals = self.values[order]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        counts = np.bincount(rows, minlength=self.shape[0])
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(indptr, cols, vals, self.shape)

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (shares no data with ``self``)."""
        return COOMatrix(self.cols.copy(), self.rows.copy(), self.values.copy(),
                         (self.shape[1], self.shape[0]))

    @property
    def T(self) -> "COOMatrix":
        return self.transpose()

    def copy(self) -> "COOMatrix":
        """Deep copy."""
        return COOMatrix(self.rows.copy(), self.cols.copy(), self.values.copy(), self.shape)

    # ------------------------------------------------------------------ #
    # Slicing / arithmetic helpers
    # ------------------------------------------------------------------ #
    def select_rows(self, row_indices: np.ndarray) -> "COOMatrix":
        """Return the submatrix containing only ``row_indices`` (renumbered 0..k-1).

        Used to cut per-minibatch incidence matrices out of the full-epoch
        incidence matrix without rebuilding it.
        """
        row_indices = np.asarray(row_indices, dtype=np.int64)
        if row_indices.size and (row_indices.min() < 0 or row_indices.max() >= self.shape[0]):
            raise IndexError("row index out of bounds")
        remap = -np.ones(self.shape[0], dtype=np.int64)
        remap[row_indices] = np.arange(row_indices.size, dtype=np.int64)
        keep = remap[self.rows] >= 0
        return COOMatrix(
            remap[self.rows[keep]],
            self.cols[keep],
            self.values[keep],
            (int(row_indices.size), self.shape[1]),
        )

    def scale(self, factor: float) -> "COOMatrix":
        """Return a copy with every stored value multiplied by ``factor``."""
        return COOMatrix(self.rows.copy(), self.cols.copy(), self.values * factor, self.shape)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x`` (reference implementation)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.shape[1]:
            raise ValueError(f"dimension mismatch: {self.shape} @ {x.shape}")
        out_shape = (self.shape[0],) + x.shape[1:]
        out = np.zeros(out_shape, dtype=np.float64)
        np.add.at(out, self.rows, self.values.reshape(-1, *([1] * (x.ndim - 1))) * x[self.cols])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.allclose(self.to_dense(), other.to_dense())
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("COOMatrix is unhashable")
