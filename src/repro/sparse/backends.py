"""Pluggable SpMM backends.

The paper lets the user plug any high-performance SpMM under the framework
(iSpLib on CPU, DGL g-SpMM on GPU).  We mirror that with a small registry:

* ``"scipy"`` — the compiled ``scipy.sparse`` CSR kernel; the production
  default and the stand-in for iSpLib/cuSparse-class kernels.
* ``"numpy"`` — a pure-NumPy gather/scatter reference; slow but dependency-free
  and easy to audit, used as the oracle in tests.
* ``"fused"`` — a kernel specialised for incidence matrices with a fixed,
  small number of non-zeros per row (2 for ``ht``, 3 for ``hrt``); it fuses the
  gathers and the signed accumulation into a handful of vectorized adds and is
  the closest analogue to the paper's FusedMM-style optimisation.
* ``"compiled"`` — the fused forward **and** row-sparse backward as single
  compiled loops (numba ``@njit(cache=True)`` when importable) with a
  cache-blocked pure-numpy fallback that is always available and bit-identical
  to ``"fused"``; see :mod:`repro.sparse.kernels`.

Backends operate on :class:`~repro.sparse.coo.COOMatrix` /
:class:`~repro.sparse.csr.CSRMatrix` (or SciPy matrices) and plain ndarrays;
the autograd wrapper lives in :mod:`repro.sparse.spmm`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.function import count_flops
from repro.sparse import kernels
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

SparseLike = Union[COOMatrix, CSRMatrix, sp.spmatrix]


def _as_scipy_csr(A: SparseLike) -> sp.csr_matrix:
    if isinstance(A, CSRMatrix):
        return A.to_scipy()
    if isinstance(A, COOMatrix):
        return A.to_scipy().tocsr()
    if sp.issparse(A):
        return A.tocsr()
    raise TypeError(f"expected a sparse matrix, got {type(A)!r}")


def _as_coo(A: SparseLike) -> COOMatrix:
    if isinstance(A, COOMatrix):
        return A
    if isinstance(A, CSRMatrix):
        return A.tocoo()
    if sp.issparse(A):
        return COOMatrix.from_scipy(A)
    raise TypeError(f"expected a sparse matrix, got {type(A)!r}")


def spmm_flops(A: SparseLike, X: np.ndarray) -> int:
    """Analytic FLOP count of ``A @ X``: one multiply-add per (nnz, column) pair."""
    nnz = A.nnz
    n_cols = X.shape[1] if X.ndim > 1 else 1
    return int(2 * nnz * n_cols)


def _record(A: SparseLike, X: np.ndarray, out: np.ndarray, kernel: str,
            seconds: float = 0.0) -> None:
    """Register FLOPs, byte traffic, and wall-time for one SpMM call.

    The unique-bytes figure counts the distinct embedding rows read plus the
    freshly written output (write-allocate traffic) — the compulsory-miss
    volume the cache model compares against the total streamed bytes.
    """
    coo_cols = None
    if isinstance(A, COOMatrix):
        coo_cols = A.cols
    elif isinstance(A, CSRMatrix):
        coo_cols = A.indices
    elif sp.issparse(A):
        coo_cols = A.tocoo().col
    row_bytes = X.itemsize * (X.shape[1] if X.ndim > 1 else 1)
    unique_reads = len(np.unique(coo_cols)) * row_bytes if coo_cols is not None else 0
    unique = unique_reads + out.nbytes
    streamed = (A.nnz * row_bytes) + out.nbytes
    count_flops(kernel, spmm_flops(A, X), bytes_streamed=streamed,
                bytes_unique=unique, seconds=seconds)


@dataclass(frozen=True)
class SpMMBackend:
    """A named SpMM implementation.

    Attributes
    ----------
    name:
        Registry key.
    fn:
        Callable ``(A, X) -> A @ X`` operating on ndarrays.
    description:
        Human-readable summary shown by :func:`available_backends`.
    rowsparse_backward:
        Optional fused backward ``(A, grad, n_rows) -> RowSparseGrad``.  When
        set, the autograd wrapper (:func:`repro.sparse.spmm.spmm`) and the
        partitioned scoring path route the row-sparse backward through it
        instead of the generic gather/scale/coalesce reference.
    """

    name: str
    fn: Callable[[SparseLike, np.ndarray], np.ndarray]
    description: str = ""
    rowsparse_backward: Optional[Callable] = None

    def __call__(self, A: SparseLike, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if A.shape[1] != X.shape[0]:
            raise ValueError(f"dimension mismatch: {A.shape} @ {X.shape}")
        t0 = time.perf_counter()
        out = self.fn(A, X)
        _record(A, X, out, f"spmm[{self.name}]", seconds=time.perf_counter() - t0)
        return out


# --------------------------------------------------------------------------- #
# Backend implementations
# --------------------------------------------------------------------------- #
def _out_dtype(X: np.ndarray) -> np.dtype:
    """Output dtype contract shared by every backend.

    Floating inputs keep their dtype (a float32 embedding matrix must not be
    silently upcast to float64 — that doubles the memory traffic the whole
    sparse formulation exists to minimise); integer inputs promote to float64.
    Sub-float32 floats (float16) compute at float32, the narrowest width every
    backend supports — SciPy's sparse kernels have no float16 path.
    """
    if np.issubdtype(X.dtype, np.floating):
        return np.result_type(X.dtype, np.float32)
    return np.result_type(X.dtype, np.float64)


def _scipy_spmm(A: SparseLike, X: np.ndarray) -> np.ndarray:
    """Compiled CSR kernel from SciPy (cache-blocked C code)."""
    csr = _as_scipy_csr(A)
    dtype = _out_dtype(X)
    if csr.dtype != dtype:
        # Cast only the nnz values (cheap) so the product streams at X's
        # width; the index arrays are shared, not copied.
        csr = sp.csr_matrix(
            (csr.data.astype(dtype), csr.indices, csr.indptr), shape=csr.shape
        )
    return np.asarray(csr @ X)


def _numpy_spmm(A: SparseLike, X: np.ndarray) -> np.ndarray:
    """Pure-NumPy reference: gather source rows, scale, scatter-add into output."""
    coo = _as_coo(A)
    dtype = _out_dtype(X)
    vals = coo.values.astype(dtype, copy=False)
    if X.ndim == 1:
        out = np.zeros(coo.shape[0], dtype=dtype)
        np.add.at(out, coo.rows, vals * X[coo.cols])
        return out
    out = np.zeros((coo.shape[0], X.shape[1]), dtype=dtype)
    np.add.at(out, coo.rows, vals[:, None] * X[coo.cols])
    return out


#: Sentinel cached on a COOMatrix whose pattern probe came back irregular,
#: distinguishing "checked, not regular" from "never checked" (``None``).
_IRREGULAR = object()


def _probe_regular_pattern(coo: COOMatrix):
    """The actual pattern inspection behind :func:`_regular_pattern`.

    Returns the constant per-row nnz ``k`` when the pattern is regular,
    else ``None``.
    """
    m = coo.shape[0]
    if m == 0 or coo.nnz % m != 0:
        return None
    k = coo.nnz // m
    rows = coo.rows.reshape(m, k)
    if not np.array_equal(rows[:, 0], np.arange(m, dtype=rows.dtype)):
        return None
    if k > 1 and not (rows == rows[:, :1]).all():
        return None
    return k


def _regular_pattern(coo: COOMatrix):
    """Detect a sorted, constant-nnz-per-row COO pattern without a full sort.

    Matrices from :class:`~repro.sparse.incidence.IncidenceBuilder` always
    store rows as ``repeat(arange(m), k)``, so one reshape plus two vectorized
    comparisons replace the ``bincount`` + stable ``argsort`` that used to run
    on every call.  Returns ``(cols, vals)`` reshaped to ``(m, k)`` when the
    fast path applies, else ``None``.

    The verdict is memoised on the matrix itself, and only the verdict: the
    cache payload is the scalar ``k`` (or the ``_IRREGULAR`` sentinel), never
    the reshaped arrays.  The memo is therefore O(1) bytes per matrix and —
    because it lives in a ``__slots__`` attribute on the instance, not in any
    module-level table — dies with the matrix: the per-episode sub-incidence
    matrices the partitioned trainer remaps by the thousand leave nothing
    behind.  The ``(m, k)`` views handed back are rebuilt from the instance's
    *current* ``cols``/``values`` buffers on every call (a reshape is free),
    so the memo can never pin or serve stale array storage either.
    """
    cached = getattr(coo, "_regular_cache", None)
    if cached is None:
        cached = _probe_regular_pattern(coo)
        if cached is None:
            cached = _IRREGULAR
        try:
            coo._regular_cache = cached
        except AttributeError:  # pragma: no cover - foreign COO-likes
            pass
    if cached is _IRREGULAR:
        return None
    m = coo.shape[0]
    return coo.cols.reshape(m, cached), coo.values.reshape(m, cached)


def _fused_spmm(A: SparseLike, X: np.ndarray) -> np.ndarray:
    """Fused kernel for incidence matrices with a constant nnz-per-row.

    When every row holds exactly ``k`` non-zeros (k=2 for ``ht``, k=3 for
    ``hrt``) the product collapses to ``k`` strided gathers and ``k-1`` fused
    adds — no scatter, no atomic accumulation.  Incidence matrices arrive with
    rows already sorted, so the common case skips the sort entirely; only
    irregular-but-constant patterns pay the ``bincount`` + stable ``argsort``,
    and anything else falls back to the SciPy kernel.
    """
    coo = _as_coo(A)
    dtype = _out_dtype(X)
    if coo.nnz == 0:
        return np.zeros((coo.shape[0],) + X.shape[1:], dtype=dtype)
    regular = _regular_pattern(coo)
    if regular is None:
        counts = np.bincount(coo.rows, minlength=coo.shape[0])
        k = counts.max(initial=0)
        if k == 0 or not np.all(counts == k):
            return _scipy_spmm(A, X)
        order = np.argsort(coo.rows, kind="stable")
        cols = coo.cols[order].reshape(coo.shape[0], k)
        vals = coo.values[order].reshape(coo.shape[0], k)
    else:
        cols, vals = regular
        k = cols.shape[1]
    vals = vals.astype(dtype, copy=False)
    if X.ndim == 1:
        out = vals[:, 0] * X[cols[:, 0]]
        for j in range(1, k):
            out = out + vals[:, j] * X[cols[:, j]]
        return out
    out = vals[:, 0:1] * X[cols[:, 0]]
    for j in range(1, k):
        out += vals[:, j:j + 1] * X[cols[:, j]]
    return out


def _compiled_spmm(A: SparseLike, X: np.ndarray) -> np.ndarray:
    """Compiled/fused kernel: numba ``@njit`` when importable, blocked numpy else.

    The regular incidence pattern (constant nnz per sorted row — the shape
    every :class:`~repro.sparse.incidence.IncidenceBuilder` matrix has)
    dispatches to :func:`repro.sparse.kernels.fixed_spmm`: a single compiled
    gather-scatter loop under numba, or the cache-blocked pure-numpy kernel
    (bit-identical to the ``"fused"`` backend) otherwise.  Irregular matrices
    fall back to the ``"fused"`` backend's sort-then-gather path.
    """
    coo = _as_coo(A)
    dtype = _out_dtype(X)
    if coo.nnz == 0:
        return np.zeros((coo.shape[0],) + X.shape[1:], dtype=dtype)
    regular = _regular_pattern(coo)
    if regular is None:
        return _fused_spmm(A, X)
    cols, vals = regular
    if X.dtype != dtype:
        X = X.astype(dtype)
    return kernels.fixed_spmm(cols, vals, X, dtype)


def _compiled_rowsparse_backward(A: SparseLike, grad: np.ndarray, n_rows: int):
    """Fused ``A^T @ grad`` in row-sparse form (the ``"compiled"`` backward).

    Same contract and flop/byte accounting as
    :func:`repro.sparse.spmm._rowsparse_backward`, but the gather, scale, and
    coalesce run on the fused schedule of
    :func:`repro.sparse.kernels.rowsparse_bwd` and the measured wall-time is
    attributed to ``spmm_bwd[compiled]``.
    """
    from repro.sparse.rowsparse import RowSparseGrad

    coo = _as_coo(A)
    t0 = time.perf_counter()
    unique, packed = kernels.rowsparse_bwd(coo.cols, coo.rows, coo.values, grad)
    out = RowSparseGrad(unique, packed, (n_rows,) + grad.shape[1:])
    d = grad.shape[1] if grad.ndim > 1 else 1
    row_bytes = grad.itemsize * d
    count_flops(
        "spmm_bwd[compiled]",
        2 * coo.nnz * d,
        bytes_streamed=2 * coo.nnz * row_bytes + out.values.nbytes,
        bytes_unique=out.n_rows * row_bytes + out.values.nbytes,
        seconds=time.perf_counter() - t0,
    )
    return out


_REGISTRY: Dict[str, SpMMBackend] = {}


def register_backend(name: str, fn: Callable[[SparseLike, np.ndarray], np.ndarray],
                     description: str = "", overwrite: bool = False,
                     rowsparse_backward: Optional[Callable] = None) -> SpMMBackend:
    """Register a custom SpMM backend under ``name``.

    The paper's framework lets users plug their preferred SpMM library; this is
    the equivalent hook.  Registered backends become selectable by name in
    every model constructor.  ``rowsparse_backward`` optionally supplies a
    fused ``(A, grad, n_rows) -> RowSparseGrad`` backward used in place of the
    generic gather/scale/coalesce path.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} already registered (pass overwrite=True to replace)")
    backend = SpMMBackend(name=name, fn=fn, description=description,
                          rowsparse_backward=rowsparse_backward)
    _REGISTRY[name] = backend
    return backend


def get_backend(name: Union[str, SpMMBackend]) -> SpMMBackend:
    """Look up a backend by name (or pass an instance through)."""
    if isinstance(name, SpMMBackend):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown SpMM backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> Dict[str, str]:
    """Return ``{name: description}`` for every registered backend."""
    return {name: backend.description for name, backend in sorted(_REGISTRY.items())}


register_backend("scipy", _scipy_spmm, "Compiled SciPy CSR kernel (production default)")
register_backend("numpy", _numpy_spmm, "Pure-NumPy gather/scatter reference kernel")
register_backend("fused", _fused_spmm, "Fused gather kernel for fixed-nnz incidence rows")
register_backend(
    "compiled", _compiled_spmm,
    "Fused forward+backward kernels: numba @njit when importable, "
    "cache-blocked numpy fallback otherwise",
    rowsparse_backward=_compiled_rowsparse_backward,
)

DEFAULT_BACKEND = "scipy"
