"""Compressed Sparse Row (CSR) matrix.

CSR is the execution format for CPU SpMM (the paper uses CSR for iSpLib).  The
container stores ``indptr`` / ``indices`` / ``data`` arrays and exposes the
row-major product used by the backends.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp


class CSRMatrix:
    """A sparse matrix in compressed-sparse-row layout.

    Parameters
    ----------
    indptr:
        Row pointer array of length ``n_rows + 1``.
    indices:
        Column indices of the stored values, length ``nnz``.
    data:
        Stored values, length ``nnz``.
    shape:
        Matrix shape ``(n_rows, n_cols)``.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(self, indptr, indices, data, shape: Tuple[int, int]) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        data = np.ascontiguousarray(data, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.size != n_rows + 1:
            raise ValueError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {indptr.size}"
            )
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size != data.size or indices.size != indptr[-1]:
            raise ValueError("indices/data length must equal indptr[-1]")
        if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
            raise ValueError("column index out of bounds")
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.shape = (n_rows, n_cols)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def density(self) -> float:
        """Fraction of cells that are stored."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def nbytes(self) -> int:
        """Memory footprint of the three CSR arrays in bytes."""
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def nnz_per_row(self) -> np.ndarray:
        """Number of stored entries in each row."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------ #
    # Constructors / conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scipy(cls, mat: sp.spmatrix) -> "CSRMatrix":
        """Build from any SciPy sparse matrix."""
        csr = mat.tocsr()
        return cls(csr.indptr, csr.indices, csr.data, csr.shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense array, dropping entries with ``|x| <= tol``."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix.from_dense(dense, tol=tol).tocsr()

    def to_scipy(self) -> sp.csr_matrix:
        """Return the equivalent ``scipy.sparse.csr_matrix``."""
        return sp.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array."""
        out = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.shape[0]):
            start, stop = self.indptr[i], self.indptr[i + 1]
            np.add.at(out[i], self.indices[start:stop], self.data[start:stop])
        return out

    def tocoo(self) -> "COOMatrix":
        """Convert to :class:`~repro.sparse.coo.COOMatrix`."""
        from repro.sparse.coo import COOMatrix

        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(rows, self.indices.copy(), self.data.copy(), self.shape)

    def transpose(self) -> "CSRMatrix":
        """Return the transposed matrix in CSR layout."""
        return CSRMatrix.from_scipy(self.to_scipy().T.tocsr())

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape)

    # ------------------------------------------------------------------ #
    # Products
    # ------------------------------------------------------------------ #
    def matmul_dense(self, X: np.ndarray) -> np.ndarray:
        """SpMM ``A @ X`` using the compiled SciPy kernel."""
        X = np.asarray(X)
        if X.shape[0] != self.shape[1]:
            raise ValueError(f"dimension mismatch: {self.shape} @ {X.shape}")
        return np.asarray(self.to_scipy() @ X)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``."""
        return self.matmul_dense(np.asarray(x))

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Return rows ``start:stop`` as a new CSR matrix (minibatch slicing)."""
        if not (0 <= start <= stop <= self.shape[0]):
            raise IndexError(f"invalid row slice [{start}:{stop}] for {self.shape[0]} rows")
        lo, hi = self.indptr[start], self.indptr[stop]
        indptr = self.indptr[start:stop + 1] - lo
        return CSRMatrix(indptr, self.indices[lo:hi].copy(), self.data[lo:hi].copy(),
                         (stop - start, self.shape[1]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return self.shape == other.shape and np.allclose(self.to_dense(), other.to_dense())

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("CSRMatrix is unhashable")
