"""Autograd-aware sparse-dense matrix multiplication.

This module implements the operation the whole paper hinges on:

    ``C = A @ X``   with   ``dL/dX = A^T @ (dL/dC)``   (Appendix G)

``A`` is a constant incidence matrix built from the training triplets; ``X``
is the (learnable) embedding matrix.  Both the forward and backward pass are a
single SpMM, so one optimized kernel replaces the per-triplet gathers of the
forward pass and the per-triplet scatter-adds of the backward pass.

With ``sparse_grad=True`` the backward pass goes one step further: instead of
densifying ``A^T @ grad`` into a full ``(K, d)`` array, it reads the non-zero
structure of ``A`` directly and emits a
:class:`~repro.sparse.rowsparse.RowSparseGrad` holding only the rows of ``X``
that the batch actually touched.  Per-step backward cost then scales with the
batch (``O(nnz * d)``) instead of the vocabulary (``O(K * d)``).
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.function import count_flops
from repro.autograd.tensor import Tensor
from repro.sparse.backends import (
    DEFAULT_BACKEND,
    SparseLike,
    SpMMBackend,
    _as_coo,
    get_backend,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.rowsparse import RowSparseGrad


def _transpose(A: SparseLike):
    if isinstance(A, (COOMatrix, CSRMatrix)):
        return A.T
    if sp.issparse(A):
        return A.T.tocsr()
    raise TypeError(f"expected a sparse matrix, got {type(A)!r}")


def _rowsparse_backward(A: SparseLike, grad: np.ndarray, n_rows: int) -> RowSparseGrad:
    """Backward SpMM ``A^T @ grad`` emitted directly in row-sparse form.

    Each stored entry ``(r, c, v)`` of ``A`` contributes ``v * grad[r]`` to
    output row ``c``, so the whole product is one gather, one scale, and one
    coalesce over ``nnz`` rows — no ``(K, d)`` densification and no transpose.
    """
    coo = _as_coo(A)
    t0 = time.perf_counter()
    vals = coo.values.astype(grad.dtype, copy=False)
    contributions = vals[:, None] * grad[coo.rows]
    out = RowSparseGrad.from_rows(coo.cols, contributions, (n_rows,) + grad.shape[1:])
    d = grad.shape[1] if grad.ndim > 1 else 1
    row_bytes = grad.itemsize * d
    count_flops(
        "spmm_bwd[rowsparse]",
        2 * coo.nnz * d,
        bytes_streamed=2 * coo.nnz * row_bytes + out.values.nbytes,
        bytes_unique=out.n_rows * row_bytes + out.values.nbytes,
        seconds=time.perf_counter() - t0,
    )
    return out


def rowsparse_backward_for(backend: Union[str, SpMMBackend]):
    """The row-sparse backward a backend wants: its fused kernel or the reference.

    Backends registered with a ``rowsparse_backward`` (the ``"compiled"``
    backend's fused gather-scatter) get their own; everything else uses
    :func:`_rowsparse_backward`.
    """
    fused = get_backend(backend).rowsparse_backward
    return fused if fused is not None else _rowsparse_backward


def spmm(
    A: SparseLike,
    X: Tensor,
    backend: Union[str, SpMMBackend] = DEFAULT_BACKEND,
    A_t: Optional[SparseLike] = None,
    sparse_grad: bool = False,
) -> Tensor:
    """Differentiable ``A @ X`` where ``A`` is sparse and constant.

    Parameters
    ----------
    A:
        Sparse operand (COO, CSR, or SciPy matrix) of shape ``(M, K)``.
    X:
        Dense tensor of shape ``(K, d)`` (typically the stacked embedding
        matrix).  Gradients flow into ``X`` only.
    backend:
        Name of (or handle to) a registered SpMM backend.
    A_t:
        Optional pre-transposed ``A``.  The trainer caches this so repeated
        backward passes do not pay the transpose each step.
    sparse_grad:
        Emit the backward product ``A^T @ grad`` as a
        :class:`~repro.sparse.rowsparse.RowSparseGrad` instead of a dense
        ``(K, d)`` array.  Only takes effect when ``X`` is a leaf tensor (a
        parameter) and the upstream gradient is 2-D; otherwise the dense
        backward runs as usual.

    Returns
    -------
    Tensor of shape ``(M, d)`` participating in the autograd tape.
    """
    kernel = get_backend(backend)
    X_t = X if isinstance(X, Tensor) else Tensor(np.asarray(X))
    out_data = kernel(A, X_t.data)

    transposed = A_t
    n_rows = X_t.shape[0]
    rowsparse_bwd = kernel.rowsparse_backward or _rowsparse_backward

    def backward(grad: np.ndarray) -> None:
        nonlocal transposed
        if not X_t.requires_grad:
            return
        if sparse_grad and X_t.is_leaf and grad.ndim == 2:
            X_t.accumulate_grad(rowsparse_bwd(A, grad, n_rows))
            return
        if transposed is None:
            transposed = _transpose(A)
        X_t.accumulate_grad(kernel(transposed, grad))

    return Tensor._make(out_data, (X_t,), backward, "spmm")


def spmm_t(
    A: SparseLike,
    X: Tensor,
    backend: Union[str, SpMMBackend] = DEFAULT_BACKEND,
) -> Tensor:
    """Differentiable ``A^T @ X`` (convenience wrapper around :func:`spmm`)."""
    return spmm(_transpose(A), X, backend=backend, A_t=A)
