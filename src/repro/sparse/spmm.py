"""Autograd-aware sparse-dense matrix multiplication.

This module implements the operation the whole paper hinges on:

    ``C = A @ X``   with   ``dL/dX = A^T @ (dL/dC)``   (Appendix G)

``A`` is a constant incidence matrix built from the training triplets; ``X``
is the (learnable) embedding matrix.  Both the forward and backward pass are a
single SpMM, so one optimized kernel replaces the per-triplet gathers of the
forward pass and the per-triplet scatter-adds of the backward pass.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor
from repro.sparse.backends import (
    DEFAULT_BACKEND,
    SparseLike,
    SpMMBackend,
    get_backend,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def _transpose(A: SparseLike):
    if isinstance(A, (COOMatrix, CSRMatrix)):
        return A.T
    if sp.issparse(A):
        return A.T.tocsr()
    raise TypeError(f"expected a sparse matrix, got {type(A)!r}")


def spmm(
    A: SparseLike,
    X: Tensor,
    backend: Union[str, SpMMBackend] = DEFAULT_BACKEND,
    A_t: Optional[SparseLike] = None,
) -> Tensor:
    """Differentiable ``A @ X`` where ``A`` is sparse and constant.

    Parameters
    ----------
    A:
        Sparse operand (COO, CSR, or SciPy matrix) of shape ``(M, K)``.
    X:
        Dense tensor of shape ``(K, d)`` (typically the stacked embedding
        matrix).  Gradients flow into ``X`` only.
    backend:
        Name of (or handle to) a registered SpMM backend.
    A_t:
        Optional pre-transposed ``A``.  The trainer caches this so repeated
        backward passes do not pay the transpose each step.

    Returns
    -------
    Tensor of shape ``(M, d)`` participating in the autograd tape.
    """
    kernel = get_backend(backend)
    X_t = X if isinstance(X, Tensor) else Tensor(np.asarray(X))
    out_data = kernel(A, X_t.data)

    transposed = A_t

    def backward(grad: np.ndarray) -> None:
        nonlocal transposed
        if not X_t.requires_grad:
            return
        if transposed is None:
            transposed = _transpose(A)
        X_t.accumulate_grad(kernel(transposed, grad))

    return Tensor._make(out_data, (X_t,), backward, "spmm")


def spmm_t(
    A: SparseLike,
    X: Tensor,
    backend: Union[str, SpMMBackend] = DEFAULT_BACKEND,
) -> Tensor:
    """Differentiable ``A^T @ X`` (convenience wrapper around :func:`spmm`)."""
    return spmm(_transpose(A), X, backend=backend, A_t=A)
