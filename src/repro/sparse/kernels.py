"""Compiled/fused hot-path kernels (numba when importable, blocked numpy always).

The three inner loops that dominate a training step — the incidence SpMM
forward, its row-sparse backward, and the margin-ranking loss — all stream a
handful of arrays once.  The generic backends pay for that streaming several
times over: every gather materialises an ``(nnz, d)`` temporary, the backward
materialises the contribution matrix *and* a sorted copy of it, and the loss
walks the batch four times (sub, add, relu, mean).  This module provides the
fused alternatives the ``"compiled"`` backend is built from:

* with **numba** importable, ``@njit(cache=True)`` kernels run each loop in a
  single compiled pass (one traversal, no temporaries);
* without numba, **cache-blocked** pure-numpy versions process rows in blocks
  small enough to stay in cache, so every temporary is block-sized instead of
  batch-sized.  The numpy paths are bit-identical to the reference kernels
  (same elementwise operations in the same order — blocking only changes
  *where* the partial results live, not the floating-point schedule), which
  is what the parity suite asserts.

numba is an optional dependency: nothing in this module imports it at call
time when it is absent, and every consumer falls back to the numpy path.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default CI environment
    njit = None
    HAVE_NUMBA = False


#: Rows per block for the cache-blocked numpy kernels: sized so one block of
#: gathered rows plus the output block (~512 KB at float64) sits inside a
#: typical L2 cache.
BLOCK_BYTES = 1 << 19


def block_rows(dim: int, itemsize: int = 8) -> int:
    """Rows per cache block for a ``dim``-wide matrix (at least 64)."""
    return max(64, BLOCK_BYTES // max(1, int(dim) * int(itemsize)))


# --------------------------------------------------------------------------- #
# Fixed-nnz SpMM forward
# --------------------------------------------------------------------------- #
if HAVE_NUMBA:  # pragma: no cover - compiled path, exercised by the numba CI job

    @njit(cache=True)
    def _numba_fixed_spmm(cols, vals, X, out):
        m, k = cols.shape
        d = X.shape[1]
        for i in range(m):
            for j in range(k):
                v = vals[i, j]
                c = cols[i, j]
                for col in range(d):
                    out[i, col] += v * X[c, col]

    @njit(cache=True)
    def _numba_rowsparse_bwd(sorted_cols, sorted_rows, sorted_vals, grad,
                             unique, packed):
        nnz = sorted_cols.shape[0]
        d = grad.shape[1]
        pos = -1
        last = np.int64(-1)
        for e in range(nnz):
            c = sorted_cols[e]
            if c != last:
                pos += 1
                unique[pos] = c
                last = c
            v = sorted_vals[e]
            r = sorted_rows[e]
            for j in range(d):
                packed[pos, j] += v * grad[r, j]

    @njit(cache=True)
    def _numba_margin_fused(pos_scores, neg_scores, margin, mask):
        n = pos_scores.shape[0]
        total = 0.0
        for i in range(n):
            v = pos_scores[i] - neg_scores[i] + margin
            if v > 0.0:
                mask[i] = True
                total += v
            else:
                mask[i] = False
        return total


def fixed_spmm(cols: np.ndarray, vals: np.ndarray, X: np.ndarray,
               dtype: np.dtype) -> np.ndarray:
    """``out[i] = Σ_j vals[i, j] · X[cols[i, j]]`` for a constant-nnz pattern.

    Dispatches to the numba kernel when available, otherwise to the
    cache-blocked numpy kernel.  ``X`` may be 1-D (treated as width-1).
    """
    squeeze = X.ndim == 1
    X2 = X[:, None] if squeeze else X
    if HAVE_NUMBA:
        X2 = np.ascontiguousarray(X2, dtype=dtype)
        out = np.zeros((cols.shape[0], X2.shape[1]), dtype=dtype)
        _numba_fixed_spmm(cols, vals.astype(dtype, copy=False), X2, out)
    else:
        out = blocked_fixed_spmm(cols, vals, X2, dtype)
    return out[:, 0] if squeeze else out


def blocked_fixed_spmm(cols: np.ndarray, vals: np.ndarray, X: np.ndarray,
                       dtype: np.dtype) -> np.ndarray:
    """Cache-blocked numpy fallback for :func:`fixed_spmm` (2-D ``X`` only).

    Performs the same ``k`` gathers and ``k − 1`` adds as the unblocked fused
    kernel — bit-identical outputs — but every gathered temporary is
    block-sized, so the working set of one block iteration stays in cache
    instead of streaming ``k`` full ``(m, d)`` temporaries through memory.
    """
    m, k = cols.shape
    d = X.shape[1]
    vals = vals.astype(dtype, copy=False)
    out = np.empty((m, d), dtype=dtype)
    step = block_rows(d, np.dtype(dtype).itemsize)
    for start in range(0, m, step):
        stop = min(m, start + step)
        sl = slice(start, stop)
        np.multiply(vals[sl, 0:1], X[cols[sl, 0]], out=out[sl])
        for j in range(1, k):
            out[sl] += vals[sl, j:j + 1] * X[cols[sl, j]]
    return out


# --------------------------------------------------------------------------- #
# Fused row-sparse backward (gather + scale + coalesce in one schedule)
# --------------------------------------------------------------------------- #
def rowsparse_bwd(cols: np.ndarray, rows: np.ndarray, vals: np.ndarray,
                  grad: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Fused ``A^T @ grad`` in coalesced row-sparse form.

    Returns ``(unique_cols, packed_rows)`` — the
    :class:`~repro.sparse.rowsparse.RowSparseGrad` payload.  The reference
    path materialises the full ``(nnz, d)`` contribution matrix and then a
    *second* sorted copy of it inside ``coalesce_rows``; here the sort
    permutation is applied to the index arrays first, so the contributions are
    computed directly in coalescing order (one ``(nnz, d)`` temporary instead
    of two) and — with numba — never materialised at all: the compiled kernel
    fuses the gather, the scale, and the segment-sum into one pass.
    """
    order = np.argsort(cols, kind="stable")
    sorted_cols = cols[order]
    sorted_rows = rows[order]
    sorted_vals = vals[order].astype(grad.dtype, copy=False)
    if sorted_cols.size == 0:
        return sorted_cols, np.empty((0, grad.shape[1]), dtype=grad.dtype)
    if HAVE_NUMBA and grad.ndim == 2:
        n_unique = 1 + int(np.count_nonzero(sorted_cols[1:] != sorted_cols[:-1]))
        unique = np.empty(n_unique, dtype=np.int64)
        packed = np.zeros((n_unique, grad.shape[1]), dtype=grad.dtype)
        _numba_rowsparse_bwd(sorted_cols, sorted_rows, sorted_vals,
                             np.ascontiguousarray(grad), unique, packed)
        return unique, packed
    contributions = sorted_vals[:, None] * grad[sorted_rows]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_cols[1:] != sorted_cols[:-1])))
    unique = sorted_cols[boundaries]
    packed = np.add.reduceat(contributions, boundaries, axis=0)
    return unique, packed


# --------------------------------------------------------------------------- #
# Fused margin-ranking loss (forward + backward mask in one pass)
# --------------------------------------------------------------------------- #
def margin_loss_forward(pos: np.ndarray, neg: np.ndarray, margin: float
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """``(relu(pos − neg + margin), mask)`` computed in one batch pass.

    The mask is the backward pass: ``d/d pos = mask``, ``d/d neg = −mask``
    (scaled by the reduction).  The op sequence mirrors the reference exactly
    (same subtract, add, compare, multiply), so the fused loss is bit-identical
    to the unfused one.
    """
    pre = pos - neg + margin
    mask = pre > 0
    return pre * mask, mask


def margin_loss_sum(pos: np.ndarray, neg: np.ndarray, margin: float
                    ) -> Tuple[float, np.ndarray]:
    """``(Σ relu(pos − neg + margin), mask)`` — the reduced forward.

    With numba the subtract, hinge, mask write, and sum run as a single
    compiled loop over the batch (no intermediate arrays at all); the numpy
    path computes the same reduction from :func:`margin_loss_forward`'s
    output, keeping bit-identity with the reference ``.sum()``.
    """
    if HAVE_NUMBA and pos.ndim == 1:  # pragma: no cover - numba CI job
        mask = np.empty(pos.shape[0], dtype=np.bool_)
        pos64 = np.ascontiguousarray(pos, dtype=np.float64)
        neg64 = np.ascontiguousarray(neg, dtype=np.float64)
        total = _numba_margin_fused(pos64, neg64, float(margin), mask)
        return float(total), mask
    raw, mask = margin_loss_forward(pos, neg, margin)
    return raw.sum(), mask


def margin_loss_flops(n: int) -> int:
    """Analytic FLOPs of one fused margin-loss evaluation over ``n`` pairs."""
    # sub + add + compare + mask-multiply + sum
    return int(5 * n)
