"""Sparse-matrix containers and kernels.

This package provides everything the SpTransX formulation needs on the sparse
side:

* :class:`COOMatrix` / :class:`CSRMatrix` — light-weight sparse containers
  mirroring the two formats the paper uses (COO for DGL g-SpMM, CSR for
  iSpLib).
* :mod:`repro.sparse.backends` — pluggable SpMM kernels (SciPy compiled CSR
  kernel, a pure-NumPy reference, and a fused gather kernel specialised for
  incidence matrices with a fixed number of non-zeros per row).
* :func:`spmm` — the autograd-aware SpMM whose backward is another SpMM with
  the transposed operand (paper Appendix G); with ``sparse_grad=True`` the
  backward emits a :class:`RowSparseGrad` covering only the touched rows.
* :class:`RowSparseGrad` — the row-sparse gradient container consumed by the
  optimizers' scatter-update paths (see ``repro.sparse.rowsparse``).
* :mod:`repro.sparse.incidence` — builders for the ``ht`` (head − tail) and
  ``hrt`` (head + relation − tail) incidence matrices of Section 4.2.
* :mod:`repro.sparse.semiring` — semiring SpMM generalisation used to express
  DistMult / ComplEx / RotatE (paper Appendix D).
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.backends import (
    available_backends,
    get_backend,
    register_backend,
    SpMMBackend,
)
from repro.sparse.spmm import spmm, spmm_t
from repro.sparse.incidence import (
    build_ht_incidence,
    build_hrt_incidence,
    IncidenceBuilder,
)
from repro.sparse.rowsparse import RowSparseGrad, coalesce_rows
from repro.sparse.semiring import Semiring, SEMIRINGS, semiring_spmm

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "RowSparseGrad",
    "coalesce_rows",
    "available_backends",
    "get_backend",
    "register_backend",
    "SpMMBackend",
    "spmm",
    "spmm_t",
    "build_ht_incidence",
    "build_hrt_incidence",
    "IncidenceBuilder",
    "Semiring",
    "SEMIRINGS",
    "semiring_spmm",
]
