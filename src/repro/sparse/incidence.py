"""Incidence-matrix builders (paper Section 4.2).

Two sparse layouts turn a batch of triplets into one SpMM operand:

* **ht** — ``A ∈ {−1,0,+1}^{M×N}`` with ``+1`` at the head column and ``−1``
  at the tail column of each row; ``A @ E`` yields the per-triplet
  ``head − tail`` vectors (used by TransR and TransH).
* **hrt** — ``A ∈ {−1,0,+1}^{M×(N+R)}`` which additionally places ``+1`` at
  column ``N + relation``; multiplying by the vertically stacked
  ``[E_entities; E_relations]`` matrix yields ``head + relation − tail``
  (used by TransE and TorusE).

Every row therefore holds exactly two (ht) or three (hrt) non-zeros, so the
matrices stay extremely sparse regardless of how dense the underlying graph is
(paper Appendix B).
"""

from __future__ import annotations

from typing import Literal, Optional, Union

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_triples

Format = Literal["coo", "csr"]
SparseMat = Union[COOMatrix, CSRMatrix]


def _finalize(coo: COOMatrix, fmt: Format) -> SparseMat:
    if fmt == "coo":
        return coo
    if fmt == "csr":
        return coo.tocsr()
    raise ValueError(f"format must be 'coo' or 'csr', got {fmt!r}")


def build_ht_incidence(
    triples: np.ndarray,
    n_entities: int,
    fmt: Format = "csr",
) -> SparseMat:
    """Build the ``(head − tail)`` incidence matrix for a batch of triplets.

    Parameters
    ----------
    triples:
        Integer array of shape ``(M, 3)`` holding ``(head, relation, tail)``
        indices.  The relation column is ignored here.
    n_entities:
        Number of entity rows in the embedding matrix (columns of ``A``).
    fmt:
        Output format; ``"csr"`` (default, CPU kernels) or ``"coo"``.

    Returns
    -------
    Sparse matrix of shape ``(M, n_entities)`` with exactly two non-zeros per
    row (they cancel when ``head == tail``, which is the mathematically
    correct ``h − t = 0``).
    """
    triples = check_triples(triples, n_entities=n_entities)
    m = triples.shape[0]
    rows = np.repeat(np.arange(m, dtype=np.int64), 2)
    cols = np.empty(2 * m, dtype=np.int64)
    cols[0::2] = triples[:, 0]
    cols[1::2] = triples[:, 2]
    vals = np.empty(2 * m, dtype=np.float64)
    vals[0::2] = 1.0
    vals[1::2] = -1.0
    coo = COOMatrix(rows, cols, vals, (m, int(n_entities)))
    return _finalize(coo, fmt)


def build_hrt_incidence(
    triples: np.ndarray,
    n_entities: int,
    n_relations: int,
    fmt: Format = "csr",
) -> SparseMat:
    """Build the ``(head + relation − tail)`` incidence matrix for a batch.

    The relation column index is offset by ``n_entities`` so the matrix can be
    multiplied against the vertically stacked ``[E_entities; E_relations]``
    embedding matrix (paper Section 4.2.2 and Figure 3b).

    Returns
    -------
    Sparse matrix of shape ``(M, n_entities + n_relations)`` with exactly
    three non-zeros per row.
    """
    triples = check_triples(triples, n_entities=n_entities, n_relations=n_relations)
    m = triples.shape[0]
    rows = np.repeat(np.arange(m, dtype=np.int64), 3)
    cols = np.empty(3 * m, dtype=np.int64)
    cols[0::3] = triples[:, 0]
    cols[1::3] = triples[:, 1] + int(n_entities)
    cols[2::3] = triples[:, 2]
    vals = np.empty(3 * m, dtype=np.float64)
    vals[0::3] = 1.0
    vals[1::3] = 1.0
    vals[2::3] = -1.0
    coo = COOMatrix(rows, cols, vals, (m, int(n_entities) + int(n_relations)))
    return _finalize(coo, fmt)


class IncidenceBuilder:
    """Stateful builder that also caches transposes for the backward SpMM.

    The trainer asks this object for a fresh incidence matrix per minibatch;
    the builder remembers the dataset dimensions, the output format, and hands
    back ``(A, A^T)`` pairs so the backward pass never re-transposes.

    Parameters
    ----------
    n_entities, n_relations:
        Vocabulary sizes of the knowledge graph.
    fmt:
        Sparse format handed to the SpMM backend (``"csr"`` for the SciPy /
        fused CPU kernels, ``"coo"`` for COO-oriented kernels, mirroring the
        paper's iSpLib-CSR / DGL-COO split).
    """

    def __init__(self, n_entities: int, n_relations: int, fmt: Format = "csr") -> None:
        if n_entities <= 0:
            raise ValueError(f"n_entities must be positive, got {n_entities}")
        if n_relations <= 0:
            raise ValueError(f"n_relations must be positive, got {n_relations}")
        if fmt not in ("coo", "csr"):
            raise ValueError(f"format must be 'coo' or 'csr', got {fmt!r}")
        self.n_entities = int(n_entities)
        self.n_relations = int(n_relations)
        self.fmt: Format = fmt

    @property
    def stacked_dim(self) -> int:
        """Number of columns of the ``hrt`` incidence matrix (``N + R``)."""
        return self.n_entities + self.n_relations

    def ht(self, triples: np.ndarray, with_transpose: bool = False):
        """Build the ``ht`` matrix (optionally with its transpose)."""
        A = build_ht_incidence(triples, self.n_entities, fmt=self.fmt)
        if not with_transpose:
            return A
        return A, A.T

    def hrt(self, triples: np.ndarray, with_transpose: bool = False):
        """Build the ``hrt`` matrix (optionally with its transpose)."""
        A = build_hrt_incidence(triples, self.n_entities, self.n_relations, fmt=self.fmt)
        if not with_transpose:
            return A
        return A, A.T

    def describe(self, triples: np.ndarray) -> dict:
        """Return sparsity statistics for the ``hrt`` matrix of ``triples``.

        Useful for the Appendix-B style report: the density depends only on
        the batch size and vocabulary, never on graph structure.
        """
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        m = triples.shape[0]
        cols = self.stacked_dim
        nnz = 3 * m
        return {
            "rows": m,
            "cols": cols,
            "nnz": nnz,
            "nnz_per_row": 3,
            "density": nnz / (m * cols) if m and cols else 0.0,
        }
