"""Entity-range partitioning shared by the nn, data, and serving layers.

A partitioned model splits its ``(n_entities, d)`` table into ``P`` contiguous
row buckets.  The same arithmetic — which bucket does entity ``e`` live in,
what row range does bucket ``k`` cover — is needed by the embedding table
(:class:`~repro.nn.partitioned.PartitionedEmbedding`), the bucket-pair batch
schedule (:mod:`repro.data.partition_schedule`), and the checkpoint manifest,
so it lives in this tiny dependency-free module all three import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class EntityPartition:
    """Range partition of ``n_entities`` rows into ``n_partitions`` buckets.

    Bucket ``k`` holds rows ``[k * bucket_size, min((k + 1) * bucket_size,
    n_entities))``; every bucket except possibly the last has exactly
    ``bucket_size`` rows.
    """

    n_entities: int
    n_partitions: int

    def __post_init__(self) -> None:
        if self.n_entities <= 0:
            raise ValueError(f"n_entities must be positive, got {self.n_entities}")
        if not 1 <= self.n_partitions <= self.n_entities:
            raise ValueError(
                f"n_partitions must be in [1, n_entities={self.n_entities}], "
                f"got {self.n_partitions}"
            )
        # Ceil-sized buckets must all be non-empty: with e.g. n=5, P=4 the
        # bucket size is 2 and bucket 3 would start past the last row.  Reject
        # with the largest P that still fills every bucket.
        if (self.n_partitions - 1) * self.bucket_size >= self.n_entities:
            largest = -(-self.n_entities // self.bucket_size)
            raise ValueError(
                f"{self.n_partitions} partitions of {self.bucket_size} rows "
                f"cannot all be filled from {self.n_entities} entities; use "
                f"at most {largest} partitions"
            )

    @property
    def bucket_size(self) -> int:
        """Rows per bucket (the final bucket may hold fewer)."""
        return -(-self.n_entities // self.n_partitions)

    def bucket_of(self, entity_ids: np.ndarray) -> np.ndarray:
        """Bucket index of each entity id (vectorised)."""
        return np.asarray(entity_ids, dtype=np.int64) // self.bucket_size

    def bucket_range(self, bucket: int) -> Tuple[int, int]:
        """Half-open row range ``[lo, hi)`` covered by ``bucket``."""
        if not 0 <= bucket < self.n_partitions:
            raise IndexError(
                f"bucket {bucket} out of range [0, {self.n_partitions})"
            )
        lo = bucket * self.bucket_size
        return lo, min(lo + self.bucket_size, self.n_entities)

    def bucket_rows(self, bucket: int) -> int:
        """Number of rows in ``bucket``."""
        lo, hi = self.bucket_range(bucket)
        return hi - lo

    def ranges(self) -> List[Tuple[int, int]]:
        """All bucket row ranges, in bucket order."""
        return [self.bucket_range(k) for k in range(self.n_partitions)]

    def to_dict(self) -> dict:
        return {"n_entities": self.n_entities, "n_partitions": self.n_partitions}

    @classmethod
    def from_dict(cls, payload: dict) -> "EntityPartition":
        return cls(n_entities=int(payload["n_entities"]),
                   n_partitions=int(payload["n_partitions"]))
