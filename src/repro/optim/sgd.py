"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Plain SGD: ``p <- p - lr * (grad + weight_decay * p)`` with momentum.

    Row-sparse gradients take a scatter update over only the touched rows,
    which is *exactly* equivalent to the dense step (untouched rows have zero
    gradient, so dense SGD leaves them unchanged anyway).  Momentum and weight
    decay couple every row into every step, so those configurations fall back
    to the dense path.

    Parameters
    ----------
    params:
        Parameters to optimise.
    lr:
        Learning rate.
    momentum:
        Classical momentum coefficient (0 disables the velocity buffer).
    weight_decay:
        L2 penalty coefficient added to the gradient.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            state = self._param_state(param)
            velocity = state.get("velocity")
            if velocity is None:
                velocity = np.zeros_like(param.data)
                state["velocity"] = velocity
            velocity *= self.momentum
            velocity += grad
            grad = velocity
        param.data -= self.lr * grad
        self._count_update_flops(param, 2 + (2 if self.momentum else 0))

    def _update_sparse(self, param: Parameter, grad) -> None:
        if self.momentum or self.weight_decay:
            # Both touch every row every step; densify for exactness.
            super()._update_sparse(param, grad)
            return
        param.data[grad.indices] -= self.lr * grad.values
        self._count_sparse_update_flops(param, grad.values.size, 2)
