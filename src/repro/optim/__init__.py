"""Optimizers and learning-rate schedulers.

The paper trains every framework with the same optimiser configuration
(learning rate 0.0004) and, for the accuracy-parity study in Appendix E, adds
a learning-rate scheduler.  This package provides the optimisers the compared
frameworks use (SGD, Adam, Adagrad) plus simple schedulers.
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.adagrad import Adagrad
from repro.optim.lr_scheduler import (
    LRScheduler,
    StepLR,
    ExponentialLR,
    ReduceLROnPlateau,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "Adagrad",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "ReduceLROnPlateau",
]
