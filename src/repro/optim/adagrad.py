"""Adagrad optimizer (used by DGL-KE's default training recipe)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer


class Adagrad(Optimizer):
    """Adagrad with per-coordinate accumulated squared gradients.

    Row-sparse gradients update only the touched rows of both the parameter
    and the accumulator.  This is *exactly* equivalent to the dense step: a
    zero gradient row adds zero to ``sum_sq`` and produces a zero update, so
    skipping untouched rows changes nothing but the cost.

    Parameters
    ----------
    params:
        Parameters to optimise.
    lr:
        Learning rate.
    eps:
        Denominator fuzz factor.
    initial_accumulator:
        Starting value of the squared-gradient accumulator.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 eps: float = 1e-10, initial_accumulator: float = 0.0) -> None:
        super().__init__(params, lr)
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if initial_accumulator < 0:
            raise ValueError(f"initial_accumulator must be non-negative, got {initial_accumulator}")
        self.eps = float(eps)
        self.initial_accumulator = float(initial_accumulator)

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        state = self._param_state(param)
        if "sum_sq" not in state:
            state["sum_sq"] = np.full_like(param.data, self.initial_accumulator)
        sum_sq = state["sum_sq"]
        sum_sq += grad * grad
        param.data -= self.lr * grad / (np.sqrt(sum_sq) + self.eps)
        self._count_update_flops(param, 6)

    def _update_sparse(self, param: Parameter, grad) -> None:
        state = self._param_state(param)
        if "sum_sq" not in state:
            state["sum_sq"] = np.full_like(param.data, self.initial_accumulator)
        sum_sq = state["sum_sq"]
        rows, vals = grad.indices, grad.values
        touched = sum_sq[rows] + vals * vals
        sum_sq[rows] = touched
        param.data[rows] -= self.lr * vals / (np.sqrt(touched) + self.eps)
        self._count_sparse_update_flops(param, vals.size, 6)
