"""Learning-rate schedulers.

Appendix E of the paper equips the training loop with a learning-rate
scheduler when comparing final Hits@10; these schedulers drive the optimiser's
``set_lr`` between epochs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base scheduler: tracks epochs and rewrites ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer) -> None:
        if not isinstance(optimizer, Optimizer):
            raise TypeError(f"expected Optimizer, got {type(optimizer)!r}")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0
        self.history: List[float] = [optimizer.lr]

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self, metric: Optional[float] = None) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.last_epoch += 1
        lr = self.get_lr()
        self.optimizer.set_lr(lr)
        self.history.append(lr)
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.last_epoch // self.step_size))


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99) -> None:
        super().__init__(optimizer)
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** self.last_epoch)


class ReduceLROnPlateau(LRScheduler):
    """Halve (by ``factor``) the learning rate when a metric stops improving.

    ``step(metric)`` must be called with the monitored quantity (e.g. the
    epoch loss); ``patience`` epochs without improvement trigger a reduction.
    """

    def __init__(self, optimizer: Optimizer, factor: float = 0.5, patience: int = 5,
                 min_lr: float = 1e-8, mode: str = "min") -> None:
        super().__init__(optimizer)
        if not 0 < factor < 1:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        if patience < 0:
            raise ValueError(f"patience must be non-negative, got {patience}")
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.factor = float(factor)
        self.patience = int(patience)
        self.min_lr = float(min_lr)
        self.mode = mode
        self.best: Optional[float] = None
        self.num_bad_epochs = 0
        self.current_lr = optimizer.lr

    def _is_better(self, metric: float) -> bool:
        if self.best is None:
            return True
        return metric < self.best if self.mode == "min" else metric > self.best

    def get_lr(self) -> float:
        return self.current_lr

    def step(self, metric: Optional[float] = None) -> float:
        if metric is None:
            raise ValueError("ReduceLROnPlateau.step() requires the monitored metric")
        self.last_epoch += 1
        if self._is_better(float(metric)):
            self.best = float(metric)
            self.num_bad_epochs = 0
        else:
            self.num_bad_epochs += 1
            if self.num_bad_epochs > self.patience:
                self.current_lr = max(self.current_lr * self.factor, self.min_lr)
                self.num_bad_epochs = 0
        self.optimizer.set_lr(self.current_lr)
        self.history.append(self.current_lr)
        return self.current_lr
