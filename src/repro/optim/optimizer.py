"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.autograd.function import count_flops
from repro.nn.parameter import Parameter


class Optimizer:
    """Base class holding the parameter list and common bookkeeping.

    Parameters
    ----------
    params:
        Iterable of :class:`~repro.nn.parameter.Parameter` objects (typically
        ``model.parameters()``).
    lr:
        Learning rate; subclasses may expose more hyperparameters.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        for p in self.params:
            if not isinstance(p, Parameter):
                raise TypeError(f"expected Parameter, got {type(p)!r}")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}
        self._step_count = 0

    @property
    def step_count(self) -> int:
        """Number of completed optimisation steps."""
        return self._step_count

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient.

        Parameters holding a row-sparse gradient (see
        :class:`~repro.sparse.rowsparse.RowSparseGrad`) dispatch to
        :meth:`_update_sparse`, so per-step cost scales with the rows a batch
        touched; everything else takes the dense :meth:`_update` path.
        """
        for p in self.params:
            if not p.has_grad:
                continue
            sparse = p.sparse_grad
            if sparse is not None:
                self._update_sparse(p, sparse)
            else:
                self._update(p)
        self._step_count += 1

    def _update(self, param: Parameter) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _update_sparse(self, param: Parameter, grad) -> None:
        """Row-sparse update; the default densifies and reuses :meth:`_update`.

        Subclasses override this with a scatter update over ``grad.indices`` /
        ``grad.values`` when they can do better.  Reading ``param.grad`` here
        triggers the transparent densification, so unmodified third-party
        optimizers keep working with sparse-gradient models.
        """
        self._update(param)

    def _param_state(self, param: Parameter) -> Dict[str, np.ndarray]:
        """Per-parameter optimiser state (allocated on first use).

        Parameters that page their state to disk — the bucket parameters of a
        :class:`~repro.nn.partitioned.PartitionedEmbedding`, whose Adam /
        Adagrad moment slabs are evicted alongside their bucket — expose a
        ``restore_opt_state(optimizer, state)`` hook.  It is invoked exactly
        when a fresh state dict is allocated, so a bucket whose state was
        paged out resumes from its persisted buffers instead of silently
        restarting from zeros.
        """
        key = id(param)
        if key not in self.state:
            self.state[key] = {}
            restore = getattr(param, "restore_opt_state", None)
            if restore is not None:
                restore(self, self.state[key])
        return self.state[key]

    def set_lr(self, lr: float) -> None:
        """Change the learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def _count_update_flops(self, param: Parameter, flops_per_element: int) -> None:
        count_flops(f"optim[{type(self).__name__}]", flops_per_element * param.size,
                    bytes_streamed=2 * param.nbytes)

    def _count_sparse_update_flops(self, param: Parameter, n_elements: int,
                                   flops_per_element: int) -> None:
        """FLOP/byte accounting for a scatter update touching ``n_elements``.

        Bytes reflect the read-modify-write of only the touched rows — the
        figure the cache-model benchmark compares against the dense path's
        full-table rewrite.
        """
        count_flops(f"optim[{type(self).__name__}:rowsparse]",
                    flops_per_element * n_elements,
                    bytes_streamed=2 * n_elements * param.data.itemsize,
                    bytes_unique=2 * n_elements * param.data.itemsize)
