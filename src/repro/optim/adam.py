"""Adam optimizer (the optimiser used by the paper's training scripts)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction.

    Row-sparse gradients take a *lazy* update in the style of PyTorch's
    ``SparseAdam``: only the rows a batch touched have their moments decayed
    and their bias correction advanced, tracked by a per-row step counter.
    Untouched rows keep stale moments instead of decaying toward zero, so the
    trajectory differs from dense Adam by the (tiny) updates dense Adam would
    apply to zero-gradient rows — loss curves match within tolerance, not
    bit-for-bit.  Weight decay couples every row into every step and therefore
    falls back to the dense path.

    Parameters
    ----------
    params:
        Parameters to optimise.
    lr:
        Learning rate (the paper uses 4e-4 for every framework).
    betas:
        Exponential decay rates for the first and second moment estimates.
    eps:
        Denominator fuzz factor.
    weight_decay:
        Optional decoupled-style L2 penalty added to the gradient.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 4e-4,
                 betas: Tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        state = self._param_state(param)
        if "m" not in state:
            state["m"] = np.zeros_like(param.data)
            state["v"] = np.zeros_like(param.data)
        # The sparse path keeps "t" in sync on every step, so whenever
        # "row_t" exists "t" does too; a fresh parameter starts at 0.
        state.setdefault("t", 0)
        m, v = state["m"], state["v"]
        state["t"] += 1
        t = state["t"]
        row_t = state.get("row_t")
        if row_t is not None:
            # A dense step decays and bias-corrects every row at the global
            # step count; advance the per-row counters with it so a later
            # return to the sparse path does not undercount the decays.
            row_t.fill(t)
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * (grad * grad)
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self._count_update_flops(param, 10)

    def _update_sparse(self, param: Parameter, grad) -> None:
        if self.weight_decay:
            # Decay applies to every row every step; densify for correctness.
            super()._update_sparse(param, grad)
            return
        state = self._param_state(param)
        if "m" not in state:
            state["m"] = np.zeros_like(param.data)
            state["v"] = np.zeros_like(param.data)
        if "row_t" not in state:
            # Taking over from the dense path: every row has seen ``t`` steps.
            state["row_t"] = np.full(param.data.shape[0], int(state.get("t", 0)),
                                     dtype=np.int64)
        m, v, row_t = state["m"], state["v"], state["row_t"]
        rows, vals = grad.indices, grad.values
        row_t[rows] += 1
        t = row_t[rows]
        # Keep the dense step counter in sync (cheap: max over touched rows
        # only) so a later switch back to the dense path resumes with a bias
        # correction consistent with how far the moments have decayed.
        state["t"] = max(int(state.get("t", 0)), int(t.max(initial=0)))
        # Broadcast the per-row bias corrections over the value shape.
        expand = (slice(None),) + (None,) * (vals.ndim - 1)
        m_rows = self.beta1 * m[rows] + (1 - self.beta1) * vals
        v_rows = self.beta2 * v[rows] + (1 - self.beta2) * (vals * vals)
        m[rows] = m_rows
        v[rows] = v_rows
        m_hat = m_rows / (1 - self.beta1 ** t)[expand]
        v_hat = v_rows / (1 - self.beta2 ** t)[expand]
        param.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self._count_sparse_update_flops(param, vals.size, 10)
