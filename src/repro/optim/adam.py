"""Adam optimizer (the optimiser used by the paper's training scripts)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction.

    Parameters
    ----------
    params:
        Parameters to optimise.
    lr:
        Learning rate (the paper uses 4e-4 for every framework).
    betas:
        Exponential decay rates for the first and second moment estimates.
    eps:
        Denominator fuzz factor.
    weight_decay:
        Optional decoupled-style L2 penalty added to the gradient.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 4e-4,
                 betas: Tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        state = self._param_state(param)
        if "m" not in state:
            state["m"] = np.zeros_like(param.data)
            state["v"] = np.zeros_like(param.data)
            state["t"] = 0
        m, v = state["m"], state["v"]
        state["t"] += 1
        t = state["t"]
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * (grad * grad)
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self._count_update_flops(param, 10)
