"""Dense TransR baseline (fine-grained gather/scatter, TorchKGE-style)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.ops import bmm_vec, gather_rows
from repro.autograd.tensor import Tensor
from repro.models.base import TranslationalModel
from repro.nn import init
from repro.nn.embedding import Embedding
from repro.nn.parameter import Parameter
from repro.registry import register_model
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("transr", "dense", accepts_relation_dim=True, accepts_dissimilarity=True,
                supports_sparse_grads=True,
                formulation_tag="dense-gather+double-projection",
                default_dissimilarity="L2")
class DenseTransR(TranslationalModel):
    """TransR with per-operand gathers: head and tail are projected separately.

    The conventional implementation gathers ``h`` and ``t``, projects each with
    the gathered ``M_r`` (two batched matrix-vector products instead of the
    sparse path's one), and then forms ``M_r h + r − M_r t``.  This mirrors the
    larger intermediate footprint the paper measures for non-sparse TransR.

    Parameters
    ----------
    n_entities, n_relations, embedding_dim:
        Vocabulary sizes and the entity embedding width ``d``.
    relation_dim:
        Relation-space width ``k`` (defaults to ``embedding_dim``).
    dissimilarity:
        ``"L1"`` or ``"L2"``.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 relation_dim: int | None = None, dissimilarity: str = "L2",
                 rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim, dissimilarity)
        self.relation_dim = int(relation_dim) if relation_dim is not None else int(embedding_dim)
        if self.relation_dim <= 0:
            raise ValueError(f"relation_dim must be positive, got {relation_dim}")
        rng = new_rng(rng)
        self.entity_embeddings = Embedding(n_entities, embedding_dim, rng=rng)
        self.relation_embeddings = Embedding(n_relations, self.relation_dim, rng=rng)
        projections = Parameter(
            np.empty((n_relations, self.relation_dim, embedding_dim)), name="projections"
        )
        init.identity_stack_(projections)
        self.projections = projections

    def residuals(self, triples: np.ndarray) -> Tensor:
        """Per-triplet ``M_r h + r − M_r t`` from separate gathered blocks."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        h = self.entity_embeddings(triples[:, 0])
        t = self.entity_embeddings(triples[:, 2])
        rel_idx = triples[:, 1]
        r = self.relation_embeddings(rel_idx)
        mats = gather_rows(self.projections, rel_idx)
        h_proj = bmm_vec(mats, h)
        t_proj = bmm_vec(mats, t)
        return h_proj + r - t_proj

    def scores(self, triples: np.ndarray) -> Tensor:
        return self.dissimilarity(self.residuals(triples))

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.entity_embeddings.weight.data.copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.relation_embeddings.weight.data.copy()

    def projection_matrices(self) -> np.ndarray:
        """Snapshot of the per-relation projection stack ``(R, k, d)``."""
        return self.projections.data.copy()

    def normalize_parameters(self) -> None:
        """Constrain entity and relation embeddings to the unit L2 ball."""
        self.entity_embeddings.renormalize(max_norm=1.0, p=2)
        self.relation_embeddings.renormalize(max_norm=1.0, p=2)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["relation_dim"] = self.relation_dim
        cfg["formulation"] = "dense-gather+double-projection"
        return cfg
