"""Dense TransH baseline (fine-grained gather/scatter, TorchKGE-style)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.ops import normalize_rows, row_dot
from repro.autograd.tensor import Tensor
from repro.models.base import TranslationalModel
from repro.nn.embedding import Embedding
from repro.registry import register_model
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("transh", "dense", accepts_dissimilarity=True,
                supports_sparse_grads=True,
                formulation_tag="dense-gather+double-hyperplane",
                default_dissimilarity="L2")
class DenseTransH(TranslationalModel):
    """TransH with per-operand hyperplane projections.

    Head and tail are gathered and projected onto the relation hyperplane
    separately (``h_⊥ = h − (w·h)w`` and ``t_⊥ = t − (w·t)w``), producing the
    larger computational graph the paper attributes to non-sparse TransH.

    Parameters
    ----------
    n_entities, n_relations, embedding_dim:
        Vocabulary sizes and embedding width.
    dissimilarity:
        ``"L1"`` or ``"L2"``.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "L2", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim, dissimilarity)
        rng = new_rng(rng)
        self.entity_embeddings = Embedding(n_entities, embedding_dim, rng=rng)
        self.translations = Embedding(n_relations, embedding_dim, rng=rng)
        self.normals = Embedding(n_relations, embedding_dim, rng=rng)

    def residuals(self, triples: np.ndarray) -> Tensor:
        """Per-triplet ``h_⊥ + d_r − t_⊥`` with separate projections of h and t."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        h = self.entity_embeddings(triples[:, 0])
        t = self.entity_embeddings(triples[:, 2])
        rel_idx = triples[:, 1]
        d_r = self.translations(rel_idx)
        w_r = normalize_rows(self.normals(rel_idx))
        h_perp = h - w_r * row_dot(w_r, h).reshape(-1, 1)
        t_perp = t - w_r * row_dot(w_r, t).reshape(-1, 1)
        return h_perp + d_r - t_perp

    def scores(self, triples: np.ndarray) -> Tensor:
        return self.dissimilarity(self.residuals(triples))

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.entity_embeddings.weight.data.copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.translations.weight.data.copy()

    def normal_vectors(self) -> np.ndarray:
        """Unit-normalised hyperplane normals ``(R, d)``."""
        w = self.normals.weight.data
        return w / np.maximum(np.linalg.norm(w, axis=1, keepdims=True), 1e-12)

    def normalize_parameters(self) -> None:
        """Constrain entity embeddings to the unit ball and normals to unit norm."""
        self.entity_embeddings.renormalize(max_norm=1.0, p=2)
        w = self.normals.weight.data
        w /= np.maximum(np.linalg.norm(w, axis=1, keepdims=True), 1e-12)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "dense-gather+double-hyperplane"
        return cfg
