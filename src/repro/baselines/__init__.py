"""Dense gather/scatter baselines (the TorchKGE / DGL-KE / PyG computational pattern).

Each baseline computes exactly the same score function as its SpTransX
counterpart, but through the conventional path the paper compares against:
separate embedding tables for entities and relations, three (or more)
fine-grained row gathers per batch in the forward pass, and per-gather
scatter-add gradient kernels in the backward pass.  Keeping both families on
the same autograd engine isolates the formulation difference the paper
studies — sparse incidence SpMM versus fine-grained gather/scatter.
"""

from repro.baselines.transe import DenseTransE
from repro.baselines.transr import DenseTransR
from repro.baselines.transh import DenseTransH
from repro.baselines.toruse import DenseTorusE
from repro.baselines.transd import DenseTransD
from repro.baselines.semiring_models import DenseDistMult, DenseComplEx
from repro.registry import models_by_formulation

#: Legacy name → class mapping, snapshotted from ``repro.registry`` at import
#: time (each baseline class registers itself via ``@register_model``).  Models
#: registered later appear in the registry but not here — new code should use
#: ``repro.registry.get_entry``/``models_by_formulation`` directly.
DENSE_MODELS = models_by_formulation("dense")

__all__ = [
    "DenseTransE",
    "DenseTransR",
    "DenseTransH",
    "DenseTorusE",
    "DenseTransD",
    "DenseDistMult",
    "DenseComplEx",
    "DENSE_MODELS",
]
