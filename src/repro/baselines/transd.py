"""Dense TransD baseline.

TransD appears in the paper's profiling study (Figure 2) as one of the models
whose embedding-gradient computation dominates CPU time; it is included here
so the function-level profile benchmark covers the same model set.  TransD has
no published sparse formulation (head and tail use *different* dynamic
projections, so the ``ht`` trick does not apply), which is exactly why it only
exists in the dense family.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.ops import row_dot
from repro.autograd.tensor import Tensor
from repro.models.base import TranslationalModel
from repro.nn.embedding import Embedding
from repro.registry import register_model
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("transd", "dense", accepts_dissimilarity=True,
                supports_sparse_grads=True,
                formulation_tag="dense-gather+dynamic-mapping",
                default_dissimilarity="L2")
class DenseTransD(TranslationalModel):
    """TransD with dynamic mapping vectors for entities and relations.

    Using equal entity and relation dimensions, the projection simplifies to
    ``x_⊥ = x + (x_p · x) r_p`` where ``x_p`` and ``r_p`` are the entity and
    relation mapping vectors.

    Parameters
    ----------
    n_entities, n_relations, embedding_dim:
        Vocabulary sizes and (shared) embedding width.
    dissimilarity:
        ``"L1"`` or ``"L2"``.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "L2", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim, dissimilarity)
        rng = new_rng(rng)
        self.entity_embeddings = Embedding(n_entities, embedding_dim, rng=rng)
        self.entity_projections = Embedding(n_entities, embedding_dim, rng=rng)
        self.relation_embeddings = Embedding(n_relations, embedding_dim, rng=rng)
        self.relation_projections = Embedding(n_relations, embedding_dim, rng=rng)

    def residuals(self, triples: np.ndarray) -> Tensor:
        """Per-triplet ``h_⊥ + r − t_⊥`` with dynamic per-triplet projections."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        h = self.entity_embeddings(triples[:, 0])
        t = self.entity_embeddings(triples[:, 2])
        h_p = self.entity_projections(triples[:, 0])
        t_p = self.entity_projections(triples[:, 2])
        rel_idx = triples[:, 1]
        r = self.relation_embeddings(rel_idx)
        r_p = self.relation_projections(rel_idx)
        h_perp = h + r_p * row_dot(h_p, h).reshape(-1, 1)
        t_perp = t + r_p * row_dot(t_p, t).reshape(-1, 1)
        return h_perp + r - t_perp

    def scores(self, triples: np.ndarray) -> Tensor:
        return self.dissimilarity(self.residuals(triples))

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.entity_embeddings.weight.data.copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.relation_embeddings.weight.data.copy()

    def normalize_parameters(self) -> None:
        """Constrain entity and relation embeddings to the unit L2 ball."""
        self.entity_embeddings.renormalize(max_norm=1.0, p=2)
        self.relation_embeddings.renormalize(max_norm=1.0, p=2)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "dense-gather+dynamic-mapping"
        return cfg
