"""Dense TorusE baseline (fine-grained gather/scatter, TorchKGE-style)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.transe import DenseTransE
from repro.registry import register_model


@register_model("toruse", "dense", accepts_dissimilarity=True,
                supports_sparse_grads=True, formulation_tag="dense-gather-torus",
                default_dissimilarity="torus_L2")
class DenseTorusE(DenseTransE):
    """TorusE scored with separate gathers and the toroidal dissimilarity."""

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "torus_L2", rng=None) -> None:
        if not dissimilarity.startswith("torus"):
            raise ValueError(
                f"TorusE requires a toroidal dissimilarity, got {dissimilarity!r}"
            )
        super().__init__(n_entities, n_relations, embedding_dim,
                         dissimilarity=dissimilarity, rng=rng)

    def _reduce(self, diff: np.ndarray) -> np.ndarray:
        frac = diff - np.floor(diff)
        dist = np.minimum(frac, 1.0 - frac)
        if self.dissimilarity_name == "torus_L1":
            return dist.sum(axis=-1)
        return (dist ** 2).sum(axis=-1)

    def normalize_parameters(self) -> None:
        """Wrap embeddings into [0, 1): TorusE works on fractional parts."""
        np.mod(self.entity_embeddings.weight.data, 1.0,
               out=self.entity_embeddings.weight.data)
        np.mod(self.relation_embeddings.weight.data, 1.0,
               out=self.relation_embeddings.weight.data)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "dense-gather-torus"
        return cfg
