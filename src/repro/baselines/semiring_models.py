"""Dense DistMult / ComplEx baselines (gather-based bilinear scoring).

These mirror :mod:`repro.models.semiring_models` but compute the products from
separately gathered head / relation / tail blocks, matching how TorchKGE and
PyKEEN implement bilinear models.  They exist so the Appendix-D benchmark can
compare the semiring-SpMM path against the conventional path on identical
score functions.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.tensor import Tensor
from repro.models.base import KGEModel
from repro.nn.embedding import Embedding
from repro.registry import register_model
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("distmult", "dense", supports_sparse_grads=True,
                formulation_tag="dense-gather-bilinear")
class DenseDistMult(KGEModel):
    """DistMult scored from three gathered blocks: ``sum_j h_j r_j t_j``."""

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int, rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim)
        rng = new_rng(rng)
        self.entity_embeddings = Embedding(n_entities, embedding_dim, rng=rng)
        self.relation_embeddings = Embedding(n_relations, embedding_dim, rng=rng)

    def plausibility(self, triples: np.ndarray) -> Tensor:
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        h = self.entity_embeddings(triples[:, 0])
        r = self.relation_embeddings(triples[:, 1])
        t = self.entity_embeddings(triples[:, 2])
        return (h * r * t).sum(axis=-1)

    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity convention: negated plausibility."""
        return -self.plausibility(triples)

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.entity_embeddings.weight.data.copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.relation_embeddings.weight.data.copy()

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "dense-gather-bilinear"
        return cfg


@register_model("complex", "dense", supports_sparse_grads=True,
                formulation_tag="dense-gather-complex")
class DenseComplEx(KGEModel):
    """ComplEx scored from gathered real/imaginary blocks."""

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int, rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim)
        rng = new_rng(rng)
        self.entity_real = Embedding(n_entities, embedding_dim, rng=rng)
        self.entity_imag = Embedding(n_entities, embedding_dim, rng=rng)
        self.relation_real = Embedding(n_relations, embedding_dim, rng=rng)
        self.relation_imag = Embedding(n_relations, embedding_dim, rng=rng)

    def plausibility(self, triples: np.ndarray) -> Tensor:
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        h_idx, r_idx, t_idx = triples[:, 0], triples[:, 1], triples[:, 2]
        h_re, h_im = self.entity_real(h_idx), self.entity_imag(h_idx)
        r_re, r_im = self.relation_real(r_idx), self.relation_imag(r_idx)
        t_re, t_im = self.entity_real(t_idx), self.entity_imag(t_idx)
        # Re(<h, r, conj(t)>) expanded into four real products.
        real_part = (h_re * r_re * t_re
                     - h_im * r_im * t_re
                     + h_re * r_im * t_im
                     + h_im * r_re * t_im)
        return real_part.sum(axis=-1)

    def scores(self, triples: np.ndarray) -> Tensor:
        """Dissimilarity convention: negated plausibility."""
        return -self.plausibility(triples)

    def entity_embedding_matrix(self) -> np.ndarray:
        return np.concatenate(
            [self.entity_real.weight.data, self.entity_imag.weight.data], axis=1
        )

    def relation_embedding_matrix(self) -> np.ndarray:
        return np.concatenate(
            [self.relation_real.weight.data, self.relation_imag.weight.data], axis=1
        )

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "dense-gather-complex"
        return cfg
