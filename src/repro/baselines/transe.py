"""Dense TransE baseline (fine-grained gather/scatter, TorchKGE-style)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd.tensor import Tensor
from repro.models.base import TranslationalModel
from repro.nn.embedding import Embedding
from repro.registry import register_model
from repro.utils.seeding import new_rng
from repro.utils.validation import check_triples


@register_model("transe", "dense", accepts_dissimilarity=True,
                supports_sparse_grads=True, formulation_tag="dense-gather",
                default_dissimilarity="L2")
class DenseTransE(TranslationalModel):
    """TransE scored with three separate embedding gathers per batch.

    The forward pass gathers head, relation, and tail rows individually and
    computes ``h + r − t`` on the gathered copies; the backward pass runs one
    scatter-add per gather — the computational pattern the paper identifies as
    the training bottleneck (Figure 2).

    Parameters
    ----------
    n_entities, n_relations, embedding_dim:
        Vocabulary sizes and embedding width.
    dissimilarity:
        ``"L1"`` or ``"L2"``.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 dissimilarity: str = "L2", rng=None) -> None:
        super().__init__(n_entities, n_relations, embedding_dim, dissimilarity)
        rng = new_rng(rng)
        self.entity_embeddings = Embedding(n_entities, embedding_dim, rng=rng)
        self.relation_embeddings = Embedding(n_relations, embedding_dim, rng=rng)

    def residuals(self, triples: np.ndarray) -> Tensor:
        """Per-triplet ``h + r − t`` from three gathered blocks."""
        triples = check_triples(triples, n_entities=self.n_entities,
                                n_relations=self.n_relations)
        h = self.entity_embeddings(triples[:, 0])
        r = self.relation_embeddings(triples[:, 1])
        t = self.entity_embeddings(triples[:, 2])
        return h + r - t

    def scores(self, triples: np.ndarray) -> Tensor:
        return self.dissimilarity(self.residuals(triples))

    def score_all_tails(self, heads: np.ndarray, relations: np.ndarray,
                        chunk_size: int = 65536) -> np.ndarray:
        heads = np.asarray(heads, dtype=np.int64).reshape(-1)
        relations = np.asarray(relations, dtype=np.int64).reshape(-1)
        ent = self.entity_embeddings.weight.data
        rel = self.relation_embeddings.weight.data
        translated = ent[heads] + rel[relations]
        diff = translated[:, None, :] - ent[None, :, :]
        return self._reduce(diff)

    def score_all_heads(self, relations: np.ndarray, tails: np.ndarray,
                        chunk_size: int = 65536) -> np.ndarray:
        relations = np.asarray(relations, dtype=np.int64).reshape(-1)
        tails = np.asarray(tails, dtype=np.int64).reshape(-1)
        ent = self.entity_embeddings.weight.data
        rel = self.relation_embeddings.weight.data
        target = ent[tails] - rel[relations]
        diff = ent[None, :, :] - target[:, None, :]
        return self._reduce(diff)

    def _reduce(self, diff: np.ndarray) -> np.ndarray:
        if self.dissimilarity_name == "L1":
            return np.abs(diff).sum(axis=-1)
        return np.sqrt((diff ** 2).sum(axis=-1) + 1e-12)

    def entity_embedding_matrix(self) -> np.ndarray:
        return self.entity_embeddings.weight.data.copy()

    def relation_embedding_matrix(self) -> np.ndarray:
        return self.relation_embeddings.weight.data.copy()

    def normalize_parameters(self) -> None:
        """Project entity embeddings onto the unit L2 ball (TransE's constraint)."""
        self.entity_embeddings.renormalize(max_norm=1.0, p=2)

    def config(self) -> Dict[str, object]:
        cfg = super().config()
        cfg["formulation"] = "dense-gather"
        return cfg
