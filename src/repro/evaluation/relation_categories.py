"""Relation-category analysis: 1-to-1 / 1-to-N / N-to-1 / N-to-N breakdown.

The TransH and TransR papers (whose models SparseTransX accelerates) analyse
link-prediction quality per relation *mapping category*, because translation
models fail in characteristic ways on 1-to-N and N-to-N relations.  This
module classifies relations by their average tails-per-head / heads-per-tail
statistics (threshold 1.5, the convention from Bordes et al., 2013) and splits
any link-prediction result along those categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.dataset import KGDataset
from repro.evaluation.link_prediction import LinkPredictionResult, evaluate_link_prediction
from repro.evaluation.ranks import hits_at_k, mean_rank, mean_reciprocal_rank
from repro.models.base import KGEModel
from repro.utils.validation import check_triples

#: The classification threshold of Bordes et al. (2013).
CATEGORY_THRESHOLD = 1.5

CATEGORIES = ("1-1", "1-N", "N-1", "N-N")


def classify_relations(dataset: KGDataset, threshold: float = CATEGORY_THRESHOLD
                       ) -> Dict[int, str]:
    """Assign every relation to one of ``1-1``, ``1-N``, ``N-1``, ``N-N``.

    A relation is "1-to-N" when its average number of tails per (head,
    relation) pair exceeds ``threshold`` while heads per (relation, tail) does
    not, and symmetrically for "N-to-1"; relations exceeding the threshold in
    both directions are "N-to-N".  Relations absent from the training split
    default to "1-1".
    """
    triples = dataset.split.train
    categories: Dict[int, str] = {}
    for relation in range(dataset.n_relations):
        rel_triples = triples[triples[:, 1] == relation]
        if rel_triples.shape[0] == 0:
            categories[relation] = "1-1"
            continue
        heads = rel_triples[:, 0]
        tails = rel_triples[:, 2]
        tails_per_head = rel_triples.shape[0] / max(len(np.unique(heads)), 1)
        heads_per_tail = rel_triples.shape[0] / max(len(np.unique(tails)), 1)
        one_to_n = tails_per_head > threshold
        n_to_one = heads_per_tail > threshold
        if one_to_n and n_to_one:
            categories[relation] = "N-N"
        elif one_to_n:
            categories[relation] = "1-N"
        elif n_to_one:
            categories[relation] = "N-1"
        else:
            categories[relation] = "1-1"
    return categories


@dataclass
class CategoryBreakdown:
    """Link-prediction metrics split by relation mapping category."""

    per_category: Dict[str, Dict[str, float]]
    counts: Dict[str, int]
    overall: Dict[str, float]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record, shape-consistent with the other evaluators."""
        return {
            "task": "relation_categories",
            "per_category": self.per_category,
            "counts": self.counts,
            "overall": self.overall,
        }


def evaluate_by_relation_category(
    model: KGEModel,
    dataset: KGDataset,
    triples: Optional[np.ndarray] = None,
    ks: Sequence[int] = (1, 3, 10),
    known_triples: Optional[Set[Tuple[int, int, int]]] = None,
    batch_size: int = 64,
    threshold: float = CATEGORY_THRESHOLD,
) -> CategoryBreakdown:
    """Filtered link prediction broken down by relation category.

    Parameters
    ----------
    model:
        Trained model.
    dataset:
        Dataset providing the training statistics (for the classification) and,
        by default, the filter set and the test triples.
    triples:
        Evaluation triples; defaults to the dataset's test split.
    """
    triples = dataset.split.test if triples is None else triples
    triples = check_triples(triples, n_entities=model.n_entities,
                            n_relations=model.n_relations)
    if triples.shape[0] == 0:
        raise ValueError("no evaluation triples provided")
    known = known_triples if known_triples is not None else dataset.known_triples()
    result = evaluate_link_prediction(model, triples, known_triples=known, ks=ks,
                                      batch_size=batch_size)

    categories = classify_relations(dataset, threshold=threshold)
    labels = np.array([categories[int(r)] for r in triples[:, 1]])
    # head_ranks/tail_ranks are aligned with the evaluation triples.
    per_category: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    for category in CATEGORIES:
        mask = labels == category
        counts[category] = int(mask.sum())
        if not mask.any():
            continue
        ranks = np.concatenate([result.tail_ranks[mask], result.head_ranks[mask]])
        per_category[category] = {
            "mean_rank": mean_rank(ranks),
            "mrr": mean_reciprocal_rank(ranks),
            **{f"hits@{k}": hits_at_k(ranks, int(k)) for k in ks},
        }
    return CategoryBreakdown(
        per_category=per_category,
        counts=counts,
        overall=result.to_dict(),
    )
