"""Evaluation protocols: link prediction (MR / MRR / Hits@k) and triple classification."""

from repro.evaluation.ranks import compute_ranks, RankingProtocol
from repro.evaluation.link_prediction import (
    LinkPredictionResult,
    evaluate_link_prediction,
)
from repro.evaluation.classification import (
    TripleClassificationResult,
    evaluate_triple_classification,
)
from repro.evaluation.relation_categories import (
    CategoryBreakdown,
    classify_relations,
    evaluate_by_relation_category,
)
from repro.evaluation.evaluators import (
    EVALUATOR_PROTOCOLS,
    EvalReport,
    Evaluator,
    LinkPredictionEvaluator,
    RelationCategoryEvaluator,
    TripleClassificationEvaluator,
    build_evaluator,
)

__all__ = [
    "compute_ranks",
    "RankingProtocol",
    "LinkPredictionResult",
    "evaluate_link_prediction",
    "TripleClassificationResult",
    "evaluate_triple_classification",
    "CategoryBreakdown",
    "classify_relations",
    "evaluate_by_relation_category",
    "EVALUATOR_PROTOCOLS",
    "EvalReport",
    "Evaluator",
    "LinkPredictionEvaluator",
    "TripleClassificationEvaluator",
    "RelationCategoryEvaluator",
    "build_evaluator",
]
