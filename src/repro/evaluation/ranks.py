"""Ranking utilities shared by the link-prediction evaluator."""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Optional, Set, Tuple

import numpy as np


class RankingProtocol(str, Enum):
    """Raw vs filtered ranking (Bordes et al., 2013 terminology).

    ``FILTERED`` removes every *other* known-positive candidate from the
    ranking before locating the true entity, so a model is not penalised for
    ranking another correct answer above the query answer.
    """

    RAW = "raw"
    FILTERED = "filtered"


def compute_ranks(
    candidate_scores: np.ndarray,
    true_indices: np.ndarray,
    filter_indices: Optional[Iterable[np.ndarray]] = None,
) -> np.ndarray:
    """Rank of the true entity within each row of candidate scores.

    Parameters
    ----------
    candidate_scores:
        ``(B, N)`` dissimilarities — smaller is better.
    true_indices:
        ``(B,)`` index of the true entity per row.
    filter_indices:
        Optional per-row arrays of candidate indices to exclude (other known
        positives).  The true entity itself is never excluded.

    Returns
    -------
    ``(B,)`` integer ranks, 1-based (rank 1 = best).  Ties are resolved
    optimistically for candidates strictly better than the target and count
    ties at the target's score as half (the "realistic" convention), which
    avoids both over- and under-crediting degenerate constant scorers.
    """
    scores = np.asarray(candidate_scores, dtype=np.float64)
    true_indices = np.asarray(true_indices, dtype=np.int64).reshape(-1)
    if scores.ndim != 2 or scores.shape[0] != true_indices.shape[0]:
        raise ValueError(
            f"candidate_scores must be (B, N) aligned with true_indices, got "
            f"{scores.shape} and {true_indices.shape}"
        )
    b, n = scores.shape
    if true_indices.size and (true_indices.min() < 0 or true_indices.max() >= n):
        raise IndexError("true index out of candidate range")

    working = scores.copy()
    if filter_indices is not None:
        filter_list = list(filter_indices)
        if len(filter_list) != b:
            raise ValueError("filter_indices must provide one array per row")
        for row, exclude in enumerate(filter_list):
            if exclude is None or len(exclude) == 0:
                continue
            exclude = np.asarray(exclude, dtype=np.int64)
            exclude = exclude[exclude != true_indices[row]]
            working[row, exclude] = np.inf

    target = working[np.arange(b, dtype=np.int64), true_indices]
    better = (working < target[:, None]).sum(axis=1)
    ties = (working == target[:, None]).sum(axis=1) - 1  # exclude the target itself
    return (better + ties / 2.0 + 1).astype(np.float64)


def hits_at_k(ranks: np.ndarray, k: int) -> float:
    """Fraction of ranks that are <= k."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if ranks.size == 0:
        return float("nan")
    return float((ranks <= k).mean())


def mean_rank(ranks: np.ndarray) -> float:
    """Arithmetic mean of the ranks."""
    ranks = np.asarray(ranks, dtype=np.float64)
    return float(ranks.mean()) if ranks.size else float("nan")


def mean_reciprocal_rank(ranks: np.ndarray) -> float:
    """Mean of 1/rank."""
    ranks = np.asarray(ranks, dtype=np.float64)
    return float((1.0 / ranks).mean()) if ranks.size else float("nan")
