"""The common ``Evaluator`` protocol: one interface over every eval task.

Historically each evaluation protocol was a free function with its own
signature — ``evaluate_link_prediction(model, triples, known_triples, ...)``,
``evaluate_triple_classification(model, valid, test, ...)``,
``evaluate_by_relation_category(model, dataset, ...)`` — so every consumer
(the CLI, benchmarks, and now the experiment runner) re-implemented the
argument plumbing and invented its own result-dict shape.

This module unifies them behind one interface::

    evaluator = build_evaluator("link_prediction", ks=(1, 10))
    report = evaluator.run(model, dataset)   # -> EvalReport
    report.to_dict()                         # uniform JSON shape

Every evaluator consumes a trained model plus the full :class:`KGDataset`
(which knows its own splits and filter set) and returns an
:class:`EvalReport` whose ``to_dict`` nests the underlying result dataclass's
``to_dict`` under a ``metrics`` key, tagged with the protocol name and the
split(s) it consumed — which is what keeps an experiment's ``metrics.json``
uniform across protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple, Type

from repro.data.dataset import KGDataset
from repro.evaluation.classification import evaluate_triple_classification
from repro.evaluation.link_prediction import evaluate_link_prediction
from repro.evaluation.ranks import RankingProtocol
from repro.evaluation.relation_categories import (
    CATEGORY_THRESHOLD,
    evaluate_by_relation_category,
)
from repro.models.base import KGEModel
from repro.utils.seeding import new_rng


@dataclass
class EvalReport:
    """Uniform result wrapper shared by every evaluator.

    Attributes
    ----------
    protocol:
        The evaluator's registry name (``"link_prediction"``, ...).
    split:
        Which split(s) the metrics were computed on (``"test"``,
        ``"valid+test"``, ...).
    metrics:
        The underlying result dataclass's ``to_dict()`` payload.
    """

    protocol: str
    split: str
    metrics: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {"protocol": self.protocol, "split": self.split,
                "metrics": self.metrics}


class Evaluator:
    """Base class: ``run(model, dataset) -> EvalReport``.

    Subclasses set :attr:`protocol` (their registry name) and implement
    :meth:`run`; :meth:`check_dataset` lets callers fail fast — e.g. before
    spending a training run — when the dataset cannot support the protocol.
    """

    #: Registry name; also the key under which the report lands in metrics.json.
    protocol: str = ""

    def run(self, model: KGEModel, dataset: KGDataset) -> EvalReport:
        raise NotImplementedError

    def check_dataset(self, dataset: KGDataset) -> None:
        """Raise ``ValueError`` when ``dataset`` lacks the splits this needs."""

    @staticmethod
    def _require_split(dataset: KGDataset, split: str, protocol: str) -> None:
        if getattr(dataset.split, split).shape[0] == 0:
            raise ValueError(
                f"the {protocol!r} evaluation protocol needs a non-empty "
                f"{split!r} split, but dataset {dataset.name!r} has none; "
                f"raise the corresponding split fraction in the data spec"
            )


class LinkPredictionEvaluator(Evaluator):
    """Filtered/raw MR / MRR / Hits@k ranking (the paper's headline metric)."""

    protocol = "link_prediction"

    def __init__(self, ks: Sequence[int] = (1, 3, 10), filtered: bool = True,
                 batch_size: int = 64, split: str = "test") -> None:
        if split not in ("train", "valid", "test"):
            raise ValueError(f"split must be train/valid/test, got {split!r}")
        self.ks = tuple(int(k) for k in ks)
        self.filtered = bool(filtered)
        self.batch_size = int(batch_size)
        self.split = split

    def check_dataset(self, dataset: KGDataset) -> None:
        self._require_split(dataset, self.split, self.protocol)

    def run(self, model: KGEModel, dataset: KGDataset) -> EvalReport:
        self.check_dataset(dataset)
        triples = getattr(dataset.split, self.split)
        result = evaluate_link_prediction(
            model, triples,
            known_triples=dataset.known_triples() if self.filtered else None,
            ks=self.ks,
            protocol=(RankingProtocol.FILTERED if self.filtered
                      else RankingProtocol.RAW),
            batch_size=self.batch_size,
        )
        return EvalReport(protocol=self.protocol, split=self.split,
                          metrics=result.to_dict())


class TripleClassificationEvaluator(Evaluator):
    """Per-relation threshold classification (Socher et al., 2013 protocol).

    Thresholds are learned on the validation split and accuracy is reported on
    the test split; corruption noise is drawn from a sampler seeded with
    ``seed``, so repeated runs on the same model reproduce the same accuracy —
    which is what lets a reloaded artifact re-verify its ``metrics.json``.
    """

    protocol = "classification"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def check_dataset(self, dataset: KGDataset) -> None:
        self._require_split(dataset, "valid", self.protocol)
        self._require_split(dataset, "test", self.protocol)

    def run(self, model: KGEModel, dataset: KGDataset) -> EvalReport:
        self.check_dataset(dataset)
        result = evaluate_triple_classification(
            model, dataset.split.valid, dataset.split.test, rng=new_rng(self.seed),
        )
        return EvalReport(protocol=self.protocol, split="valid+test",
                          metrics=result.to_dict())


class RelationCategoryEvaluator(Evaluator):
    """Filtered link prediction broken down by 1-1 / 1-N / N-1 / N-N category."""

    protocol = "relation_categories"

    def __init__(self, ks: Sequence[int] = (1, 3, 10), batch_size: int = 64,
                 threshold: float = CATEGORY_THRESHOLD) -> None:
        self.ks = tuple(int(k) for k in ks)
        self.batch_size = int(batch_size)
        self.threshold = float(threshold)

    def check_dataset(self, dataset: KGDataset) -> None:
        self._require_split(dataset, "test", self.protocol)

    def run(self, model: KGEModel, dataset: KGDataset) -> EvalReport:
        self.check_dataset(dataset)
        result = evaluate_by_relation_category(
            model, dataset, ks=self.ks, batch_size=self.batch_size,
            threshold=self.threshold,
        )
        return EvalReport(protocol=self.protocol, split="test",
                          metrics=result.to_dict())


#: protocol name -> evaluator class; what an EvalSpec's ``protocols`` list names.
EVALUATOR_PROTOCOLS: Dict[str, Type[Evaluator]] = {
    LinkPredictionEvaluator.protocol: LinkPredictionEvaluator,
    TripleClassificationEvaluator.protocol: TripleClassificationEvaluator,
    RelationCategoryEvaluator.protocol: RelationCategoryEvaluator,
}


def build_evaluator(protocol: str, **kwargs) -> Evaluator:
    """Instantiate the evaluator registered under ``protocol``.

    Keyword arguments are passed to the evaluator's constructor; an unknown
    protocol raises ``ValueError`` naming the valid choices.
    """
    cls = EVALUATOR_PROTOCOLS.get(str(protocol))
    if cls is None:
        raise ValueError(
            f"unknown evaluation protocol {protocol!r}; "
            f"available: {sorted(EVALUATOR_PROTOCOLS)}"
        )
    return cls(**kwargs)
