"""Link-prediction evaluation (MR, MRR, Hits@k; raw and filtered).

The paper reports filtered Hits@10 (Figure 5, Section 6.2.5, Appendix E); the
evaluator here ranks both directions (replace-head and replace-tail) and
averages, the standard protocol of Bordes et al. (2013).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

import numpy as np

from repro.evaluation.ranks import (
    RankingProtocol,
    compute_ranks,
    hits_at_k,
    mean_rank,
    mean_reciprocal_rank,
)
from repro.models.base import KGEModel
from repro.utils.validation import check_triples


@dataclass
class LinkPredictionResult:
    """Aggregated link-prediction metrics."""

    mean_rank: float
    mrr: float
    hits: Dict[int, float]
    protocol: str = RankingProtocol.FILTERED.value
    head_ranks: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64), repr=False)
    tail_ranks: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64), repr=False)

    def hits_at(self, k: int) -> float:
        """Convenience accessor for ``hits[k]``."""
        return self.hits[k]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record; every evaluation result dataclass carries one.

        All three evaluators (link prediction, triple classification, relation
        categories) expose the same shape — a ``task`` discriminator plus flat
        metric keys — so a ``metrics.json`` aggregating them stays uniform.
        """
        out: Dict[str, object] = {"task": "link_prediction",
                                  "protocol": self.protocol,
                                  "mean_rank": self.mean_rank, "mrr": self.mrr}
        out.update({f"hits@{k}": v for k, v in self.hits.items()})
        return out


def _build_filters(
    triples: np.ndarray,
    known_triples: Set[Tuple[int, int, int]],
    mode: str,
) -> list:
    """Per-query arrays of entity indices that must be excluded from ranking."""
    by_query: Dict[Tuple[int, int], list] = {}
    for h, r, t in known_triples:
        if mode == "tail":
            by_query.setdefault((h, r), []).append(t)
        else:
            by_query.setdefault((t, r), []).append(h)
    filters = []
    for h, r, t in triples.tolist():
        key = (h, r) if mode == "tail" else (t, r)
        filters.append(np.asarray(by_query.get(key, []), dtype=np.int64))
    return filters


def evaluate_link_prediction(
    model: KGEModel,
    triples: np.ndarray,
    known_triples: Optional[Set[Tuple[int, int, int]]] = None,
    ks: Sequence[int] = (1, 3, 10),
    protocol: RankingProtocol = RankingProtocol.FILTERED,
    batch_size: int = 64,
) -> LinkPredictionResult:
    """Evaluate link prediction on ``triples``.

    Parameters
    ----------
    model:
        Trained model exposing ``score_all_tails`` / ``score_all_heads``.
    triples:
        Evaluation triples ``(B, 3)``.
    known_triples:
        Full set of known positives (train+valid+test) used by the filtered
        protocol; required when ``protocol`` is FILTERED.
    ks:
        Hits@k cutoffs.
    protocol:
        RAW or FILTERED ranking.
    batch_size:
        Queries ranked per chunk (bounds the ``(B, n_entities)`` score block).
    """
    triples = check_triples(triples, n_entities=model.n_entities,
                            n_relations=model.n_relations)
    protocol = RankingProtocol(protocol)
    if protocol is RankingProtocol.FILTERED and known_triples is None:
        raise ValueError("filtered evaluation requires known_triples")

    head_rank_chunks = []
    tail_rank_chunks = []
    for start in range(0, triples.shape[0], batch_size):
        chunk = triples[start:start + batch_size]
        heads, rels, tails = chunk[:, 0], chunk[:, 1], chunk[:, 2]

        tail_scores = model.score_all_tails(heads, rels)
        tail_filters = (_build_filters(chunk, known_triples, "tail")
                        if protocol is RankingProtocol.FILTERED else None)
        tail_rank_chunks.append(compute_ranks(tail_scores, tails, tail_filters))

        head_scores = model.score_all_heads(rels, tails)
        head_filters = (_build_filters(chunk, known_triples, "head")
                        if protocol is RankingProtocol.FILTERED else None)
        head_rank_chunks.append(compute_ranks(head_scores, heads, head_filters))

    tail_ranks = (np.concatenate(tail_rank_chunks) if tail_rank_chunks
                  else np.empty(0, dtype=np.float64))
    head_ranks = (np.concatenate(head_rank_chunks) if head_rank_chunks
                  else np.empty(0, dtype=np.float64))
    all_ranks = np.concatenate([tail_ranks, head_ranks])

    return LinkPredictionResult(
        mean_rank=mean_rank(all_ranks),
        mrr=mean_reciprocal_rank(all_ranks),
        hits={int(k): hits_at_k(all_ranks, int(k)) for k in ks},
        protocol=protocol.value,
        head_ranks=head_ranks,
        tail_ranks=tail_ranks,
    )
