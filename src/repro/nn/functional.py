"""Functional helpers shared by models: dissimilarity dispatch and scoring utilities."""

from __future__ import annotations

from typing import Callable, Dict

from repro.autograd import ops
from repro.autograd.tensor import Tensor

DissimilarityFn = Callable[[Tensor], Tensor]


def l1_dissimilarity(x: Tensor) -> Tensor:
    """Row-wise L1 norm of the translation residual."""
    return ops.lp_norm(x, p=1, axis=-1)


def l2_dissimilarity(x: Tensor) -> Tensor:
    """Row-wise L2 norm of the translation residual."""
    return ops.lp_norm(x, p=2, axis=-1)


def squared_l2_dissimilarity(x: Tensor) -> Tensor:
    """Row-wise squared L2 norm (TransC-style)."""
    return ops.squared_l2(x, axis=-1)


def l1_torus_dissimilarity(x: Tensor) -> Tensor:
    """Row-wise toroidal L1 distance (TorusE)."""
    return ops.torus_distance(x, p=1, axis=-1)


def l2_torus_dissimilarity(x: Tensor) -> Tensor:
    """Row-wise toroidal squared-L2 distance (TorusE; the paper's hot kernel)."""
    return ops.torus_distance(x, p=2, axis=-1)


DISSIMILARITIES: Dict[str, DissimilarityFn] = {
    "L1": l1_dissimilarity,
    "L2": l2_dissimilarity,
    "squared_L2": squared_l2_dissimilarity,
    "torus_L1": l1_torus_dissimilarity,
    "torus_L2": l2_torus_dissimilarity,
}


def get_dissimilarity(name: str) -> DissimilarityFn:
    """Look up a dissimilarity function by name (``"L1"``, ``"L2"``, ``"torus_L2"``...)."""
    if callable(name):
        return name
    try:
        return DISSIMILARITIES[name]
    except KeyError:
        raise KeyError(
            f"unknown dissimilarity {name!r}; available: {sorted(DISSIMILARITIES)}"
        ) from None
