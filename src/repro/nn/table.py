"""The :class:`EmbeddingTable` interface: one contract for every entity table.

Every layer that used to assume "the entity embeddings are one dense
``(n_entities, d)`` array" — model scoring, per-epoch renormalisation, the
serving engine's nearest-neighbour scan — now talks to this interface instead:

* :meth:`EmbeddingTable.read_rows` — random-access row reads (always a copy);
* :meth:`EmbeddingTable.iter_blocks` — bounded-memory sequential sweeps, the
  primitive behind blocked ranking and block-wise renormalisation;
* :meth:`EmbeddingTable.write_rows` — row-granular writes (renormalisation,
  pre-trained loads);
* :attr:`EmbeddingTable.n_partitions` — ``1`` for dense tables, ``P`` for
  :class:`~repro.nn.partitioned.PartitionedEmbedding`.

Three concrete families implement it: the dense in-memory tables
(:class:`~repro.nn.embedding.Embedding` and the
:class:`DenseSliceTable` views :class:`~repro.nn.embedding.StackedEmbedding`
exposes), the disk-backed
:class:`~repro.nn.embedding.MemoryMappedEmbedding`, and the bucketed
:class:`~repro.nn.partitioned.PartitionedEmbedding`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

#: Default rows per block for table sweeps; small enough that one float64
#: block stays a few MB at typical dims, large enough to amortise call
#: overhead.
DEFAULT_BLOCK_ROWS = 65536

#: Cap on *elements* per block for memory-bounded sweeps (~16 MB of float64).
#: Row counts alone are the wrong unit — at dim 2304 a 65536-row "block" is
#: 1.2 GB — so sweeps that must stay within a memory budget size their blocks
#: as ``block_rows_for(dim)``.
BLOCK_ELEMENTS = 1 << 21


def block_rows_for(embedding_dim: int, block_elements: int = BLOCK_ELEMENTS) -> int:
    """Rows per block so one float64 block stays within ``block_elements``."""
    return max(1, int(block_elements) // max(1, int(embedding_dim)))


def renormalize_block_(block: np.ndarray, max_norm: float, p: int) -> None:
    """Project the rows of ``block`` onto the L_p ball of radius ``max_norm``.

    In-place and purely per-row, so applying it block by block produces the
    exact floats a whole-matrix projection would — that is what lets the
    block-wise ``normalize_parameters`` paths stay bit-identical to the dense
    code they replaced.
    """
    if p == 2:
        norms = np.linalg.norm(block, axis=1, keepdims=True)
    elif p == 1:
        norms = np.abs(block).sum(axis=1, keepdims=True)
    else:
        raise ValueError(f"p must be 1 or 2, got {p}")
    scale = np.where(norms > max_norm, max_norm / np.maximum(norms, 1e-12), 1.0)
    block *= scale


class EmbeddingTable:
    """Row-table contract of shape ``(n_rows, embedding_dim)``.

    A duck-typed base rather than a strict ABC: implementors expose
    ``n_rows`` and ``embedding_dim`` as either attributes or properties
    (``Embedding`` keeps its historical ``embedding_dim`` instance attribute)
    and override the three access primitives below.
    """

    @property
    def n_rows(self) -> int:
        """Number of rows in the table."""
        raise NotImplementedError(f"{type(self).__name__} must define n_rows")

    @property
    def n_partitions(self) -> int:
        """Number of independently loadable buckets (dense tables: 1)."""
        return 1

    def read_rows(self, indices: np.ndarray) -> np.ndarray:
        """Copy of the rows at ``indices`` (shape ``(k, d)``)."""
        raise NotImplementedError(f"{type(self).__name__} must define read_rows")

    def iter_blocks(self, block_rows: int = DEFAULT_BLOCK_ROWS
                    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(start_row, block)`` pairs covering every row in order.

        Blocks are read-only snapshots (or read-only views for in-memory
        tables); at most one block is materialised at a time, which is the
        memory bound the blocked scoring and normalisation paths rely on.
        """
        raise NotImplementedError(f"{type(self).__name__} must define iter_blocks")

    def write_rows(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Overwrite the rows at ``indices`` with ``values``."""
        raise NotImplementedError(f"{type(self).__name__} must define write_rows")

    def renormalize_(self, max_norm: float = 1.0, p: int = 2,
                     block_rows: Optional[int] = None) -> None:
        """Block-wise L_p row projection (bounded memory, exact per row).

        ``block_rows`` defaults to the element-bounded
        :func:`block_rows_for` size, so the norm/scale temporaries stay a few
        MB however wide the rows are.
        """
        if block_rows is None:
            block_rows = block_rows_for(self.embedding_dim)
        for start, block in self.iter_blocks(block_rows):
            updated = np.array(block, copy=True)
            renormalize_block_(updated, max_norm, p)
            self.write_rows(np.arange(start, start + block.shape[0],
                                      dtype=np.int64), updated)

    def to_matrix(self) -> np.ndarray:
        """Densify the whole table (debugging / small-scale use only)."""
        out = np.empty((self.n_rows, self.embedding_dim), dtype=np.float64)
        for start, block in self.iter_blocks():
            out[start:start + block.shape[0]] = block
        return out


class DenseSliceTable(EmbeddingTable):
    """:class:`EmbeddingTable` view over a slice of an in-memory array.

    Adapts the dense parameters — a whole :class:`~repro.nn.embedding.Embedding`
    weight, or the entity/relation block of a
    :class:`~repro.nn.embedding.StackedEmbedding` — to the table interface.
    ``write_rows`` writes through to the underlying parameter, so in-place
    maintenance (renormalisation) behaves exactly like the direct-array code
    it replaces.
    """

    def __init__(self, array: np.ndarray, start: int = 0,
                 stop: int | None = None) -> None:
        self._array = array
        self._start = int(start)
        self._stop = int(stop) if stop is not None else array.shape[0]
        if not 0 <= self._start <= self._stop <= array.shape[0]:
            raise ValueError(
                f"invalid slice [{start}, {stop}) for {array.shape[0]} rows"
            )

    @property
    def n_rows(self) -> int:
        return self._stop - self._start

    @property
    def embedding_dim(self) -> int:
        return int(self._array.shape[1])

    def read_rows(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        return np.array(self._array[self._start + idx], copy=True)

    def iter_blocks(self, block_rows: int = DEFAULT_BLOCK_ROWS
                    ) -> Iterator[Tuple[int, np.ndarray]]:
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        for start in range(0, self.n_rows, block_rows):
            stop = min(self.n_rows, start + block_rows)
            yield start, self._array[self._start + start:self._start + stop]

    def write_rows(self, indices: np.ndarray, values: np.ndarray) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        self._array[self._start + idx] = values

    def renormalize_(self, max_norm: float = 1.0, p: int = 2,
                     block_rows: Optional[int] = None) -> None:
        # Direct in-place projection on the view: no row copies at all.
        if block_rows is None:
            block_rows = block_rows_for(self.embedding_dim)
        for start in range(0, self.n_rows, block_rows):
            stop = min(self.n_rows, start + block_rows)
            renormalize_block_(self._array[self._start + start:
                                           self._start + stop], max_norm, p)
