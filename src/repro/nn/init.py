"""Parameter initializers.

The paper (and TorchKGE, which it compares against) initialises entity and
relation embeddings with Xavier/Glorot uniform; the initializers below operate
in place on any tensor-like object exposing ``.data``.
"""

from __future__ import annotations

import contextlib
import math
import threading
from typing import Iterator, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.utils.seeding import new_rng


class _InitMode(threading.local):
    def __init__(self) -> None:
        self.skip = False


_init_mode = _InitMode()


@contextlib.contextmanager
def skip_init() -> Iterator[None]:
    """Suspend parameter initialisation inside the block.

    Every initializer below becomes a no-op, leaving parameters as the
    untouched ``np.empty`` allocations their modules created — allocated
    virtual memory whose pages are never written, so they never become
    resident.  This is how a model can be *constructed* for memory-mapped
    serving without first materialising (and filling) every dense table that
    the caller is about to replace with on-disk arrays.
    """
    previous = _init_mode.skip
    _init_mode.skip = True
    try:
        yield
    finally:
        _init_mode.skip = previous


def skipping_init() -> bool:
    """Whether a :func:`skip_init` block is active on this thread.

    Modules whose initialisation has side effects beyond filling an array —
    :class:`~repro.nn.partitioned.PartitionedEmbedding` creates its on-disk
    bucket files — consult this so construction under :func:`skip_init`
    (the attach-to-existing-storage path) touches neither memory nor disk.
    """
    return _init_mode.skip


def _fan_in_out(shape) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fan for a scalar parameter")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = int(shape[0])
    return fan_in, fan_out


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0,
             rng: Optional[np.random.Generator] = None) -> Tensor:
    """Fill with samples from ``U(low, high)``."""
    if _init_mode.skip:
        return tensor
    rng = new_rng(rng)
    tensor.data[...] = rng.uniform(low, high, size=tensor.shape)
    return tensor


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Fill with samples from ``N(mean, std)``."""
    if _init_mode.skip:
        return tensor
    rng = new_rng(rng)
    tensor.data[...] = rng.normal(mean, std, size=tensor.shape)
    return tensor


def xavier_uniform_(tensor: Tensor, gain: float = 1.0,
                    rng: Optional[np.random.Generator] = None) -> Tensor:
    """Glorot/Xavier uniform initialisation (TorchKGE's embedding default)."""
    fan_in, fan_out = _fan_in_out(tensor.shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(tensor, -bound, bound, rng=rng)


def xavier_normal_(tensor: Tensor, gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> Tensor:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_out(tensor.shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return normal_(tensor, 0.0, std, rng=rng)


def zeros_(tensor: Tensor) -> Tensor:
    """Fill with zeros."""
    if _init_mode.skip:
        return tensor
    tensor.data[...] = 0.0
    return tensor


def identity_stack_(tensor: Tensor) -> Tensor:
    """Fill a ``(R, k, d)`` stack of projection matrices with identities.

    TransR initialises every relation projection to the identity map (padded
    or truncated when ``k != d``) so training starts from the TransE geometry.
    """
    if tensor.ndim != 3:
        raise ValueError(f"expected a (R, k, d) parameter, got shape {tensor.shape}")
    if _init_mode.skip:
        return tensor
    _, k, d = tensor.shape
    eye = np.eye(k, d)
    tensor.data[...] = eye[None, :, :]
    return tensor
