"""Learnable parameter tensor."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A :class:`~repro.autograd.tensor.Tensor` that is learnable by default.

    Modules register attributes of this type automatically; optimizers update
    them in place.  The payload is always floating point.

    Gradients may accumulate either densely (``.grad``) or row-sparsely when
    the producing op emits a :class:`~repro.sparse.rowsparse.RowSparseGrad`
    (``.sparse_grad``).  Sparse contributions merge with each other cheaply;
    any dense contribution — or a read of ``.grad`` — collapses the
    accumulation to a dense array, so consumers unaware of the sparse path
    keep working unchanged.
    """

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None) -> None:
        arr = np.asarray(data, dtype=np.float64)
        super().__init__(arr, requires_grad=requires_grad, name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.shape}, name={self.name!r})"
