"""Module base class: parameter registration, traversal, and (de)serialization."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.nn.parameter import Parameter


class Module:
    """Base class for every model component.

    Mirrors the small subset of ``torch.nn.Module`` the framework needs:
    attribute-based registration of :class:`Parameter` and sub-``Module``
    objects, recursive parameter iteration, ``zero_grad``, train/eval mode,
    and a plain-ndarray ``state_dict``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if value.name is None:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            # Re-assigning a non-parameter over an old registration removes it.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register ``param`` under ``name``."""
        if not isinstance(param, Parameter):
            raise TypeError(f"expected Parameter, got {type(param)!r}")
        setattr(self, name, param)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter (recursively, depth-first)."""
        for _, param in self.named_parameters():
            yield param

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of learnable scalars."""
        return sum(p.size for p in self.parameters())

    def parameter_nbytes(self) -> int:
        """Total parameter memory in bytes."""
        return sum(p.nbytes for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Gradient / mode management
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", bool(mode))
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat ``{name: ndarray}`` snapshot of every parameter."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        children = ", ".join(self._modules)
        return f"{type(self).__name__}(params={len(self._parameters)}, children=[{children}])"
