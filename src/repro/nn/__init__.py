"""Neural-network building blocks on top of the autograd engine.

Contains the :class:`Module` / :class:`Parameter` abstractions, the dense
:class:`Embedding` (fine-grained gather path used by the baselines), the
:class:`StackedEmbedding` (single ``[entities; relations]`` matrix consumed by
the SpMM path), initializers, and the dissimilarity functions shared by every
translational model.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module
from repro.nn.table import DenseSliceTable, EmbeddingTable
from repro.nn.embedding import Embedding, StackedEmbedding, MemoryMappedEmbedding
from repro.nn.partitioned import (
    BucketParameter,
    PartitionedEmbedding,
    partitioned_tables,
)
from repro.nn import init
from repro.nn import functional

__all__ = [
    "Parameter",
    "Module",
    "EmbeddingTable",
    "DenseSliceTable",
    "Embedding",
    "StackedEmbedding",
    "MemoryMappedEmbedding",
    "PartitionedEmbedding",
    "BucketParameter",
    "partitioned_tables",
    "init",
    "functional",
]
