"""Serving-time bucket quantization: fp16 / per-row-scale int8 entity weights.

Training and checkpointing always run in float64; quantization is a pure
artifact-level transform applied *beside* the exact bucket files:

* ``fp16`` writes ``entities.bucket<k>.f16.npy`` — the slab cast to float16,
  faulted in as-is (¼ of the float64 resident bytes);
* ``int8`` writes ``entities.bucket<k>.i8.npy`` plus a per-row float32 scale
  file ``entities.bucket<k>.i8.scale.npy`` — codes are ``round(row / scale)``
  with ``scale = max(|row|) / 127``, dequantized to a float32 slab on fault
  (½ of the float64 resident bytes, ⅛ on disk).

The exact float64 bucket files stay next to the quantized ones, so a
quantized serving table can still answer
:meth:`~repro.nn.partitioned.PartitionedEmbedding.exact_rows` queries — the
two-phase serving path ranks coarsely on quantized slabs, then rescores the
short candidate list at full precision so reported ranks are unchanged.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

import numpy as np

#: Supported quantization modes.
QUANT_MODES = ("fp16", "int8")

#: int8 code range is symmetric: ``[-127, 127]`` (−128 is never emitted, so
#: dequantization is exactly ``code * scale`` with no zero-point).
INT8_LEVELS = 127


def check_mode(mode: str) -> str:
    """Validate and normalise a quantization mode name."""
    if mode not in QUANT_MODES:
        raise ValueError(
            f"unknown quantization mode {mode!r}; expected one of {QUANT_MODES}"
        )
    return mode


def compression_factor(mode: str) -> int:
    """Resident-slab compression vs. float64 (drives ``max_resident`` scaling).

    A quantized bucket costs this many times fewer resident bytes than its
    float64 original, so a serving table can keep ``factor×`` more buckets
    resident inside the same memory budget.
    """
    check_mode(mode)
    return 4 if mode == "fp16" else 2


def fp16_filename(bucket: int) -> str:
    """On-disk name of the float16 slab for ``bucket``."""
    return f"entities.bucket{int(bucket)}.f16.npy"


def int8_filename(bucket: int) -> str:
    """On-disk name of the int8 code slab for ``bucket``."""
    return f"entities.bucket{int(bucket)}.i8.npy"


def int8_scale_filename(bucket: int) -> str:
    """On-disk name of the per-row float32 scales for ``bucket``."""
    return f"entities.bucket{int(bucket)}.i8.scale.npy"


def quantized_filenames(bucket: int, mode: str) -> List[str]:
    """The file(s) a quantized bucket is stored as."""
    check_mode(mode)
    if mode == "fp16":
        return [fp16_filename(bucket)]
    return [int8_filename(bucket), int8_scale_filename(bucket)]


def quantize_int8(slab: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row symmetric int8 quantization: ``(codes, scales)``.

    ``scales`` is float32 with ``scale = max(|row|) / 127`` (all-zero rows get
    scale 1.0 so dequantization is well-defined); ``codes`` is
    ``round(row / scale)`` clipped to ``[-127, 127]``.  The worst-case
    per-element reconstruction error is ``scale / 2``.
    """
    slab = np.asarray(slab)
    scales = (np.abs(slab).max(axis=1) / INT8_LEVELS).astype(np.float32)
    scales[scales == 0.0] = 1.0
    codes = np.rint(slab / scales[:, None])
    np.clip(codes, -INT8_LEVELS, INT8_LEVELS, out=codes)
    return codes.astype(np.int8), scales


def dequantize_int8(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Reconstruct the float32 slab from int8 codes and per-row scales."""
    return codes.astype(np.float32) * scales[:, None]


def write_quantized_bucket(directory: str, bucket: int, slab: np.ndarray,
                           mode: str) -> List[str]:
    """Write ``slab`` quantized as ``mode`` into ``directory``.

    Returns the filenames written (relative to ``directory``).
    """
    names = quantized_filenames(bucket, mode)
    if mode == "fp16":
        np.save(os.path.join(directory, names[0]),
                np.asarray(slab).astype(np.float16))
    else:
        codes, scales = quantize_int8(slab)
        np.save(os.path.join(directory, names[0]), codes)
        np.save(os.path.join(directory, names[1]), scales)
    return names


def load_quantized_bucket(directory: str, bucket: int,
                          mode: str) -> Tuple[np.ndarray, int]:
    """Load a quantized bucket slab: ``(slab, bytes_read_from_disk)``.

    ``fp16`` slabs stay float16 in memory; ``int8`` codes are dequantized to a
    float32 slab (the codes + scales themselves are what crossed the disk).
    """
    check_mode(mode)
    if mode == "fp16":
        slab = np.load(os.path.join(directory, fp16_filename(bucket)))
        return slab, slab.nbytes
    codes = np.load(os.path.join(directory, int8_filename(bucket)))
    scales = np.load(os.path.join(directory, int8_scale_filename(bucket)))
    return dequantize_int8(codes, scales), codes.nbytes + scales.nbytes


def quantize_weight_files(weights_dir: str, mode: str) -> Dict[str, object]:
    """Quantize an existing partitioned ``weights/`` directory in place.

    Reads each ``entities.bucket<k>.npy`` (one at a time — the full table
    never enters memory), writes its quantized twin(s) beside it, and records
    a ``"quantized"`` entry in ``partition.json``.  The float64 originals are
    kept: exact-rescore serving reads them row-wise.  Returns the manifest
    entry written.
    """
    from repro.nn.partitioned import PARTITION_MANIFEST

    check_mode(mode)
    manifest_path = os.path.join(weights_dir, PARTITION_MANIFEST)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(
            f"no {PARTITION_MANIFEST} in {weights_dir}; quantization applies "
            "to partitioned weight directories only"
        )
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    buckets = []
    for k, entry in enumerate(manifest["buckets"]):
        slab = np.load(os.path.join(weights_dir, entry["file"]))
        buckets.append({"files": write_quantized_bucket(weights_dir, k, slab, mode)})
    quantized: Dict[str, object] = {"mode": mode, "buckets": buckets}
    manifest["quantized"] = quantized
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return quantized
