"""Embedding containers for both computational paths.

* :class:`Embedding` — the conventional lookup table: forward gathers rows,
  backward scatter-adds gradients.  This is what TorchKGE / PyG / DGL-KE do
  and is therefore the layer our dense baselines are built on.
* :class:`StackedEmbedding` — one ``(N + R) × d`` matrix holding entity rows
  followed by relation rows, consumed whole by the SpMM of the sparse path
  (paper Section 4.2.2).  Views over the entity / relation blocks are exposed
  for evaluation and for models that still need per-relation parameters.
* :class:`MemoryMappedEmbedding` — a disk-backed variant mirroring the
  framework's "streaming embeddings from disk" feature for LLM-initialised
  embeddings that do not fit in memory.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.nn.table import DEFAULT_BLOCK_ROWS, DenseSliceTable, EmbeddingTable
from repro.utils.seeding import new_rng


class Embedding(Module, EmbeddingTable):
    """Dense lookup-table embedding (the fine-grained gather/scatter path).

    Parameters
    ----------
    num_embeddings:
        Number of rows (entities or relations).
    embedding_dim:
        Embedding width ``d``.
    rng:
        Seed or generator for the Xavier-uniform initialisation.
    sparse_grad:
        Emit row-sparse gradients from the lookup backward instead of a dense
        full-table scatter (see ``repro.sparse.rowsparse``).  Toggled by
        ``KGEModel.set_sparse_grads``.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None,
                 sparse_grad: bool = False) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError(
                f"num_embeddings and embedding_dim must be positive, got "
                f"{num_embeddings} and {embedding_dim}"
            )
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        self.sparse_grad = bool(sparse_grad)
        weight = Parameter(np.empty((num_embeddings, embedding_dim),
                                    dtype=np.float64), name="weight")
        init.xavier_uniform_(weight, rng=new_rng(rng))
        self.weight = weight

    def forward(self, indices: np.ndarray) -> Tensor:
        """Gather the rows at ``indices`` (shape ``(B,) -> (B, d)``)."""
        return gather_rows(self.weight, np.asarray(indices, dtype=np.int64),
                           sparse_grad=self.sparse_grad)

    def renormalize(self, max_norm: float = 1.0, p: int = 2) -> None:
        """Project every row onto the L_p ball of radius ``max_norm`` in place.

        TransE-style training renormalises entity embeddings between batches;
        this is a data-level operation outside the autograd tape.  The
        projection runs block-wise (see
        :func:`~repro.nn.table.renormalize_block_`) so the norm/scale
        temporaries stay bounded regardless of table height; being purely
        per-row, the result is bit-identical to the whole-matrix projection.
        """
        self._table().renormalize_(max_norm=max_norm, p=p)

    # ------------------------------------------------------------------ #
    # EmbeddingTable interface
    # ------------------------------------------------------------------ #
    def _table(self) -> DenseSliceTable:
        return DenseSliceTable(self.weight.data)

    @property
    def n_rows(self) -> int:
        return self.num_embeddings

    def read_rows(self, indices: np.ndarray) -> np.ndarray:
        return self._table().read_rows(indices)

    def iter_blocks(self, block_rows: int = DEFAULT_BLOCK_ROWS
                    ) -> Iterator[Tuple[int, np.ndarray]]:
        return self._table().iter_blocks(block_rows)

    def write_rows(self, indices: np.ndarray, values: np.ndarray) -> None:
        self._table().write_rows(indices, values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class StackedEmbedding(Module):
    """Single ``(N + R) × d`` matrix: entity rows first, relation rows after.

    The sparse models multiply the whole matrix by the ``hrt`` incidence
    matrix, so entities and relations must live in one contiguous parameter.
    ``ht``-based models (TransR, TransH) use only the entity block for the
    SpMM and index the relation block directly.

    Parameters
    ----------
    n_entities, n_relations:
        Vocabulary sizes.
    embedding_dim:
        Shared embedding width ``d``.
    rng:
        Seed or generator for initialisation.
    sparse_grad:
        Emit row-sparse gradients from the gather helpers (the SpMM itself is
        controlled by the ``sparse_grad`` argument of ``repro.sparse.spmm``).
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None,
                 sparse_grad: bool = False) -> None:
        super().__init__()
        if n_entities <= 0 or n_relations <= 0 or embedding_dim <= 0:
            raise ValueError("n_entities, n_relations, and embedding_dim must be positive")
        self.n_entities = int(n_entities)
        self.n_relations = int(n_relations)
        self.embedding_dim = int(embedding_dim)
        self.sparse_grad = bool(sparse_grad)
        weight = Parameter(np.empty((n_entities + n_relations, embedding_dim),
                                    dtype=np.float64), name="stacked")
        init.xavier_uniform_(weight, rng=new_rng(rng))
        self.weight = weight

    @property
    def num_rows(self) -> int:
        return self.n_entities + self.n_relations

    def entity_embeddings(self) -> np.ndarray:
        """Read-only view of the entity block ``(N, d)``."""
        return self.weight.data[: self.n_entities]

    def relation_embeddings(self) -> np.ndarray:
        """Read-only view of the relation block ``(R, d)``."""
        return self.weight.data[self.n_entities:]

    def forward(self) -> Tensor:
        """Return the full stacked parameter (fed directly to ``spmm``)."""
        return self.weight

    def gather_entities(self, indices: np.ndarray) -> Tensor:
        """Differentiable gather from the entity block."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and idx.max() >= self.n_entities:
            raise IndexError("entity index out of range")
        return gather_rows(self.weight, idx, sparse_grad=self.sparse_grad)

    def gather_relations(self, indices: np.ndarray) -> Tensor:
        """Differentiable gather from the relation block."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and idx.max() >= self.n_relations:
            raise IndexError("relation index out of range")
        return gather_rows(self.weight, idx + self.n_entities,
                           sparse_grad=self.sparse_grad)

    def renormalize_entities(self, max_norm: float = 1.0, p: int = 2) -> None:
        """Project entity rows onto the L_p ball (relations untouched).

        Runs block-wise over the entity block so memory for the norm/scale
        temporaries is bounded by the block size, not the vocabulary; the
        per-row projection makes the result bit-identical to the old
        whole-matrix code.
        """
        self.entity_table().renormalize_(max_norm=max_norm, p=p)

    def entity_table(self) -> DenseSliceTable:
        """:class:`~repro.nn.table.EmbeddingTable` view of the entity block."""
        return DenseSliceTable(self.weight.data, 0, self.n_entities)

    def relation_table(self) -> DenseSliceTable:
        """:class:`~repro.nn.table.EmbeddingTable` view of the relation block."""
        return DenseSliceTable(self.weight.data, self.n_entities, self.num_rows)

    def load_pretrained(self, entity_matrix: Optional[np.ndarray] = None,
                        relation_matrix: Optional[np.ndarray] = None) -> None:
        """Overwrite blocks with pre-trained vectors (e.g. LLM embeddings)."""
        if entity_matrix is not None:
            ent = np.asarray(entity_matrix, dtype=np.float64)
            if ent.shape != (self.n_entities, self.embedding_dim):
                raise ValueError(
                    f"entity matrix must have shape {(self.n_entities, self.embedding_dim)}, "
                    f"got {ent.shape}"
                )
            self.weight.data[: self.n_entities] = ent
        if relation_matrix is not None:
            rel = np.asarray(relation_matrix, dtype=np.float64)
            if rel.shape != (self.n_relations, self.embedding_dim):
                raise ValueError(
                    f"relation matrix must have shape {(self.n_relations, self.embedding_dim)}, "
                    f"got {rel.shape}"
                )
            self.weight.data[self.n_entities:] = rel

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StackedEmbedding(entities={self.n_entities}, "
                f"relations={self.n_relations}, dim={self.embedding_dim})")


class MemoryMappedEmbedding(Module, EmbeddingTable):
    """Disk-backed stacked embedding for tables larger than main memory.

    The weight lives in a ``numpy.memmap`` file.  Forward lookups behave like
    :class:`StackedEmbedding`; updates are applied row-wise through
    :meth:`apply_row_update` (lazy SGD on just the touched rows), which is how
    streaming training avoids materialising a dense full-size gradient.

    Parameters
    ----------
    n_entities, n_relations, embedding_dim:
        Table geometry.
    path:
        Backing file; a temporary file is created when omitted.
    rng:
        Seed or generator for initialisation.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 path: Optional[str] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.n_entities = int(n_entities)
        self.n_relations = int(n_relations)
        self.embedding_dim = int(embedding_dim)
        rows = self.n_entities + self.n_relations
        if path is None:
            fd, path = tempfile.mkstemp(suffix=".embeddings.npy")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._memmap = np.memmap(path, dtype=np.float64, mode="w+",
                                 shape=(rows, self.embedding_dim))
        rng = new_rng(rng)
        bound = np.sqrt(6.0 / (rows + self.embedding_dim))
        # Initialise in chunks so huge tables never need a full in-memory copy.
        chunk = max(1, min(rows, 65536))
        for start in range(0, rows, chunk):
            stop = min(rows, start + chunk)
            self._memmap[start:stop] = rng.uniform(-bound, bound,
                                                   size=(stop - start, self.embedding_dim))
        self._memmap.flush()

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_entities + self.n_relations, self.embedding_dim)

    # ------------------------------------------------------------------ #
    # EmbeddingTable interface (over the full stacked row space)
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return self.n_entities + self.n_relations

    def read_rows(self, indices: np.ndarray) -> np.ndarray:
        return self.lookup(indices)

    def iter_blocks(self, block_rows: int = 65536
                    ) -> Iterator[Tuple[int, np.ndarray]]:
        for start in range(0, self.n_rows, block_rows):
            stop = min(self.n_rows, start + block_rows)
            yield start, np.array(self._memmap[start:stop], dtype=np.float64)

    def write_rows(self, rows: np.ndarray, values: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        self._memmap[rows] = np.asarray(values, dtype=np.float64)
        self._memmap.flush()

    def lookup(self, rows: np.ndarray) -> np.ndarray:
        """Read rows from disk into an in-memory array (no autograd)."""
        rows = np.asarray(rows, dtype=np.int64)
        return np.array(self._memmap[rows], dtype=np.float64)

    def forward(self, rows: np.ndarray) -> Tensor:
        """Return looked-up rows as a leaf tensor that requires grad.

        The caller reads ``tensor.grad`` after backward and feeds it to
        :meth:`apply_row_update`; the full table never enters memory.
        """
        return Tensor(self.lookup(rows), requires_grad=True, name="memmap_rows")

    def apply_row_update(self, rows: np.ndarray, grad: np.ndarray, lr: float) -> None:
        """SGD update of only the touched rows, written straight back to disk."""
        rows = np.asarray(rows, dtype=np.int64)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != (rows.size, self.embedding_dim):
            raise ValueError(
                f"grad must have shape {(rows.size, self.embedding_dim)}, got {grad.shape}"
            )
        # Accumulate duplicate-row gradients before the single write-back.
        unique, inverse = np.unique(rows, return_inverse=True)
        accum = np.zeros((unique.size, self.embedding_dim), dtype=np.float64)
        np.add.at(accum, inverse, grad)
        self._memmap[unique] -= lr * accum
        self._memmap.flush()

    def close(self) -> None:
        """Flush and release the backing file (deletes it if we created it)."""
        if getattr(self, "_memmap", None) is not None:
            self._memmap.flush()
            del self._memmap
            self._memmap = None
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def __del__(self) -> None:  # pragma: no cover - best effort cleanup
        try:
            self.close()
        except Exception:
            pass
